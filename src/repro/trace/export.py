"""Trace exporters: columnar summary + Chrome ``trace_event`` JSON.

:func:`build_summary` folds a finished :class:`Tracer` into a plain
JSON-able dict (per-class counts, additive category sums, and the
slowest exemplar traces with their full span lists).  The summary is
what rides on :class:`ExperimentResult` and therefore must survive the
shared-memory result transport float-for-float:
:func:`summary_columns` splits it into a small structure header plus
one flat float column, and :func:`summary_from_columns` is its exact
inverse (``decode(encode(s)) == s``).

:func:`chrome_trace` renders exemplar span trees as Chrome
``trace_event`` JSON (the ``{"traceEvents": [...]}`` object format,
``ph: "X"`` complete events, microsecond timestamps) for
``chrome://tracing`` / Perfetto timeline viewing.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple

from .critical_path import CATEGORIES
from .spans import Tracer

__all__ = ["build_summary", "summary_columns", "summary_from_columns",
           "chrome_trace", "write_chrome_trace"]

#: Scalar fields of one exemplar, in column order (breakdown and spans
#: follow them).
_EXEMPLAR_SCALARS = ("rt", "start", "request_id", "crit_seq",
                     "crit_attempt", "crit_shard", "crit_replica",
                     "attempts")

#: Floats per span record.
_SPAN_WIDTH = 9


def build_summary(tracer: Tracer) -> Dict[str, Any]:
    """Fold the tracer's window aggregates into a JSON-able dict."""
    classes: Dict[str, Any] = {}
    for klass in sorted(tracer.classes()):
        agg = tracer.classes()[klass]
        exemplars = []
        for trace in tracer.exemplars(klass):
            exemplars.append({
                "rt": trace.rt,
                "start": trace.start,
                "request_id": trace.request_id,
                "crit_seq": trace.crit_seq,
                "crit_attempt": trace.crit_attempt,
                "crit_shard": trace.crit_shard,
                "crit_replica": trace.crit_replica,
                "attempts": trace.attempts,
                "breakdown": dict(trace.breakdown or {}),
                "spans": [list(span) for span in trace.spans],
            })
        classes[klass] = {
            "count": agg.count,
            "rt_sum": agg.rt_sum,
            "breakdown": dict(agg.sums),
            "exemplars": exemplars,
        }
    return {
        "sample_rate": tracer.sample_rate,
        "sampled": tracer.sampled,
        "kinds": [kind.name for kind in tracer.kinds],
        "categories": list(CATEGORIES),
        "classes": classes,
    }


# ---------------------------------------------------------------------------
# Columnar transport form
# ---------------------------------------------------------------------------

def summary_columns(summary: Dict[str, Any]
                    ) -> Tuple[Dict[str, Any], List[float]]:
    """Split a summary into ``(structure, floats)``.

    *structure* holds everything non-numeric (names, shapes) and is
    small/O(classes); *floats* is one flat column the result transport
    memcpys through the shared-memory ring.
    """
    structure = {
        "sample_rate": summary["sample_rate"],
        "sampled": summary["sampled"],
        "kinds": list(summary["kinds"]),
        "classes": [
            (klass,
             [len(exemplar["spans"])
              for exemplar in entry["exemplars"]])
            for klass, entry in summary["classes"].items()
        ],
    }
    floats: List[float] = []
    for _klass, entry in summary["classes"].items():
        floats.append(entry["count"])
        floats.append(entry["rt_sum"])
        breakdown = entry["breakdown"]
        for category in CATEGORIES:
            floats.append(breakdown[category])
        for exemplar in entry["exemplars"]:
            for name in _EXEMPLAR_SCALARS:
                floats.append(exemplar[name])
            ex_breakdown = exemplar["breakdown"]
            for category in CATEGORIES:
                floats.append(ex_breakdown[category])
            for span in exemplar["spans"]:
                floats.extend(span)
    return structure, floats


def summary_from_columns(structure: Dict[str, Any],
                         floats: List[float]) -> Dict[str, Any]:
    """Exact inverse of :func:`summary_columns`."""
    classes: Dict[str, Any] = {}
    pos = 0
    for klass, span_counts in structure["classes"]:
        count = floats[pos]
        rt_sum = floats[pos + 1]
        pos += 2
        breakdown = {category: floats[pos + i]
                     for i, category in enumerate(CATEGORIES)}
        pos += len(CATEGORIES)
        exemplars = []
        for n_spans in span_counts:
            exemplar: Dict[str, Any] = {}
            for name in _EXEMPLAR_SCALARS:
                exemplar[name] = floats[pos]
                pos += 1
            exemplar["breakdown"] = {
                category: floats[pos + i]
                for i, category in enumerate(CATEGORIES)}
            pos += len(CATEGORIES)
            spans = []
            for _ in range(n_spans):
                spans.append(list(floats[pos:pos + _SPAN_WIDTH]))
                pos += _SPAN_WIDTH
            exemplar["spans"] = spans
            exemplars.append(exemplar)
        classes[klass] = {"count": count, "rt_sum": rt_sum,
                          "breakdown": breakdown, "exemplars": exemplars}
    return {
        "sample_rate": structure["sample_rate"],
        "sampled": structure["sampled"],
        "kinds": list(structure["kinds"]),
        "categories": list(CATEGORIES),
        "classes": classes,
    }


# ---------------------------------------------------------------------------
# Chrome trace_event JSON
# ---------------------------------------------------------------------------

def chrome_trace(summaries: Dict[str, Dict[str, Any]],
                 phases: Optional[Dict[str, List[Any]]] = None
                 ) -> Dict[str, Any]:
    """Render exemplar traces as a Chrome ``trace_event`` object.

    *summaries* maps a label (exhibit point key) to a trace summary.
    Each (label, class) pair becomes one ``pid``; each exemplar within
    it one ``tid``; spans become ``ph: "X"`` complete events with
    micro-second ``ts``/``dur``.  Point events (retry/hedge/failed)
    are emitted as instant events (``ph: "i"``).

    *phases* optionally maps the same labels to workload-phase windows
    ``[(name, start, end), ...]`` (warmup / measurement window / fault
    windows, see ``ExperimentResult.phases``).  Each label's phases
    become one extra ``pid`` whose track holds a ``phase:<name>``
    complete event per window plus a globally-scoped instant
    (``"s": "g"``) at the window start, so phase boundaries draw as
    full-height markers across every exemplar track in Perfetto.
    """
    events: List[Dict[str, Any]] = []
    phases = phases or {}
    pid = 0
    for label in sorted(set(summaries) | set(phases)):
        windows = phases.get(label)
        if windows:
            pid += 1
            events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": f"{label} / phases"}})
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": 1,
                "args": {"name": "workload phases"}})
            for phase_name, start, end in windows:
                args = {"phase": phase_name, "start_ms": 1e3 * start,
                        "end_ms": 1e3 * end}
                if end > start:
                    events.append({
                        "name": f"phase:{phase_name}", "ph": "X",
                        "pid": pid, "tid": 1, "ts": 1e6 * start,
                        "dur": 1e6 * (end - start), "args": args})
                events.append({
                    "name": f"phase:{phase_name}", "ph": "i", "pid": pid,
                    "tid": 1, "ts": 1e6 * start, "s": "g", "args": args})
        if label not in summaries:
            continue
        summary = summaries[label]
        kinds = summary["kinds"]
        for klass in sorted(summary["classes"]):
            entry = summary["classes"][klass]
            pid += 1
            events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": f"{label} / {klass}"}})
            for tid, exemplar in enumerate(entry["exemplars"], start=1):
                events.append({
                    "name": "thread_name", "ph": "M", "pid": pid,
                    "tid": tid,
                    "args": {"name": (f"exemplar rt="
                                      f"{1e3 * exemplar['rt']:.2f}ms")}})
                for span in exemplar["spans"]:
                    kind, start, end, seq, attempt, work, shard, replica, \
                        flags = span
                    name = kinds[int(kind)]
                    args = {"seq": int(seq), "attempt": int(attempt),
                            "shard": int(shard), "replica": int(replica)}
                    if work:
                        args["work_us"] = 1e6 * work
                    if flags:
                        args["flags"] = int(flags)
                    if end > start:
                        events.append({
                            "name": name, "ph": "X", "pid": pid,
                            "tid": tid, "ts": 1e6 * start,
                            "dur": 1e6 * (end - start), "args": args})
                    else:
                        events.append({
                            "name": name, "ph": "i", "pid": pid,
                            "tid": tid, "ts": 1e6 * start, "s": "t",
                            "args": args})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str,
                       summaries: Dict[str, Dict[str, Any]],
                       phases: Optional[Dict[str, List[Any]]] = None
                       ) -> None:
    """Write :func:`chrome_trace` output as JSON to *path*, creating
    missing parent directories."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(summaries, phases=phases), handle, indent=1)
        handle.write("\n")
