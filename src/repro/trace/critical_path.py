"""Critical-path attribution: where did this request's latency go?

Walks one request's span list and splits its measured end-to-end
latency ``rt`` into six categories that are **additive by
construction**:

- ``network``    — wire transit on the critical chain: the client
  request leg, the critical sub-query's winning-attempt query and
  response legs, and the final response leg back to the client.
- ``service``    — datastore-side queueing plus service time of the
  critical winning attempt.
- ``cpu_queue``  — scheduler queueing around the request's app-CPU
  spans on the chain: each CPU span records the amount actually
  charged (``work``), so queueing is ``(end - start) - work``.
- ``selector_wait`` — time chain messages sat in reactor selector
  ready queues, cross-thread task channels, and blocking-recv
  inboxes.
- ``retry_hedge`` — time lost before the winning attempt of the
  critical sub-query even hit the wire: winning-attempt send start
  minus first-attempt send start (zero when attempt 0 wins).
- ``driver``     — everything else, as an exact residual: charged
  driver CPU, fan-out serialization gaps between sub-query sends,
  scheduling slack the spans cannot see, and float dust.

The residual construction is what makes the invariant *float-exact*:
``driver`` is computed as ``rt`` minus the other five categories in a
fixed left-associated order, so re-subtracting all six from ``rt`` in
the same order (see :func:`additivity_residual`) yields exactly
``0.0`` for every trace — ``x - x == 0.0`` for finite floats.
"""

from __future__ import annotations

from typing import Dict

from .spans import (K_ASSEMBLE, K_HANDOFF, K_INBOX_WAIT, K_NET_REQUEST,
                    K_NET_RESPONSE, K_PARSE, K_PROCESS, K_SELECTOR_WAIT,
                    K_SERVER_QUEUE, K_SERVICE, Trace)

__all__ = ["CATEGORIES", "attribute", "additivity_residual"]

#: Attribution categories, in the canonical subtraction order.
CATEGORIES = ("network", "service", "cpu_queue", "selector_wait",
              "retry_hedge", "driver")

_NET_KINDS = frozenset((K_NET_REQUEST, K_NET_RESPONSE))
_SERVER_KINDS = frozenset((K_SERVER_QUEUE, K_SERVICE))
_CPU_KINDS = frozenset((K_PARSE, K_PROCESS, K_ASSEMBLE))
_WAIT_KINDS = frozenset((K_SELECTOR_WAIT, K_HANDOFF, K_INBOX_WAIT))


def attribute(trace: Trace) -> Dict[str, float]:
    """Attribute ``trace.rt`` into :data:`CATEGORIES`.

    The critical chain is: the request-level spans (``seq == -1``)
    plus the spans of the critical sub-query's winning attempt
    (``seq == trace.crit_seq and attempt == trace.crit_attempt``, as
    stamped by the fanout join).  Non-critical sub-queries overlap the
    critical one and therefore contribute no end-to-end latency.

    Also fills ``trace.attempts`` (distinct wire attempts observed for
    the critical sub-query).
    """
    crit_seq = trace.crit_seq
    crit_attempt = trace.crit_attempt
    c_network = 0.0
    c_service = 0.0
    c_cpu_queue = 0.0
    c_wait = 0.0
    first_send = None
    win_send = None
    attempts = set()
    for kind, start, end, seq, attempt, work, _shard, _replica, _flags \
            in trace.spans:
        on_chain = seq == -1 or (seq == crit_seq and attempt == crit_attempt)
        if kind in _NET_KINDS:
            if on_chain:
                c_network += end - start
            if kind == K_NET_REQUEST and seq == crit_seq:
                attempts.add(attempt)
                if first_send is None or start < first_send:
                    first_send = start
                if attempt == crit_attempt:
                    win_send = start
        elif kind in _SERVER_KINDS:
            if seq == crit_seq and attempt == crit_attempt:
                c_service += end - start
        elif kind in _CPU_KINDS:
            if on_chain:
                c_cpu_queue += (end - start) - work
        elif kind in _WAIT_KINDS:
            if on_chain:
                c_wait += end - start
    if win_send is not None and first_send is not None:
        c_retry = win_send - first_send
    else:
        c_retry = 0.0
    trace.attempts = len(attempts)
    # The residual, in the canonical left-associated order.  Keep this
    # order in sync with CATEGORIES and additivity_residual.
    residual = trace.rt
    residual -= c_network
    residual -= c_service
    residual -= c_cpu_queue
    residual -= c_wait
    residual -= c_retry
    return {"network": c_network, "service": c_service,
            "cpu_queue": c_cpu_queue, "selector_wait": c_wait,
            "retry_hedge": c_retry, "driver": residual}


def additivity_residual(rt: float, breakdown: Dict[str, float]) -> float:
    """``rt`` minus every category, in the canonical order.

    Exactly ``0.0`` for any breakdown produced by :func:`attribute`
    from the same ``rt`` — the additivity invariant the property tests
    assert.
    """
    residual = rt
    for category in CATEGORIES:
        residual -= breakdown[category]
    return residual
