"""Schema validation for every trace/observability artifact.

Importable checks for the files the exporters write, shared by the CLI
shim (``scripts/check_trace_schema.py``), CI, and the unit tests:

- :func:`check_chrome_trace` — Chrome ``trace_event`` JSON from
  ``--trace-out`` (span kinds, metadata naming, instant scopes, and
  the ``phase:*`` workload-phase annotation events);
- :func:`check_collapsed` — flamegraph.pl collapsed-stack text from
  ``--flame-out``;
- :func:`check_speedscope` — speedscope JSON from a ``.json``
  ``--flame-out``;
- :func:`check_prometheus` — the ``--prom-out`` text snapshot.

Every check raises :class:`SchemaError` with a one-line message on the
first violation and returns a stats dict on success.
:func:`check_path` sniffs the format from the file content and
dispatches, returning a human-readable summary line.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List

from .flame import FRAME_NAMES, SPEEDSCOPE_SCHEMA
from .spans import KIND_NAMES

__all__ = ["SchemaError", "check_chrome_trace", "check_collapsed",
           "check_speedscope", "check_prometheus", "check_path", "main"]

_META_NAMES = {"process_name", "thread_name"}


class SchemaError(ValueError):
    """An exported artifact violates its exporter's schema contract."""


def _fail(message: str) -> None:
    raise SchemaError(message)


# ---------------------------------------------------------------------------
# Chrome trace_event JSON
# ---------------------------------------------------------------------------

def check_chrome_trace(doc: Any) -> Dict[str, int]:
    """Validate a Chrome ``trace_event`` document (parsed JSON).

    Checks the invariants the exporter guarantees (and that
    chrome://tracing / Perfetto rely on to render anything at all):

    - top level is ``{"traceEvents": [...], "displayTimeUnit": "ms"}``;
    - every event has ``name``/``ph``/``pid``/``tid`` with ``ph`` one
      of ``M`` (metadata), ``X`` (complete span), ``i`` (instant);
    - ``X`` events carry non-negative ``ts`` and positive ``dur``;
    - span-kind instants carry thread scope (``"s": "t"``); workload
      phase annotations (names ``phase:*``) carry global scope
      (``"s": "g"``) and an ``args.phase`` tag;
    - every (pid, tid) with events is named by ``M`` metadata;
    - span names are known span kinds (or ``phase:*`` annotations),
      and at least one real span exists.
    """
    if not isinstance(doc, dict):
        _fail("top level must be a JSON object")
    if doc.get("displayTimeUnit") != "ms":
        _fail(f"displayTimeUnit must be 'ms', got "
              f"{doc.get('displayTimeUnit')!r}")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        _fail("traceEvents must be a non-empty list")

    named_processes = set()
    named_threads = set()
    spans = 0
    instants = 0
    phase_marks = 0
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            _fail(f"{where} is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                _fail(f"{where} missing {key!r}")
        ph = event["ph"]
        if ph == "M":
            if event["name"] not in _META_NAMES:
                _fail(f"{where}: unknown metadata event {event['name']!r}")
            if not event.get("args", {}).get("name"):
                _fail(f"{where}: metadata event without args.name")
            if event["name"] == "process_name":
                named_processes.add(event["pid"])
            else:
                named_threads.add((event["pid"], event["tid"]))
            continue
        if ph not in ("X", "i"):
            _fail(f"{where}: unexpected phase {ph!r}")
        name = event["name"]
        is_phase_mark = name.startswith("phase:")
        if not is_phase_mark and name not in KIND_NAMES:
            _fail(f"{where}: unknown span kind {name!r}")
        if is_phase_mark and not event.get("args", {}).get("phase"):
            _fail(f"{where}: phase annotation without args.phase")
        if not isinstance(event.get("ts"), (int, float)) or event["ts"] < 0:
            _fail(f"{where}: bad ts {event.get('ts')!r}")
        if ph == "X":
            spans += 1
            if not isinstance(event.get("dur"), (int, float)) \
                    or event["dur"] <= 0:
                _fail(f"{where}: X event needs positive dur, got "
                      f"{event.get('dur')!r}")
        else:
            instants += 1
            want_scope = "g" if is_phase_mark else "t"
            if event.get("s") != want_scope:
                _fail(f"{where}: instant event needs scope "
                      f"'s': {want_scope!r}, got {event.get('s')!r}")
        if is_phase_mark:
            phase_marks += 1
        if event["pid"] not in named_processes:
            _fail(f"{where}: pid {event['pid']} has no process_name "
                  f"metadata")
        if (event["pid"], event["tid"]) not in named_threads:
            _fail(f"{where}: tid {event['tid']} (pid {event['pid']}) has "
                  f"no thread_name metadata")
    if spans == 0:
        _fail("no complete (ph='X') span events at all")
    return {"events": len(events), "processes": len(named_processes),
            "threads": len(named_threads), "spans": spans,
            "instants": instants, "phase_marks": phase_marks}


# ---------------------------------------------------------------------------
# Flame outputs
# ---------------------------------------------------------------------------

def check_collapsed(text: str) -> Dict[str, int]:
    """Validate flamegraph.pl collapsed-stack text: each line is
    ``frame;frame;... <positive int>`` with non-empty frames, and at
    least one line exists."""
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        _fail("collapsed-stack output has no samples")
    total = 0
    for i, line in enumerate(lines):
        where = f"line {i + 1}"
        stack, _, weight = line.rpartition(" ")
        if not stack:
            _fail(f"{where}: no stack before the weight")
        try:
            value = int(weight)
        except ValueError:
            _fail(f"{where}: weight {weight!r} is not an integer")
        if value <= 0:
            _fail(f"{where}: weight must be positive, got {value}")
        frames = stack.split(";")
        if any(not frame for frame in frames):
            _fail(f"{where}: empty frame in stack {stack!r}")
        if frames[-1] not in FRAME_NAMES:
            _fail(f"{where}: leaf frame {frames[-1]!r} is not a span "
                  f"frame")
        total += value
    return {"lines": len(lines), "total_weight": total}


def check_speedscope(doc: Any) -> Dict[str, int]:
    """Validate a speedscope JSON document: schema tag, one shared
    frame table, and well-formed ``sampled`` profiles whose samples
    index into it with matching non-negative weights."""
    if not isinstance(doc, dict):
        _fail("top level must be a JSON object")
    if doc.get("$schema") != SPEEDSCOPE_SCHEMA:
        _fail(f"$schema must be {SPEEDSCOPE_SCHEMA!r}")
    frames = doc.get("shared", {}).get("frames")
    if not isinstance(frames, list) or not frames:
        _fail("shared.frames must be a non-empty list")
    for i, frame in enumerate(frames):
        if not isinstance(frame, dict) or not frame.get("name"):
            _fail(f"shared.frames[{i}] has no name")
    profiles = doc.get("profiles")
    if not isinstance(profiles, list) or not profiles:
        _fail("profiles must be a non-empty list")
    samples_total = 0
    for p, profile in enumerate(profiles):
        where = f"profiles[{p}]"
        if profile.get("type") != "sampled":
            _fail(f"{where}: type must be 'sampled'")
        if profile.get("unit") != "seconds":
            _fail(f"{where}: unit must be 'seconds'")
        samples = profile.get("samples")
        weights = profile.get("weights")
        if not isinstance(samples, list) or not samples:
            _fail(f"{where}: samples must be a non-empty list")
        if not isinstance(weights, list) or len(weights) != len(samples):
            _fail(f"{where}: weights must pair samples 1:1")
        for s, stack in enumerate(samples):
            if not isinstance(stack, list) or not stack:
                _fail(f"{where}.samples[{s}] is empty")
            for index in stack:
                if not isinstance(index, int) \
                        or not 0 <= index < len(frames):
                    _fail(f"{where}.samples[{s}]: frame index {index!r} "
                          f"out of range")
        for w, weight in enumerate(weights):
            if not isinstance(weight, (int, float)) or weight < 0:
                _fail(f"{where}.weights[{w}]: bad weight {weight!r}")
        if profile.get("endValue", -1.0) < 0:
            _fail(f"{where}: endValue must be >= 0")
        samples_total += len(samples)
    return {"profiles": len(profiles), "samples": samples_total,
            "frames": len(frames)}


# ---------------------------------------------------------------------------
# Prometheus text snapshot
# ---------------------------------------------------------------------------

def check_prometheus(text: str) -> Dict[str, int]:
    """Validate a Prometheus text-exposition snapshot: every sample
    line is ``name{labels} value`` with a parseable float value, and
    every metric family is introduced by ``# TYPE``."""
    typed = set()
    samples = 0
    for i, line in enumerate(text.splitlines()):
        where = f"line {i + 1}"
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 3 and parts[1] == "TYPE":
                typed.add(parts[2])
            continue
        body, _, value = line.rpartition(" ")
        if not body:
            _fail(f"{where}: no metric name before the value")
        try:
            float(value)
        except ValueError:
            _fail(f"{where}: value {value!r} is not a float")
        name = body.split("{", 1)[0]
        if not name.replace("_", "").replace(":", "").isalnum():
            _fail(f"{where}: bad metric name {name!r}")
        if name not in typed:
            _fail(f"{where}: metric {name!r} has no # TYPE header")
        samples += 1
    if samples == 0:
        _fail("no metric samples at all")
    return {"samples": samples, "families": len(typed)}


# ---------------------------------------------------------------------------
# Dispatch + CLI
# ---------------------------------------------------------------------------

def check_path(path: str) -> str:
    """Sniff the artifact format at *path*, validate it, and return a
    one-line summary.  Raises :class:`SchemaError` when invalid."""
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        _fail(f"cannot read {path}: {exc}")
    stripped = text.lstrip()
    if stripped.startswith("{"):
        try:
            doc = json.loads(text)
        except ValueError as exc:
            _fail(f"{path} is not valid JSON: {exc}")
        if "traceEvents" in doc:
            stats = check_chrome_trace(doc)
            return (f"trace schema OK: {stats['events']} events "
                    f"({stats['processes']} processes, "
                    f"{stats['threads']} threads, {stats['spans']} spans, "
                    f"{stats['instants']} instants, "
                    f"{stats['phase_marks']} phase marks) in {path}")
        if doc.get("$schema") == SPEEDSCOPE_SCHEMA:
            stats = check_speedscope(doc)
            return (f"speedscope schema OK: {stats['profiles']} profiles, "
                    f"{stats['samples']} stacks over {stats['frames']} "
                    f"frames in {path}")
        _fail(f"{path}: unrecognised JSON artifact "
              f"(neither trace_event nor speedscope)")
    if stripped.startswith("#"):
        stats = check_prometheus(text)
        return (f"prometheus schema OK: {stats['samples']} samples in "
                f"{stats['families']} families in {path}")
    stats = check_collapsed(text)
    return (f"collapsed-stack schema OK: {stats['lines']} stacks, "
            f"total weight {stats['total_weight']}us in {path}")


def main(argv: List[str]) -> int:
    """CLI: validate each path argument; exit 1 on the first failure."""
    if not argv:
        print("usage: check_trace_schema.py PATH [PATH ...]\n\n"
              "Validates --trace-out / --flame-out / --prom-out "
              "artifacts against their exporter schema contracts.")
        return 2
    for path in argv:
        try:
            print(check_path(path))
        except SchemaError as exc:
            import sys
            print(f"trace schema check FAILED: {exc}", file=sys.stderr)
            return 1
    return 0
