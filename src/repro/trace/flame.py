"""Cross-request span-flame aggregation.

A single exemplar trace answers "where did *this* request spend its
time"; the flame fold answers "where did the *whole run* spend its
time, and how does that change when a fault window opens".  The
:class:`FlameAccumulator` streams every sampled request's span tree
into interned call-path nodes — folding happens inside
``Tracer.finish`` because the tracer only keeps top-K exemplar traces,
so the fold is the one place the full sampled population is visible.

Fold rules (see DESIGN.md "Observability"):

- Paths are tuples of frame indices into :data:`FRAME_NAMES`
  (the span-kind names plus one structural ``subquery`` grouping
  frame).  Request-level spans fold under ``root``; sub-query spans
  under ``root;subquery``; retry attempts under ``root;subquery;retry``
  and hedged duplicates under ``root;subquery;hedge``.
- ``self`` weight of a path is the exact float sum of the durations of
  every span folded at it.  Spans are siblings, never re-parented, so
  no subtraction happens and every self weight is ``>= 0``.
- ``total`` weight (computed at export) is self plus the self of every
  strictly deeper path.  Sub-queries run concurrently, so sibling
  totals can legitimately exceed the root's wall time — the fold sums
  span time, not wall time (like an off-CPU flame graph summed across
  threads).
- Structural frames (``root``, ``subquery``) and point markers
  (retry/hedge/failed) carry counts but zero self weight.
- Tables are keyed per ``(request class, phase)``, where *phase* is
  stamped by the tracer's phase hook (warmup/measure plus the fault
  families active at request start).

Everything is a pure function of the seed: the fold visits traces in
finish order and spans in record order, both deterministic, so the
float sums are bit-identical across ``--jobs`` and transport settings.

Exporters: :func:`collapsed_stacks` (flamegraph.pl collapsed-stack
text), :func:`speedscope_doc` (speedscope JSON), and the
:func:`flame_columns` / :func:`flame_from_columns` codec that rides
the shared-memory result transport.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple

from .spans import (KIND_NAMES, K_FAILED, K_HEDGE, K_RETRY, K_ROOT, Trace)

__all__ = ["FlameAccumulator", "FRAME_NAMES", "F_SUBQUERY", "build_flame",
           "merge_flames", "collapsed_stacks", "speedscope_doc",
           "flame_columns", "flame_from_columns", "write_flame"]

#: Flame frame vocabulary: every span kind plus the structural
#: ``subquery`` grouping frame.  Paths store indices into this tuple.
FRAME_NAMES: Tuple[str, ...] = KIND_NAMES + ("subquery",)

#: Index of the structural sub-query grouping frame.
F_SUBQUERY = len(KIND_NAMES)

#: Retry/hedge attempt tag for hedged duplicates (mirrors
#: :data:`repro.faults.HEDGE_ATTEMPT`; re-declared to keep the trace
#: package free of a faults import).
_HEDGE_ATTEMPT = -1

#: Floats per path row in the columnar transport form.
_PATH_WIDTH = 3  # count, self, total


class FlameAccumulator:
    """Streaming fold of sampled span trees into call-path nodes.

    ``_tables`` maps ``(klass, phase)`` to ``{path: [count, self]}``;
    paths are tuples of :data:`FRAME_NAMES` indices.  The accumulator
    never stores traces — one dict update per span keeps the fold
    cheap enough to run at every ``Tracer.finish``.
    """

    __slots__ = ("_tables",)

    def __init__(self) -> None:
        self._tables: Dict[Tuple[str, str],
                           Dict[Tuple[int, ...], List[float]]] = {}

    def fold(self, trace: Trace, phase: str) -> None:
        """Fold one finished trace into the (class, phase) table."""
        table = self._tables.get((trace.klass, phase))
        if table is None:
            table = self._tables[(trace.klass, phase)] = {}
        for kind, start, end, seq, attempt, _work, _shard, _replica, \
                _flags in trace.spans:
            if kind == K_ROOT:
                path = (K_ROOT,)
                weight = 0.0  # structural: duration lives in the leaves
            elif kind == K_RETRY or kind == K_HEDGE or kind == K_FAILED:
                # Point markers: count-only leaves under the sub-query
                # frame (they have zero duration by construction).
                path = (K_ROOT, F_SUBQUERY, kind)
                weight = 0.0
            elif seq < 0:
                # Request-level span (parse, assemble, client-side
                # network legs of the critical sub-query, ...).
                path = (K_ROOT, kind)
                weight = end - start
            elif attempt == 0:
                path = (K_ROOT, F_SUBQUERY, kind)
                weight = end - start
            elif attempt == _HEDGE_ATTEMPT:
                path = (K_ROOT, F_SUBQUERY, K_HEDGE, kind)
                weight = end - start
            else:
                path = (K_ROOT, F_SUBQUERY, K_RETRY, kind)
                weight = end - start
            node = table.get(path)
            if node is None:
                table[path] = [1.0, weight]
            else:
                node[0] += 1.0
                node[1] += weight

    def tables(self) -> Dict[Tuple[str, str],
                             Dict[Tuple[int, ...], List[float]]]:
        return self._tables

    def __bool__(self) -> bool:
        return bool(self._tables)


def build_flame(acc: FlameAccumulator) -> Dict[str, Any]:
    """Fold an accumulator into the canonical JSON-able flame summary.

    Shape::

        {"frames": [name, ...],
         "tables": {klass: {phase: {"paths": [[i, ...], ...],
                                    "count": [...], "self": [...],
                                    "total": [...]}}}}

    Keys and paths are sorted, so the summary is canonical regardless
    of fold insertion order; ``total`` is self plus the self of every
    strictly deeper path.
    """
    tables: Dict[str, Dict[str, Any]] = {}
    by_class: Dict[str, Dict[str, Dict[Tuple[int, ...], List[float]]]] = {}
    for (klass, phase), table in acc.tables().items():
        by_class.setdefault(klass, {})[phase] = table
    for klass in sorted(by_class):
        tables[klass] = {}
        for phase in sorted(by_class[klass]):
            table = by_class[klass][phase]
            paths = sorted(table)
            selves = [table[path][1] for path in paths]
            totals = list(selves)
            # Strict-prefix containment over the sorted path list:
            # every deeper path's self rolls up into each ancestor.
            for i, path in enumerate(paths):
                depth = len(path)
                for j in range(i + 1, len(paths)):
                    deeper = paths[j]
                    if deeper[:depth] != path:
                        break
                    totals[i] += selves[j]
            tables[klass][phase] = {
                "paths": [list(path) for path in paths],
                "count": [table[path][0] for path in paths],
                "self": selves,
                "total": totals,
            }
    return {"frames": list(FRAME_NAMES), "tables": tables}


def merge_flames(flames: Dict[str, Optional[Dict[str, Any]]]
                 ) -> Dict[str, Dict[str, Any]]:
    """Drop ``None`` entries (untraced points) from a label → flame
    map, preserving order."""
    return {label: flame for label, flame in flames.items()
            if flame is not None}


# ---------------------------------------------------------------------------
# Columnar transport form
# ---------------------------------------------------------------------------

def flame_columns(flame: Dict[str, Any]
                  ) -> Tuple[Dict[str, Any], List[float]]:
    """Split a flame summary into ``(structure, floats)`` for the
    shared-memory result transport (same contract as
    :func:`repro.trace.export.summary_columns`)."""
    structure = {
        "frames": list(flame["frames"]),
        "tables": [
            (klass, [(phase, [list(path) for path in entry["paths"]])
                     for phase, entry in phases.items()])
            for klass, phases in flame["tables"].items()
        ],
    }
    floats: List[float] = []
    for _klass, phases in flame["tables"].items():
        for _phase, entry in phases.items():
            for count, self_w, total_w in zip(entry["count"], entry["self"],
                                              entry["total"]):
                floats.append(count)
                floats.append(self_w)
                floats.append(total_w)
    return structure, floats


def flame_from_columns(structure: Dict[str, Any],
                       floats: List[float]) -> Dict[str, Any]:
    """Exact inverse of :func:`flame_columns`."""
    tables: Dict[str, Dict[str, Any]] = {}
    pos = 0
    for klass, phases in structure["tables"]:
        tables[klass] = {}
        for phase, paths in phases:
            counts, selves, totals = [], [], []
            for _ in paths:
                counts.append(floats[pos])
                selves.append(floats[pos + 1])
                totals.append(floats[pos + 2])
                pos += _PATH_WIDTH
            tables[klass][phase] = {
                "paths": [list(path) for path in paths],
                "count": counts, "self": selves, "total": totals,
            }
    return {"frames": list(structure["frames"]), "tables": tables}


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------

def collapsed_stacks(flames: Dict[str, Dict[str, Any]]) -> str:
    """flamegraph.pl-compatible collapsed-stack text.

    One line per non-empty path: semicolon-joined frames (label, class,
    phase, then the span frames) and the self weight in integer
    microseconds.  Zero-weight paths (structural frames, point
    markers) are prefix-only and therefore omitted, as the collapsed
    format requires positive sample counts.
    """
    lines: List[str] = []
    for label in sorted(flames):
        flame = flames[label]
        frames = flame["frames"]
        for klass in sorted(flame["tables"]):
            for phase in sorted(flame["tables"][klass]):
                entry = flame["tables"][klass][phase]
                for path, self_w in zip(entry["paths"], entry["self"]):
                    micros = int(round(1e6 * self_w))
                    if micros <= 0:
                        continue
                    stack = ";".join([label, klass, phase]
                                     + [frames[i] for i in path])
                    lines.append(f"{stack} {micros}")
    return "\n".join(lines) + ("\n" if lines else "")


#: The speedscope file-format schema URL (the viewer keys on it).
SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"


def speedscope_doc(flames: Dict[str, Dict[str, Any]],
                   name: str = "repro flame") -> Dict[str, Any]:
    """Speedscope JSON: one ``sampled`` profile per (label, class,
    phase) with each aggregated path as a weighted stack.

    Weights are self seconds; zero-weight paths are dropped (they are
    visible as prefixes of deeper stacks).  Frame indices reference
    one shared :data:`FRAME_NAMES` table, so every profile shares the
    interned frame vocabulary.
    """
    shared_frames = [{"name": frame} for frame in FRAME_NAMES]
    profiles: List[Dict[str, Any]] = []
    for label in sorted(flames):
        flame = flames[label]
        for klass in sorted(flame["tables"]):
            for phase in sorted(flame["tables"][klass]):
                entry = flame["tables"][klass][phase]
                samples, weights = [], []
                for path, self_w in zip(entry["paths"], entry["self"]):
                    if self_w <= 0.0:
                        continue
                    samples.append(list(path))
                    weights.append(self_w)
                if not samples:
                    continue
                profiles.append({
                    "type": "sampled",
                    "name": f"{label} / {klass} / {phase}",
                    "unit": "seconds",
                    "startValue": 0.0,
                    "endValue": sum(weights),
                    "samples": samples,
                    "weights": weights,
                })
    return {
        "$schema": SPEEDSCOPE_SCHEMA,
        "shared": {"frames": shared_frames},
        "profiles": profiles,
        "exporter": "repro.trace.flame",
        "name": name,
    }


def write_flame(path: str, flames: Dict[str, Dict[str, Any]]) -> str:
    """Write *flames* to *path*, creating missing parent directories.

    ``.json`` paths get a speedscope document (open at
    https://www.speedscope.app); anything else gets collapsed-stack
    text for flamegraph.pl / inferno.  Returns the format written
    (``"speedscope"`` or ``"collapsed"``).
    """
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    if path.endswith(".json"):
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(speedscope_doc(flames), handle, indent=1)
            handle.write("\n")
        return "speedscope"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(collapsed_stacks(flames))
    return "collapsed"
