"""Span records, interned span kinds, and the :class:`Tracer`.

Design constraints (see DESIGN.md "Tracing & critical-path
attribution"):

- **Deterministic.** The only randomness is the head-sampling draw,
  taken from a dedicated named RNG stream in workload issue order.
  Nothing a hook records feeds back into simulation behaviour, so a
  traced run's *measured* results are float-identical to the same run
  untraced, and tracing off makes no draws at all.
- **Allocation-light.** Span kinds are interned handles in the style
  of ``Metrics.counter`` (PR 6): every hook site uses a pre-resolved
  integer index, and a span is one 9-tuple appended to the trace's
  list.  Unsampled requests cost one attribute test per hook.
- **Self-describing.** A span is ``(kind, start, end, seq, attempt,
  work, shard, replica, flags)``.  ``seq`` is the sub-query sequence
  number (``-1`` for request-level spans such as parse/assemble and
  the client-side network legs), ``attempt`` the retry/hedge attempt
  tag (``HEDGE_ATTEMPT`` = -1 marks hedges), ``work`` the CPU amount
  actually charged inside a CPU span (so queueing = elapsed - work),
  ``shard``/``replica`` the datastore target where known.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["SpanKind", "Span", "Trace", "Tracer", "KIND_NAMES",
           "K_ROOT", "K_PARSE", "K_SEND", "K_NET_REQUEST",
           "K_NET_RESPONSE", "K_SERVER_QUEUE", "K_SERVICE",
           "K_SELECTOR_WAIT", "K_HANDOFF", "K_INBOX_WAIT", "K_PROCESS",
           "K_ASSEMBLE", "K_RETRY", "K_HEDGE", "K_FAILED",
           "FLAG_DROPPED", "FLAG_SYNTHESIZED"]

#: Canonical span-kind names, in index order.  Hooks use the module's
#: ``K_*`` integer constants; the :class:`Tracer` pre-interns all of
#: them so ``tracer.kinds[K_SERVICE].name == "service"`` always holds
#: and exporters never need a lookup table of their own.
KIND_NAMES = (
    "root",            # whole request: workload issue -> response receipt
    "parse",           # app CPU: HTTP request parse
    "send",            # per-subquery send syscall on the app thread
    "net_request",     # wire transit toward the server (query / request)
    "net_response",    # wire transit toward the client (response)
    "server_queue",    # datastore server: arrival -> service start
    "service",         # datastore server: service time
    "selector_wait",   # message queued in a reactor selector
    "handoff",         # completed state crossing threads (task channel)
    "inbox_wait",      # message queued in a blocking-recv inbox
    "process",         # app CPU: per-response decode/processing
    "assemble",        # app CPU: final result assembly
    "retry",           # point event: resilience retry fired
    "hedge",           # point event: resilience hedge fired
    "failed",          # point event: subquery exhausted -> synthesized
)

(K_ROOT, K_PARSE, K_SEND, K_NET_REQUEST, K_NET_RESPONSE, K_SERVER_QUEUE,
 K_SERVICE, K_SELECTOR_WAIT, K_HANDOFF, K_INBOX_WAIT, K_PROCESS,
 K_ASSEMBLE, K_RETRY, K_HEDGE, K_FAILED) = range(len(KIND_NAMES))

#: Span flag bits.
FLAG_DROPPED = 1       # the message was dropped in transit (fault)
FLAG_SYNTHESIZED = 2   # synthesized failed=True response (no real wire)

#: A span record, as stored on a :class:`Trace` — a plain tuple, kept
#: as a named alias for annotation purposes only.
Span = Tuple[float, float, float, float, float, float, float, float, float]


class SpanKind:
    """An interned span kind: a name bound to a stable index."""

    __slots__ = ("name", "index")

    def __init__(self, name: str, index: int) -> None:
        self.name = name
        self.index = index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanKind({self.name!r}, {self.index})"


class Trace:
    """The span tree of one sampled request (stored flat; the tree
    structure is implied by seq/attempt tags and containment)."""

    __slots__ = ("request_id", "klass", "start", "rt", "spans",
                 "crit_seq", "crit_attempt", "crit_shard", "crit_replica",
                 "attempts", "breakdown")

    def __init__(self, request_id: int, klass: str, start: float) -> None:
        self.request_id = request_id
        self.klass = klass
        self.start = start
        self.rt = -1.0
        self.spans: List[Span] = []
        # The critical sub-query: the (seq, attempt) whose response
        # completed the fanout join, stamped by RequestState.absorb.
        self.crit_seq = -1
        self.crit_attempt = 0
        self.crit_shard = -1
        self.crit_replica = -1
        self.attempts = 0
        self.breakdown: Optional[Dict[str, float]] = None

    def add(self, kind: int, start: float, end: float, seq: int = -1,
            attempt: int = 0, work: float = 0.0, shard: int = -1,
            replica: int = -1, flags: int = 0) -> None:
        self.spans.append((kind, start, end, seq, attempt, work, shard,
                           replica, flags))

    def point(self, kind: int, at: float, seq: int = -1, attempt: int = 0,
              shard: int = -1, replica: int = -1, flags: int = 0) -> None:
        """A zero-duration marker (retry / hedge / failed events)."""
        self.spans.append((kind, at, at, seq, attempt, 0.0, shard,
                           replica, flags))

    def note_win(self, response: Any) -> None:
        """Stamp the critical sub-query from the response that
        completed the fanout join."""
        self.crit_seq = response.seq
        self.crit_attempt = response.attempt
        self.crit_shard = response.shard_id
        self.crit_replica = getattr(response, "replica", -1)


class _ClassAgg:
    """Per-request-class aggregates: counts, category sums, and the
    top-K slowest exemplar traces (a min-heap on rt)."""

    __slots__ = ("count", "rt_sum", "sums", "heap")

    def __init__(self, categories: Tuple[str, ...]) -> None:
        self.count = 0
        self.rt_sum = 0.0
        self.sums = {cat: 0.0 for cat in categories}
        self.heap: List[Tuple[float, int, Trace]] = []


class Tracer:
    """Seed-deterministic head-sampled request tracer.

    Owned by the :class:`Simulator` (``sim.tracer``); ``None`` when
    tracing is off, so every hook is one attribute test on the cold
    path.  ``sample()`` draws once per issued request from the stream
    the runner hands in (``trace.sample``), in workload issue order —
    a pure function of the seed.
    """

    def __init__(self, rng, sample_rate: float = 0.01,
                 keep_exemplars: int = 3) -> None:
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError("sample_rate must be in (0, 1]")
        if keep_exemplars < 1:
            raise ValueError("keep_exemplars must be >= 1")
        self._rng = rng
        self.sample_rate = sample_rate
        self.keep_exemplars = keep_exemplars
        self.kinds: List[SpanKind] = []
        self._kind_index: Dict[str, SpanKind] = {}
        for name in KIND_NAMES:
            self.kind(name)
        # Message -> stamp maps for open wait/arrival intervals.  Keyed
        # by id(): entries are written and popped, never iterated, so
        # CPython id values cannot influence any simulation result.
        self._wait_stamp: Dict[int, float] = {}
        self._arrive_stamp: Dict[int, float] = {}
        self.window_start = 0.0
        self.sampled = 0
        self._next_request_id = 0
        self._finish_seq = 0
        self._classes: Dict[str, _ClassAgg] = {}
        #: Optional :class:`repro.trace.flame.FlameAccumulator`: when
        #: set, ``finish`` folds every sampled trace's span tree into
        #: the cross-request flame tables (the tracer itself only keeps
        #: top-K exemplars, so the fold must stream here).
        self.flame = None
        #: Optional ``start_time -> phase name`` hook (set by the
        #: runner): labels each folded trace with the workload phase
        #: (warmup/measure + active fault families) it started in.
        self.phase_of = None

    # -- interning --------------------------------------------------------

    def kind(self, name: str) -> SpanKind:
        """Return (interning if needed) the span kind called *name* —
        the ``Metrics.counter`` handle pattern."""
        handle = self._kind_index.get(name)
        if handle is None:
            handle = SpanKind(name, len(self.kinds))
            self.kinds.append(handle)
            self._kind_index[name] = handle
        return handle

    # -- sampling & lifecycle ---------------------------------------------

    def sample(self) -> bool:
        """One head-sampling draw (workload issue order)."""
        return self._rng.random() < self.sample_rate

    def begin(self, klass: str, now: float) -> Trace:
        trace = Trace(self._next_request_id, klass, now)
        self._next_request_id += 1
        return trace

    def finish(self, trace: Trace, rt: float) -> None:
        """Close a trace with its *measured* end-to-end latency (the
        exact float the workload recorder stores), attribute it, and
        fold it into the per-class aggregates."""
        from .critical_path import CATEGORIES, attribute

        trace.rt = rt
        trace.add(K_ROOT, trace.start, trace.start + rt)
        trace.breakdown = attribute(trace)
        self.sampled += 1
        agg = self._classes.get(trace.klass)
        if agg is None:
            agg = self._classes[trace.klass] = _ClassAgg(CATEGORIES)
        agg.count += 1
        agg.rt_sum += rt
        sums = agg.sums
        for cat, value in trace.breakdown.items():
            sums[cat] += value
        heapq.heappush(agg.heap, (rt, self._finish_seq, trace))
        self._finish_seq += 1
        if len(agg.heap) > self.keep_exemplars:
            heapq.heappop(agg.heap)
        if self.flame is not None:
            phase = (self.phase_of(trace.start)
                     if self.phase_of is not None else "run")
            self.flame.fold(trace, phase)

    def reset(self, now: float) -> None:
        """Drop warm-up aggregates at the measurement-window start
        (mirrors ``Metrics.mark_window_start``).  In-flight stamps are
        kept: requests spanning the boundary keep tracing.  The flame
        accumulator is *not* cleared — warm-up requests stay in the
        flame under their own ``warmup`` phase label."""
        self.window_start = now
        self.sampled = 0
        self._classes.clear()

    # -- message resolution -----------------------------------------------

    @staticmethod
    def trace_of(message: Any) -> Optional[Trace]:
        """The trace a message belongs to, or ``None``.

        ``Query``/``QueryResponse`` carry their request state in
        ``.context`` (whose ``trace`` slot holds the trace);
        ``HttpRequest``/``HttpResponse`` and a posted ``RequestState``
        carry a ``trace`` attribute directly.
        """
        context = getattr(message, "context", None)
        if context is not None:
            return getattr(context, "trace", None)
        return getattr(message, "trace", None)

    # -- open-interval stamps ---------------------------------------------

    def stamp_wait(self, message: Any, now: float) -> None:
        self._wait_stamp[id(message)] = now

    def pop_wait(self, message: Any) -> Optional[float]:
        return self._wait_stamp.pop(id(message), None)

    def stamp_arrival(self, message: Any, now: float) -> None:
        self._arrive_stamp[id(message)] = now

    def pop_arrival(self, message: Any) -> Optional[float]:
        return self._arrive_stamp.pop(id(message), None)

    # -- inspection --------------------------------------------------------

    def classes(self) -> Dict[str, _ClassAgg]:
        return self._classes

    def exemplars(self, klass: str) -> List[Trace]:
        """Slowest sampled traces for *klass*, slowest first
        (deterministic: rt then finish order)."""
        agg = self._classes.get(klass)
        if agg is None:
            return []
        return [trace for _rt, _seq, trace in
                sorted(agg.heap, key=lambda item: (-item[0], -item[1]))]
