"""repro.trace — deterministic per-request span tracing.

A :class:`Tracer` owned by the :class:`~repro.sim.kernel.Simulator`
records a span tree for every *sampled* request: the root span covers
the whole request from workload issue to response receipt, child spans
cover driver hand-off, per-subquery sends, network transit, datastore
queueing + service, selector waits, application CPU, and the
retry/hedge/failover machinery of :mod:`repro.faults`.

Head-based sampling draws from its own named
:class:`~repro.sim.rng.RngStreams` stream, so the sampled set is a
pure function of the experiment seed — identical across ``--jobs 1``
and ``--jobs N`` — and tracing *off* makes zero draws and zero
behavioural changes (golden results stay byte-identical).

:mod:`repro.trace.critical_path` attributes each traced request's
end-to-end latency into exact, additive categories;
:mod:`repro.trace.export` renders Chrome ``trace_event`` JSON and the
compact columnar summary that rides the shared-memory result
transport.
"""

from .critical_path import (CATEGORIES, additivity_residual, attribute)
from .export import (build_summary, chrome_trace, summary_columns,
                     summary_from_columns, write_chrome_trace)
from .flame import (FRAME_NAMES, F_SUBQUERY, FlameAccumulator, build_flame,
                    collapsed_stacks, flame_columns, flame_from_columns,
                    merge_flames, speedscope_doc, write_flame)
from .schema import (SchemaError, check_chrome_trace, check_collapsed,
                     check_path, check_prometheus, check_speedscope)
from .spans import (FLAG_DROPPED, FLAG_SYNTHESIZED, KIND_NAMES, K_ASSEMBLE,
                    K_FAILED, K_HANDOFF, K_HEDGE, K_INBOX_WAIT,
                    K_NET_REQUEST, K_NET_RESPONSE, K_PARSE, K_PROCESS,
                    K_RETRY, K_ROOT, K_SELECTOR_WAIT, K_SEND, K_SERVER_QUEUE,
                    K_SERVICE, Span, SpanKind, Trace, Tracer)

__all__ = [
    "Tracer", "Trace", "Span", "SpanKind", "KIND_NAMES",
    "K_ROOT", "K_PARSE", "K_SEND", "K_NET_REQUEST", "K_NET_RESPONSE",
    "K_SERVER_QUEUE", "K_SERVICE", "K_SELECTOR_WAIT", "K_HANDOFF",
    "K_INBOX_WAIT", "K_PROCESS", "K_ASSEMBLE", "K_RETRY", "K_HEDGE",
    "K_FAILED", "FLAG_DROPPED", "FLAG_SYNTHESIZED",
    "CATEGORIES", "attribute", "additivity_residual",
    "build_summary", "chrome_trace", "write_chrome_trace",
    "summary_columns", "summary_from_columns",
    "FlameAccumulator", "FRAME_NAMES", "F_SUBQUERY", "build_flame",
    "merge_flames", "collapsed_stacks", "speedscope_doc",
    "flame_columns", "flame_from_columns", "write_flame",
    "SchemaError", "check_chrome_trace", "check_collapsed",
    "check_speedscope", "check_prometheus", "check_path",
]
