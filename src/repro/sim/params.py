"""Calibrated cost model for the simulated testbed.

All constants are in **seconds** (or bytes for sizes).  They were chosen
so that absolute throughputs land in the same order of magnitude as the
paper's testbed (Figs. 4-5: ~100 req/s at 20 kB responses, ~5 K req/s at
0.1 kB) while keeping the *mechanisms* — context-switch cost, mutex
wake-ups, select() syscalls, thread spawning — explicit and individually
attributable, which is what the paper's perf tables break down.

The defaults model a small (2-core) application-server node — the
paper's perf tables (tens of concurrently running threads for AIO,
CPU scarcity across Netty's 3-5 reactor threads in Table 3) are only
consistent with a few cores — talking to 20 datastore shards over a
1 Gbps LAN.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

__all__ = ["CostParams", "KB"]

#: One kilobyte, in bytes.
KB = 1024


@dataclass
class CostParams:
    """Every tunable cost in the simulation, with calibrated defaults."""

    # --- CPU / scheduler -------------------------------------------------
    #: Number of cores on the application-server node.  The paper's
    #: perf evidence (Table 1: 22 concurrently running threads for the
    #: AIO server; Table 3: CPU scarcity across 3-5 reactor threads)
    #: indicates a small multicore app server; two cores reproduces the
    #: paper's orderings best.
    app_cores: int = 2
    #: Scheduler time slice; a thread runs at most this long per dispatch.
    quantum: float = 1.0e-3
    #: Direct cost of switching a core between two distinct threads.
    ctx_switch_cost: float = 1.2e-6
    #: Indirect context-switch cost (cache/TLB refill) reached when the
    #: runnable-thread population saturates the cache working set; the
    #: mechanism behind thread-based collapse at high concurrency.
    ctx_cache_penalty: float = 45.0e-6
    #: Runnable-thread count at which the cache penalty saturates.
    ctx_cache_threads: int = 600
    #: When a thread is resumed after being preempted mid-job, it
    #: refills the caches with its working set: the refill cost is this
    #: fraction of the CPU time the job had already consumed...
    resume_reload_fraction: float = 0.35
    #: ...capped at this much consumed work (the working set cannot
    #: exceed the cache).
    resume_reload_cap: float = 2.0e-3
    #: CPU charged (category ``thread_init``) when a pool spawns a thread.
    thread_spawn_cost: float = 120.0e-6

    # --- locking ----------------------------------------------------------
    #: CPU charged (category ``lock``) on each side of a contended
    #: mutex hand-off (futex wait + futex wake).
    futex_cost: float = 4.0e-6
    #: CPU cost of the atomic compare-and-swap every lock acquisition
    #: performs before deciding whether to take the futex slow path.
    cas_cost: float = 0.3e-6
    #: Time a driver holds its connection-pool mutex per checkout/checkin
    #: (free-list scan + bookkeeping).
    mutex_hold_time: float = 3.0e-6
    #: Time a worker pool holds its task-queue lock per submit/dequeue
    #: (linked-queue pointer swing).
    queue_hold_time: float = 0.8e-6
    #: Allocations below this size are served from thread-local caches
    #: (TLAB/magazine) and never touch the shared allocator lock.
    alloc_tlab_threshold: int = 4096
    #: Base hold time of the shared buffer-allocator lock (architectures
    #: without per-thread arenas: thread-based, Type-1, Type-2b pools).
    alloc_base_hold: float = 1.0e-6
    #: Additional allocator hold per kB allocated.
    alloc_per_kb_hold: float = 2.0e-6
    #: Fraction of response processing that happens under the owning
    #: connection's stream lock when *concurrent worker threads* decode
    #: from shared multiplexed connections (Type-2b); reactor designs
    #: serialise per-connection work on one thread and need no lock.
    decode_lock_fraction: float = 0.5

    # --- syscalls ----------------------------------------------------------
    #: Base CPU cost of one select()/epoll_wait() call (Java NIO's
    #: Selector.select carries selected-key set maintenance on top of
    #: the raw epoll_wait).
    select_base_cost: float = 18.0e-6
    #: Additional CPU per readiness event returned by select().
    select_per_event_cost: float = 0.5e-6
    #: CPU cost of waking another reactor's selector (write to wakeup fd).
    selector_wakeup_cost: float = 5.0e-6
    #: CPU cost of one send()/write() syscall.
    send_syscall_cost: float = 5.0e-6
    #: CPU cost of one blocking recv()/read() syscall completion.
    recv_syscall_cost: float = 4.0e-6
    #: Poll interval of a Netty-style event loop when idle (ioRatio /
    #: timer tick); Type-2a reactors re-select at least this often.
    netty_select_timeout: float = 0.25e-3
    #: Maximum readiness events a Netty-style loop consumes per select
    #: cycle (the ioRatio=50 event/task alternation bounds its batches;
    #: a blocking group selector like AIO's drains everything).
    netty_select_max_batch: int = 8
    #: Selectors that block indefinitely (AIO, DoubleFaceAD) pass None;
    #: this is kept here for documentation purposes.

    # --- application-server work ------------------------------------------
    #: CPU to read + parse one upstream HTTP request.
    http_parse_cost: float = 20.0e-6
    #: CPU to build + send one fanout query (serialisation + write).
    fanout_send_cost: float = 6.0e-6
    #: Fixed CPU to handle one fanout response event (deserialise the
    #: wire format, allocate/bookkeep, run the per-sub-result callback).
    response_base_cost: float = 40.0e-6
    #: CPU per kB of fanout-response payload (decode + copy).
    response_per_kb_cost: float = 70.0e-6
    #: Fixed CPU to assemble + send the final HTTP response.
    assemble_base_cost: float = 15.0e-6
    #: CPU per kB of assembled payload.
    assemble_per_kb_cost: float = 6.0e-6
    #: Extra per-request business-logic CPU (RUBBoS-style pages); the
    #: JMeter stress workloads use 0.  This is the *mean*; see
    #: ``request_cpu_cv``.
    request_cpu: float = 0.0
    #: Coefficient of variation of the business-logic CPU (RUBBoS page
    #: costs are heavy-tailed: most pages are cheap, "view all" pages
    #: are not).  0 makes the cost deterministic.
    request_cpu_cv: float = 0.0

    # --- network -------------------------------------------------------------
    #: One-way propagation latency on the local testbed LAN.
    net_latency: float = 60.0e-6
    #: Link bandwidth in bytes/second (1 Gbps).
    net_bandwidth: float = 125.0e6
    #: Extra one-way latency to a *remote* datastore (Amazon DynamoDB in
    #: the paper is the only remote cluster).
    remote_extra_latency: float = 1.0e-3

    # --- datastore service model ------------------------------------------
    #: Mean service time of a point lookup on a 1 GB shard.
    point_lookup_mean: float = 55.0e-6
    #: Additional mean service time per kB scanned (large responses are
    #: produced by scan queries in the paper's setup).
    scan_per_kb: float = 18.0e-6
    #: Coefficient of variation of datastore service times (the "variety
    #: of each shard" that motivates the paper's scheduler).
    service_cv: float = 0.55
    #: Multiplier applied to service means for large (10 GB) shards; the
    #: paper reports 0.12 ms -> 0.18 ms average response time.
    large_shard_factor: float = 1.5
    #: Range (low, high) of per-shard speed multipliers, modelling
    #: heterogeneous shard servers.
    shard_speed_spread: tuple = (0.9, 1.25)
    #: Number of independent service contexts per shard server (a shard
    #: can serve this many queries concurrently before queueing).
    shard_concurrency: int = 4

    # --- thread pools ---------------------------------------------------------
    #: Size of the pre-defined pool used by Type-1 async drivers (the
    #: pool must cover peak concurrency x fanout sync calls in flight).
    type1_pool_size: int = 256
    #: Max size of the on-demand JVM pool used by the Type-2b AIO driver.
    aio_pool_max: int = 64
    #: Idle time after which an on-demand worker terminates.
    aio_pool_idle_timeout: float = 30.0e-3

    # --- misc -------------------------------------------------------------------
    #: Size of an upstream HTTP request on the wire.
    request_size: int = 300
    #: Size of a fanout query message on the wire.
    query_size: int = 180

    #: Free-form per-experiment annotations (kept for provenance).
    notes: Dict[str, str] = field(default_factory=dict)

    def with_overrides(self, **kwargs) -> "CostParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    def response_process_cost(self, size_bytes: int) -> float:
        """App-server CPU to process one fanout response of *size_bytes*."""
        return self.response_base_cost + self.response_per_kb_cost * (size_bytes / KB)

    def assemble_cost(self, total_bytes: int) -> float:
        """App-server CPU to assemble the final response."""
        return self.assemble_base_cost + self.assemble_per_kb_cost * (total_bytes / KB)

    def transfer_time(self, size_bytes: int) -> float:
        """Wire time for *size_bytes* at the modelled bandwidth."""
        return size_bytes / self.net_bandwidth
