"""Deterministic random-number streams.

Every stochastic element of the simulation (service times, think times,
shard speed factors, key choices, ...) draws from a *named stream* so
that adding a new consumer of randomness never perturbs the draws seen
by existing consumers.  Streams are derived from a single root seed.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Dict

__all__ = ["RngStreams", "lognormal_from_mean_cv"]


class RngStreams:
    """A registry of independent, reproducibly seeded RNG streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the stream called *name*."""
        stream = self._streams.get(name)
        if stream is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            stream = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RngStreams":
        """Derive a child registry (e.g. one per shard server)."""
        digest = hashlib.sha256(f"{self.seed}/{name}".encode()).digest()
        return RngStreams(int.from_bytes(digest[:8], "big"))


def lognormal_from_mean_cv(rng: random.Random, mean: float, cv: float) -> float:
    """Draw a lognormal sample with the given *mean* and coefficient of
    variation *cv* (= std/mean).

    This parameterisation is what a measurement paper reports ("average
    response time 0.12 ms with moderate variability"), so it is what the
    datastore service-time model exposes.
    """
    if mean <= 0:
        raise ValueError("mean must be positive")
    if cv <= 0:
        return mean
    sigma2 = math.log(1.0 + cv * cv)
    mu = math.log(mean) - sigma2 / 2.0
    return rng.lognormvariate(mu, math.sqrt(sigma2))
