"""Network links, connections, and endpoints.

The network model is first-order: a message sent on a connection is
delivered to the remote endpoint after ``latency + size/bandwidth``.
That is all the studied phenomena require — every effect in the paper is
on the application-server CPU, not in the network.

Endpoints abstract *how the receiver learns about the message*:

- :class:`ChannelEndpoint` feeds a reactor's :class:`~repro.sim.syscalls.Selector`
  (asynchronous servers).
- :class:`InboxEndpoint` feeds a blocking queue read by a dedicated
  thread (thread-based servers, datastore shards).
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from .cpu import Cpu
from .kernel import Simulator
from .metrics import Metrics
from .params import CostParams
from .resources import Queue
from .syscalls import Channel
from .threads import SimThread
from ..trace import (FLAG_DROPPED, K_INBOX_WAIT, K_NET_REQUEST,
                     K_NET_RESPONSE)

__all__ = ["Endpoint", "ChannelEndpoint", "QueueEndpoint", "InboxEndpoint", "Connection"]

_conn_ids = itertools.count(1)


class Endpoint:
    """Where one side of a connection delivers inbound messages."""

    def deliver(self, message: Any) -> None:
        raise NotImplementedError


class ChannelEndpoint(Endpoint):
    """Delivers inbound messages as selector readiness events."""

    __slots__ = ("channel",)

    def __init__(self, channel: Channel) -> None:
        self.channel = channel

    def deliver(self, message: Any) -> None:
        self.channel.deliver(message)


class QueueEndpoint(Endpoint):
    """Delivers inbound messages to a plain queue with no CPU charge.

    Used for nodes whose CPU is not modelled (the client machines of the
    workload generator).
    """

    __slots__ = ("queue",)

    def __init__(self, queue: Queue) -> None:
        self.queue = queue

    def deliver(self, message: Any) -> None:
        self.queue.put(message)


class InboxEndpoint(Endpoint):
    """Delivers inbound messages to a blocking FIFO inbox.

    ``recv`` charges the reader the blocking-read syscall cost on
    completion, modelling ``read()`` returning with data.
    """

    __slots__ = ("sim", "cpu", "params", "metrics", "queue",
                 "_blocking_wakes")

    def __init__(self, sim: Simulator, cpu: Cpu, params: CostParams,
                 metrics: Optional[Metrics] = None) -> None:
        self.sim = sim
        self.cpu = cpu
        self.params = params
        self.metrics = metrics if metrics is not None else cpu.metrics
        self.queue = Queue(sim)
        self._blocking_wakes = self.metrics.counter("net.blocking_recv_wakes")

    def deliver(self, message: Any) -> None:
        tracer = self.sim.tracer
        if tracer is not None and tracer.trace_of(message) is not None:
            tracer.stamp_wait(message, self.sim.now)
        self.queue.put(message)

    def recv(self, thread: SimThread):
        """Coroutine: block until a message arrives; returns it.

        A read that actually blocked pays the park/unpark (futex) cost
        on wake-up — the "Locking (mutex)" overhead perf attributes to
        blocking sync drivers in the paper's Table 1.
        """
        get_event = self.queue.get()
        blocked = not get_event.triggered
        message = yield get_event
        tracer = self.sim.tracer
        if tracer is not None:
            trace = tracer.trace_of(message)
            if trace is not None:
                started = tracer.pop_wait(message)
                if started is not None:
                    trace.add(K_INBOX_WAIT, started, self.sim.now,
                              seq=getattr(message, "seq", -1),
                              attempt=getattr(message, "attempt", 0))
        if blocked:
            self._blocking_wakes.add()
            yield self.cpu.execute(thread, self.params.futex_cost, "lock")
        yield self.cpu.execute(thread, self.params.recv_syscall_cost, "syscall")
        return message


class Connection:
    """A bidirectional connection between two endpoints.

    Each direction is independent; delivery time is
    ``latency + size / bandwidth``.  ``send`` charges the sending thread
    one write-syscall of CPU (category ``syscall``) — the per-message
    kernel crossing the paper counts among driver overheads.
    """

    __slots__ = ("sim", "metrics", "params", "latency", "cid",
                 "endpoint_a", "endpoint_b", "faults",
                 "_messages", "_bytes")

    def __init__(self, sim: Simulator, metrics: Metrics, params: CostParams,
                 endpoint_a: Optional[Endpoint] = None,
                 endpoint_b: Optional[Endpoint] = None,
                 latency: Optional[float] = None,
                 faults: Optional[Any] = None) -> None:
        self.sim = sim
        self.metrics = metrics
        self.params = params
        self.latency = latency if latency is not None else params.net_latency
        self.cid = next(_conn_ids)
        self.endpoint_a = endpoint_a
        self.endpoint_b = endpoint_b
        #: Optional :class:`~repro.faults.FaultSchedule`: links wired to
        #: a faulty cluster consult it for latency spikes and message
        #: loss (both directions).  None on healthy links.
        self.faults = faults
        # Interned per-message counters (shared handles across conns).
        self._messages = metrics.counter("net.messages")
        self._bytes = metrics.counter("net.bytes")

    def attach(self, side: str, endpoint: Endpoint) -> None:
        """Attach *endpoint* to side ``"a"`` or ``"b"``."""
        if side == "a":
            self.endpoint_a = endpoint
        elif side == "b":
            self.endpoint_b = endpoint
        else:
            raise ValueError(f"unknown connection side {side!r}")

    def send(self, thread: Optional[SimThread], message: Any, size: int,
             to_side: str):
        """Coroutine: send *message* of *size* bytes toward *to_side*.

        Pass ``thread=None`` to skip the sender CPU charge (used by the
        workload generator, whose client machines are not modelled).
        """
        if thread is not None:
            yield thread.execute(self.params.send_syscall_cost, "syscall")
        self.transmit(message, size, to_side)

    def transmit(self, message: Any, size: int, to_side: str) -> None:
        """Put *message* on the wire with no sender CPU charge.

        This is the non-coroutine half of :meth:`send`; the resilience
        policy's watchdog callbacks use it directly for retries and
        hedges (timer context, no simulated thread to charge).
        """
        target = self.endpoint_b if to_side == "b" else self.endpoint_a
        if target is None:
            raise RuntimeError(f"connection {self.cid}: side {to_side} not attached")
        self._messages.add()
        self._bytes.add(size)
        if to_side == "b":
            # Request-direction wire stamp (HttpRequest / Query): the
            # ewma replica policy reads it back off the echoed response.
            # Foreign message types (harness probes) simply go unstamped.
            try:
                message.sent_at = self.sim.now
            except AttributeError:
                pass
        delay = self.latency + self.params.transfer_time(size)
        tracer = self.sim.tracer
        if self.faults is not None:
            if self.faults.drop_message():
                self.metrics.add("faults.dropped_messages")
                if tracer is not None:
                    trace = tracer.trace_of(message)
                    if trace is not None:
                        now = self.sim.now
                        trace.add(
                            K_NET_REQUEST if to_side == "b"
                            else K_NET_RESPONSE,
                            now, now,
                            seq=getattr(message, "seq", -1),
                            attempt=getattr(message, "attempt", 0),
                            shard=getattr(message, "shard_id", -1),
                            replica=getattr(message, "replica", -1),
                            flags=FLAG_DROPPED)
                return
            delay += self.faults.extra_latency(self.sim.now)
        if tracer is not None:
            trace = tracer.trace_of(message)
            if trace is not None:
                now = self.sim.now
                trace.add(
                    K_NET_REQUEST if to_side == "b" else K_NET_RESPONSE,
                    now, now + delay,
                    seq=getattr(message, "seq", -1),
                    attempt=getattr(message, "attempt", 0),
                    shard=getattr(message, "shard_id", -1),
                    replica=getattr(message, "replica", -1),
                    flags=0)
        # Bare-callback entry: no Timeout/closure allocated per message.
        self.sim.call_later(delay, target.deliver, message)
