"""CPU cores, run queues, and context-switch accounting.

The application server's performance effects in the paper — collapse of
thread-based drivers under concurrency, lock/wake-up storms, spurious
``select()`` overhead — are all *CPU contention* effects.  This module
models a node's cores explicitly, with Linux-like semantics:

- Threads submit *work requests* (``execute(thread, amount, category)``).
- A thread that finishes one work request and immediately issues another
  (same simulation instant) **keeps its core** — threads run until they
  block or exhaust the scheduler quantum, they are not round-robined per
  micro-operation.
- Switching a core between two distinct threads costs
  :attr:`CostParams.ctx_switch_cost` (charged to the ``ctx_switch`` CPU
  category and counted in ``cpu.<name>.ctx_switches``).
- Runnable threads beyond the core count wait in a FIFO run queue; the
  time-weighted runnable count gives Table 1's "concurrent running
  threads" and Figure 9's timeline.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from .kernel import Event, Simulator
from .metrics import Metrics
from .params import CostParams

__all__ = ["Cpu"]

#: Remaining-work amounts below this are treated as complete (avoids
#: floating-point dust creating extra slices).
_EPSILON = 1.0e-12


class _Job:
    __slots__ = ("remaining", "done", "category", "total", "preempted_at_busy")

    def __init__(self, remaining: float, done: Event, category: str) -> None:
        self.remaining = remaining
        self.done = done
        self.category = category
        self.total = remaining
        #: Machine-busy-time stamp of the preemption, or None while the
        #: job's cache state is intact.
        self.preempted_at_busy = None


class _ThreadState:
    """Scheduler-side state of one thread."""

    __slots__ = ("thread", "jobs", "queued", "running_on", "last_core")

    def __init__(self, thread) -> None:
        self.thread = thread
        self.jobs: Deque[_Job] = deque()
        #: True while sitting in the run queue.
        self.queued = False
        #: The core currently running this thread, if any.
        self.running_on: Optional["_Core"] = None
        #: Core this thread last ran on (scheduler affinity hint).
        self.last_core: Optional["_Core"] = None

    @property
    def runnable(self) -> bool:
        return bool(self.jobs)


class _Core:
    __slots__ = ("index", "last_thread", "current", "stint_used")

    def __init__(self, index: int) -> None:
        self.index = index
        #: Thread that last ran here (for context-switch accounting).
        self.last_thread = None
        #: ThreadState currently scheduled on this core.
        self.current: Optional[_ThreadState] = None
        #: CPU time this thread has used in its current stint.
        self.stint_used = 0.0


class Cpu:
    """A multi-core processor with a shared FIFO run queue."""

    def __init__(self, sim: Simulator, metrics: Metrics, params: CostParams,
                 cores: Optional[int] = None, name: str = "app") -> None:
        self.sim = sim
        self.metrics = metrics
        self.params = params
        self.name = name
        n_cores = cores if cores is not None else params.app_cores
        if n_cores < 1:
            raise ValueError("a CPU needs at least one core")
        self.cores: List[_Core] = [_Core(i) for i in range(n_cores)]
        self._idle: Deque[_Core] = deque(self.cores)
        self._run_queue: Deque[_ThreadState] = deque()
        self._states: Dict[int, _ThreadState] = {}
        # Time-weighted load tracking (runnable + running threads).
        self._load_integral = 0.0
        self._load_last_t = 0.0
        self._load_current = 0

    # -- load bookkeeping -------------------------------------------------

    @property
    def runnable_count(self) -> int:
        """Threads currently runnable or running (Fig. 9 metric)."""
        return self._load_current

    def _load_delta(self, delta: int) -> None:
        now = self.sim.now
        self._load_integral += self._load_current * (now - self._load_last_t)
        self._load_last_t = now
        self._load_current += delta

    def load_snapshot(self) -> float:
        """Load integral up to now (for windowed averages)."""
        return self._load_integral + self._load_current * (
            self.sim.now - self._load_last_t)

    def utilization(self) -> float:
        """Windowed utilisation of this CPU's cores (0..1)."""
        return self.metrics.cpu.utilization(self.sim.now, len(self.cores))

    # -- execution ----------------------------------------------------------

    def execute(self, thread, amount: float, category: str = "app") -> Event:
        """Request *amount* seconds of CPU for *thread*.

        Returns an event that triggers when the work has been executed.
        """
        if amount < 0:
            raise ValueError("cannot execute negative work")
        done = Event(self.sim)
        state = self._states.get(thread.tid)
        if state is None:
            state = _ThreadState(thread)
            self._states[thread.tid] = state
        was_runnable = state.runnable
        state.jobs.append(_Job(amount, done, category))
        if not was_runnable:
            self._load_delta(+1)
            # Thread just became runnable.  If it is mid-decision on a
            # core (same-instant continuation) the core picks it up in
            # _decide; otherwise enqueue or dispatch now.
            if state.running_on is None and not state.queued:
                if self._idle:
                    # Wake-up affinity: prefer the core this thread last
                    # ran on (its cache lines may still be warm there).
                    core = state.last_core
                    if core is not None and core in self._idle:
                        self._idle.remove(core)
                    else:
                        core = self._idle.popleft()
                    self._start_stint(core, state)
                else:
                    state.queued = True
                    self._run_queue.append(state)
        return done

    # -- core machinery ----------------------------------------------------

    def _start_stint(self, core: _Core, state: _ThreadState) -> None:
        core.current = state
        core.stint_used = 0.0
        state.running_on = core
        state.last_core = core
        overhead = 0.0
        if core.last_thread is not None and core.last_thread is not state.thread:
            # Direct cost plus the indirect cache/TLB refill cost, which
            # grows with the number of threads sharing the caches.
            pressure = min(1.0, self._load_current / self.params.ctx_cache_threads)
            overhead = (self.params.ctx_switch_cost
                        + self.params.ctx_cache_penalty * pressure)
            job = state.jobs[0]
            if job.preempted_at_busy is not None:
                # Resuming a half-done job: refill its working set.  The
                # refill is proportional to the work already performed
                # (capped by the cache size), scaled by how much *other*
                # work ran in between — a brief interruption evicts
                # little, a long wait behind many fat threads evicts
                # everything.  Reactor threads that run jobs to
                # completion on warm caches never pay this.
                consumed = min(job.total - job.remaining,
                               self.params.resume_reload_cap)
                other_work = (self.metrics.cpu.total_busy_ever
                              - job.preempted_at_busy)
                evicted = min(1.0, other_work / self.params.resume_reload_cap)
                overhead += (self.params.resume_reload_fraction
                             * consumed * evicted)
                job.preempted_at_busy = None
            self.metrics.add(f"cpu.{self.name}.ctx_switches")
            self.metrics.cpu.charge("ctx_switch", overhead)
        core.last_thread = state.thread
        self._run_slice(core, state, overhead)

    def _run_slice(self, core: _Core, state: _ThreadState,
                   extra_delay: float = 0.0) -> None:
        job = state.jobs[0]
        quantum_left = self.params.quantum - core.stint_used
        slice_len = min(job.remaining, max(quantum_left, 0.0))
        if slice_len <= 0.0:
            slice_len = min(job.remaining, self.params.quantum)
            core.stint_used = 0.0  # fresh stint after forced preemption
        # Bare-callback entry: no Timeout/closure allocated per slice.
        self.sim.call_later(extra_delay + slice_len, self._slice_done,
                            (core, state, job, slice_len))

    def _slice_done(self, args) -> None:
        core, state, job, slice_len = args
        self.metrics.cpu.charge(job.category, slice_len)
        core.stint_used += slice_len
        job.remaining -= slice_len
        if job.remaining > _EPSILON:
            # Quantum expired mid-job: preempt if someone is waiting.
            if self._run_queue:
                self._preempt(core, state)
            else:
                core.stint_used = 0.0
                self._run_slice(core, state)
            return
        # Job complete: let the owning process react (it may immediately
        # issue the next work request), then decide what this core does.
        state.jobs.popleft()
        if not state.jobs:
            self._load_delta(-1)
        job.done.succeed()
        self.sim.call_later(0.0, self._decide, (core, state))

    def _preempt(self, core: _Core, state: _ThreadState) -> None:
        state.running_on = None
        state.queued = True
        if state.jobs:
            # The in-progress job may lose its cache lines to whoever
            # runs next; it pays a refill when resumed.
            state.jobs[0].preempted_at_busy = self.metrics.cpu.total_busy_ever
        self._run_queue.append(state)
        self._next_thread(core)

    def _decide(self, args) -> None:
        core, state = args
        if state.runnable:
            # The thread continued (issued more work in the same instant).
            if core.stint_used < self.params.quantum or not self._run_queue:
                self._run_slice(core, state)
            else:
                self._preempt(core, state)
            return
        # The thread blocked or finished: release the core.
        state.running_on = None
        self._next_thread(core)

    def _next_thread(self, core: _Core) -> None:
        # Prefer, among the first few queued threads, one that last ran
        # on this core (bounded scan keeps dispatch O(1)).  Threads that
        # never ran, or whose warm core is this one, are never skipped —
        # affinity must not defeat round-robin fairness.
        queue = self._run_queue
        for offset in range(min(len(queue), 4)):
            state = queue[offset]
            if not state.runnable:
                continue
            if state.last_core is core:
                del queue[offset]
                state.queued = False
                self._start_stint(core, state)
                return
            if state.last_core is None:
                break
        while queue:
            state = queue.popleft()
            state.queued = False
            if state.runnable:
                self._start_stint(core, state)
                return
        core.current = None
        self._idle.append(core)
