"""CPU cores, run queues, and context-switch accounting.

The application server's performance effects in the paper — collapse of
thread-based drivers under concurrency, lock/wake-up storms, spurious
``select()`` overhead — are all *CPU contention* effects.  This module
models a node's cores explicitly, with Linux-like semantics:

- Threads submit *work requests* (``execute(thread, amount, category)``).
- A thread that finishes one work request and immediately issues another
  (same simulation instant) **keeps its core** — threads run until they
  block or exhaust the scheduler quantum, they are not round-robined per
  micro-operation.
- Switching a core between two distinct threads costs
  :attr:`CostParams.ctx_switch_cost` (charged to the ``ctx_switch`` CPU
  category and counted in ``cpu.<name>.ctx_switches``).
- Runnable threads beyond the core count wait in a FIFO run queue; the
  time-weighted runnable count gives Table 1's "concurrent running
  threads" and Figure 9's timeline.

Hot-path notes (see DESIGN.md "Scheduler hot path"): metric names are
interned once into handle objects, fire-and-forget work can skip the
completion :class:`Event` via :meth:`Cpu.execute_then`, and a core whose
run queue is empty *coalesces* its whole stint into one completion event
instead of per-quantum slices.  Coalescing is an event-count
optimisation only — every timestamp, charge, and counter it produces is
bit-identical to the sliced schedule (the deferred per-slice charges are
committed lazily, in global charge order, by
:meth:`CpuAccounting.co_sync` before any read).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from .kernel import Event, Simulator
from .metrics import CpuCharger, Metrics
from .params import CostParams

__all__ = ["Cpu"]

#: Remaining-work amounts below this are treated as complete (avoids
#: floating-point dust creating extra slices).
_EPSILON = 1.0e-12


class _Job:
    __slots__ = ("remaining", "done", "category", "total",
                 "preempted_at_busy", "charger", "fn", "arg")

    def __init__(self, remaining: float, done: Optional[Event],
                 category: str, charger: CpuCharger,
                 fn: Optional[Callable[[Any], None]] = None,
                 arg: Any = None) -> None:
        self.remaining = remaining
        #: Completion event (``execute``) or None (``execute_then``).
        self.done = done
        self.category = category
        #: Interned charge handle for *category* (no per-slice lookup).
        self.charger = charger
        self.total = remaining
        #: Machine-busy-time stamp of the preemption, or None while the
        #: job's cache state is intact.
        self.preempted_at_busy = None
        #: Completion callback for ``execute_then`` jobs.
        self.fn = fn
        self.arg = arg


class _ThreadState:
    """Scheduler-side state of one thread."""

    __slots__ = ("thread", "jobs", "queued", "running_on", "last_core")

    def __init__(self, thread) -> None:
        self.thread = thread
        self.jobs: Deque[_Job] = deque()
        #: True while sitting in the run queue.
        self.queued = False
        #: The core currently running this thread, if any.
        self.running_on: Optional["_Core"] = None
        #: Core this thread last ran on (scheduler affinity hint).
        self.last_core: Optional["_Core"] = None

    @property
    def runnable(self) -> bool:
        return bool(self.jobs)


class _Core:
    __slots__ = ("index", "last_thread", "current", "stint_used",
                 "co", "co_gen")

    def __init__(self, index: int) -> None:
        self.index = index
        #: Thread that last ran here (for context-switch accounting).
        self.last_thread = None
        #: ThreadState currently scheduled on this core.
        self.current: Optional[_ThreadState] = None
        #: CPU time this thread has used in its current stint.
        self.stint_used = 0.0
        #: Active coalesced-stint cursor, if any.
        self.co: Optional["_CoStint"] = None
        #: Generation counter invalidating stale coalesced completions.
        self.co_gen = 0


class _CoStint:
    """Cursor replaying a coalesced stint's sliced schedule lazily.

    Created when a core starts (or continues) a stint with an empty run
    queue and more than one slice of work left.  Instead of one event
    per quantum, the :class:`Cpu` schedules a single completion event at
    :meth:`final_time` and registers this cursor with the shared
    :class:`~repro.sim.metrics.CpuAccounting`.  The cursor knows the
    exact times and lengths of every slice the sliced schedule would
    have run; :meth:`commit_next` performs one slice's charge with the
    same float arithmetic, so lazily committing boundaries up to ``now``
    (``CpuAccounting.co_sync``) reproduces the eager per-slice charges
    bit for bit.
    """

    __slots__ = ("sim", "cpu", "core", "state", "job", "charger",
                 "quantum", "prev_t", "next_t", "s_next", "remaining",
                 "stint_used", "reg", "exhausted")

    def __init__(self, cpu: "Cpu", core: _Core, state: _ThreadState,
                 job: _Job, first_slice: float, extra_delay: float) -> None:
        self.sim = cpu.sim
        self.cpu = cpu
        self.core = core
        self.state = state
        self.job = job
        self.charger = job.charger
        self.quantum = cpu.params.quantum
        now = cpu.sim.now
        #: Time the most recently committed boundary fired (scheduling
        #: time of the next slice — the sliced schedule's tie-breaker).
        self.prev_t = now
        # Matches call_later's ``now + (extra_delay + slice_len)``
        # parenthesisation exactly.
        self.next_t = now + (extra_delay + first_slice)
        self.s_next = first_slice
        self.remaining = job.remaining
        self.stint_used = core.stint_used
        self.reg = 0
        self.exhausted = False

    def final_time(self) -> float:
        """Completion instant, via the sliced schedule's float chain."""
        q = self.quantum
        t = self.next_t
        r = self.remaining - self.s_next
        while r > _EPSILON:
            s = r if r < q else q
            t += s
            r -= s
        return t

    def commit_next(self, acct) -> None:
        """Commit one slice boundary: the deferred ``_slice_done`` charge."""
        ch = self.charger
        if not ch._linked:
            ch._linked = True
            acct._order.append(ch)
        s = self.s_next
        ch.value += s
        acct._busy_ever += s
        self.stint_used += s
        self.remaining -= s
        self.prev_t = self.next_t
        if self.remaining > _EPSILON:
            # Sliced path: stint_used resets, next slice = min(r, q).
            self.stint_used = 0.0
            q = self.quantum
            r = self.remaining
            s = r if r < q else q
            self.s_next = s
            self.next_t = self.prev_t + s
        else:
            self.exhausted = True


class Cpu:
    """A multi-core processor with a shared FIFO run queue."""

    def __init__(self, sim: Simulator, metrics: Metrics, params: CostParams,
                 cores: Optional[int] = None, name: str = "app",
                 coalesce: bool = True) -> None:
        self.sim = sim
        self.metrics = metrics
        self.params = params
        self.name = name
        n_cores = cores if cores is not None else params.app_cores
        if n_cores < 1:
            raise ValueError("a CPU needs at least one core")
        self.cores: List[_Core] = [_Core(i) for i in range(n_cores)]
        self._idle: Deque[_Core] = deque(self.cores)
        self._run_queue: Deque[_ThreadState] = deque()
        self._states: Dict[int, _ThreadState] = {}
        # Time-weighted load tracking (runnable + running threads).
        self._load_integral = 0.0
        self._load_last_t = 0.0
        self._load_current = 0
        #: Coalesce uncontended multi-quantum stints into one event.
        self._coalesce = coalesce
        #: Number of this Cpu's cores currently running a coalesced stint.
        self._co_active = 0
        # Interned hot-path handles: no f-string or dict lookup per
        # context switch.
        self._ctx_counter = metrics.counter(f"cpu.{name}.ctx_switches")
        self._ctx_charger = metrics.cpu.charger("ctx_switch")

    # -- load bookkeeping -------------------------------------------------

    @property
    def runnable_count(self) -> int:
        """Threads currently runnable or running (Fig. 9 metric)."""
        return self._load_current

    def _load_delta(self, delta: int) -> None:
        now = self.sim.now
        self._load_integral += self._load_current * (now - self._load_last_t)
        self._load_last_t = now
        self._load_current += delta

    def load_snapshot(self) -> float:
        """Load integral up to now (for windowed averages)."""
        return self._load_integral + self._load_current * (
            self.sim.now - self._load_last_t)

    def utilization(self) -> float:
        """Windowed utilisation of this CPU's cores (0..1)."""
        return self.metrics.cpu.utilization(self.sim.now, len(self.cores))

    # -- execution ----------------------------------------------------------

    def execute(self, thread, amount: float, category: str = "app") -> Event:
        """Request *amount* seconds of CPU for *thread*.

        Returns an event that triggers when the work has been executed.
        """
        if amount < 0:
            raise ValueError("cannot execute negative work")
        done = Event(self.sim)
        if amount == 0.0 and self._try_zero_fast_path(thread, category):
            done.succeed()
            return done
        self._submit(thread, _Job(amount, done, category,
                                  self.metrics.cpu.charger(category)))
        return done

    def execute_then(self, thread, amount: float, category: str = "app",
                     fn: Optional[Callable[[Any], None]] = None,
                     arg: Any = None) -> None:
        """Request CPU for *thread*, then call ``fn(arg)`` — no Event.

        The fire-and-forget counterpart of :meth:`execute`, in the style
        of ``Simulator.call_later``: charges and scheduling are
        identical, but no completion :class:`Event` is allocated or
        dispatched.  With ``fn=None`` this is a pure charge (the common
        case for call sites that discarded :meth:`execute`'s event).
        The callback cannot be cancelled or waited on.
        """
        if amount < 0:
            raise ValueError("cannot execute negative work")
        if amount == 0.0 and self._try_zero_fast_path(thread, category):
            if fn is not None:
                fn(arg)
            return
        self._submit(thread, _Job(amount, None, category,
                                  self.metrics.cpu.charger(category),
                                  fn, arg))

    def _submit(self, thread, job: _Job) -> None:
        state = self._states.get(thread.tid)
        if state is None:
            state = _ThreadState(thread)
            self._states[thread.tid] = state
        was_runnable = state.runnable
        state.jobs.append(job)
        if not was_runnable:
            self._load_delta(+1)
            # Thread just became runnable.  If it is mid-decision on a
            # core (same-instant continuation) the core picks it up in
            # _decide; otherwise enqueue or dispatch now.
            if state.running_on is None and not state.queued:
                if self._idle:
                    # Wake-up affinity: prefer the core this thread last
                    # ran on (its cache lines may still be warm there).
                    core = state.last_core
                    if core is not None and core in self._idle:
                        self._idle.remove(core)
                    else:
                        core = self._idle.popleft()
                    self._start_stint(core, state)
                else:
                    state.queued = True
                    self._run_queue.append(state)
                    # The run queue just became (or stayed) non-empty:
                    # coalesced stints would now mispredict preemption,
                    # so fall back to per-slice events.
                    if self._co_active:
                        self._de_coalesce()

    def _try_zero_fast_path(self, thread, category: str) -> bool:
        """Complete zero-length work at this instant, skipping the queue.

        Only applies when the scheduled path would have produced the
        same accounting: the thread must be idle, an idle core must be
        available, and the core the affinity rule would pick must not
        owe a context switch (its last thread was this one, or none).
        Otherwise the caller falls through to the scheduled path, which
        charges the context switch exactly as before.
        """
        if not self._idle:
            return False
        state = self._states.get(thread.tid)
        if state is None:
            state = _ThreadState(thread)
            self._states[thread.tid] = state
        elif state.jobs or state.running_on is not None or state.queued:
            return False
        core = state.last_core
        affine = core is not None and core in self._idle
        if not affine:
            core = self._idle[0]
        if core.last_thread is not None and core.last_thread is not thread:
            return False
        # Replicate the scheduled path's side effects in its exact
        # order: both load deltas stay (they pin the load integral's
        # float association), the idle deque rotates the same way, and
        # the zero charge still links the category handle.
        self._load_delta(+1)
        if affine:
            self._idle.remove(core)
        else:
            self._idle.popleft()
        state.last_core = core
        core.last_thread = thread
        core.stint_used = 0.0
        self.metrics.cpu.charger(category).add(0.0)
        self._load_delta(-1)
        self._idle.append(core)
        return True

    # -- core machinery ----------------------------------------------------

    def _start_stint(self, core: _Core, state: _ThreadState) -> None:
        core.current = state
        core.stint_used = 0.0
        state.running_on = core
        state.last_core = core
        overhead = 0.0
        if core.last_thread is not None and core.last_thread is not state.thread:
            # Direct cost plus the indirect cache/TLB refill cost, which
            # grows with the number of threads sharing the caches.
            pressure = min(1.0, self._load_current / self.params.ctx_cache_threads)
            overhead = (self.params.ctx_switch_cost
                        + self.params.ctx_cache_penalty * pressure)
            job = state.jobs[0]
            if job.preempted_at_busy is not None:
                # Resuming a half-done job: refill its working set.  The
                # refill is proportional to the work already performed
                # (capped by the cache size), scaled by how much *other*
                # work ran in between — a brief interruption evicts
                # little, a long wait behind many fat threads evicts
                # everything.  Reactor threads that run jobs to
                # completion on warm caches never pay this.
                acct = self.metrics.cpu
                consumed = min(job.total - job.remaining,
                               self.params.resume_reload_cap)
                other_work = acct.total_busy_ever - job.preempted_at_busy
                evicted = min(1.0, other_work / self.params.resume_reload_cap)
                overhead += (self.params.resume_reload_fraction
                             * consumed * evicted)
                job.preempted_at_busy = None
            self._ctx_counter.add()
            self._ctx_charger.add(overhead)
        core.last_thread = state.thread
        self._run_slice(core, state, overhead)

    def _run_slice(self, core: _Core, state: _ThreadState,
                   extra_delay: float = 0.0) -> None:
        job = state.jobs[0]
        quantum_left = self.params.quantum - core.stint_used
        slice_len = min(job.remaining, max(quantum_left, 0.0))
        if slice_len <= 0.0:
            slice_len = min(job.remaining, self.params.quantum)
            core.stint_used = 0.0  # fresh stint after forced preemption
        if (self._coalesce and not self._run_queue
                and job.remaining - slice_len > _EPSILON):
            # Uncontended multi-slice stint: one completion event for
            # the whole job instead of one per quantum.  De-coalesced
            # from _submit if the run queue becomes non-empty.
            self._coalesce_stint(core, state, job, slice_len, extra_delay)
            return
        # Bare-callback entry: no Timeout/closure allocated per slice.
        self.sim.call_later(extra_delay + slice_len, self._slice_done,
                            (core, state, job, slice_len))

    def _slice_done(self, args) -> None:
        core, state, job, slice_len = args
        job.charger.add(slice_len)
        core.stint_used += slice_len
        job.remaining -= slice_len
        if job.remaining > _EPSILON:
            # Quantum expired mid-job: preempt if someone is waiting.
            if self._run_queue:
                self._preempt(core, state)
            else:
                core.stint_used = 0.0
                self._run_slice(core, state)
            return
        self._complete(core, state, job)

    def _complete(self, core: _Core, state: _ThreadState, job: _Job) -> None:
        # Job complete: let the owning process react (it may immediately
        # issue the next work request), then decide what this core does.
        state.jobs.popleft()
        if not state.jobs:
            self._load_delta(-1)
        done = job.done
        if done is not None:
            done.succeed()
        elif job.fn is not None:
            job.fn(job.arg)
        self.sim.call_later(0.0, self._decide, (core, state))

    # -- stint coalescing --------------------------------------------------

    def _coalesce_stint(self, core: _Core, state: _ThreadState, job: _Job,
                        first_slice: float, extra_delay: float) -> None:
        co = _CoStint(self, core, state, job, first_slice, extra_delay)
        self.metrics.cpu.co_register(co)
        self._co_active += 1
        core.co_gen += 1
        core.co = co
        self.sim.call_at(co.final_time(), self._co_done, (core, core.co_gen))

    def _co_done(self, args) -> None:
        core, gen = args
        if gen != core.co_gen:
            return  # de-coalesced mid-stint; this completion is stale
        co = core.co
        core.co = None
        self._co_active -= 1
        # Commits every outstanding boundary up to now — including this
        # stint's final slice (next_t == now), after which the cursor is
        # exhausted and pruned.
        self.metrics.cpu.co_sync()
        job = co.job
        job.remaining = co.remaining
        core.stint_used = co.stint_used
        self._complete(core, co.state, job)

    def _de_coalesce(self) -> None:
        """Fall back to per-slice events on every coalescing core.

        Commits all slice boundaries due so far, then re-materialises
        each cursor's in-flight slice as a normal ``_slice_done`` event
        at its original completion instant — from there the sliced
        machinery (preemption included) takes over, so a stint that
        loses its uncontended premise is still event-for-event identical
        to the never-coalesced schedule.
        """
        acct = self.metrics.cpu
        acct.co_sync()
        sources = acct._co_sources
        mine = [src for src in sources if src.cpu is self]
        if not mine:
            return
        acct._co_sources = [src for src in sources if src.cpu is not self]
        for co in mine:
            core = co.core
            core.co = None
            core.co_gen += 1  # cancel the pending _co_done
            self._co_active -= 1
            co.exhausted = True
            co.job.remaining = co.remaining
            core.stint_used = co.stint_used
            self.sim.call_at(co.next_t, self._slice_done,
                             (core, co.state, co.job, co.s_next))

    # -- preemption / dispatch ---------------------------------------------

    def _preempt(self, core: _Core, state: _ThreadState) -> None:
        state.running_on = None
        state.queued = True
        if state.jobs:
            # The in-progress job may lose its cache lines to whoever
            # runs next; it pays a refill when resumed.
            state.jobs[0].preempted_at_busy = (
                self.metrics.cpu.total_busy_ever)
        self._run_queue.append(state)
        self._next_thread(core)

    def _decide(self, args) -> None:
        core, state = args
        if state.runnable:
            # The thread continued (issued more work in the same instant).
            if core.stint_used < self.params.quantum or not self._run_queue:
                self._run_slice(core, state)
            else:
                self._preempt(core, state)
            return
        # The thread blocked or finished: release the core.
        state.running_on = None
        self._next_thread(core)

    def _next_thread(self, core: _Core) -> None:
        # Prefer, among the first few queued threads, one that last ran
        # on this core (bounded scan keeps dispatch O(1)).  Threads that
        # never ran, or whose warm core is this one, are never skipped —
        # affinity must not defeat round-robin fairness.
        queue = self._run_queue
        for offset in range(min(len(queue), 4)):
            state = queue[offset]
            if not state.runnable:
                continue
            if state.last_core is core:
                del queue[offset]
                state.queued = False
                self._start_stint(core, state)
                return
            if state.last_core is None:
                break
        while queue:
            state = queue.popleft()
            state.queued = False
            if state.runnable:
                self._start_stint(core, state)
                return
        core.current = None
        self._idle.append(core)
