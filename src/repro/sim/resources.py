"""Waitable synchronisation primitives built on the kernel.

These are the *semantic* primitives used to structure simulated
programs; they carry no CPU cost by themselves.  Cost-bearing versions
(mutexes that account lock-contention CPU, selector syscalls, ...) live
in :mod:`repro.sim.threads` and :mod:`repro.sim.syscalls` and are built
from these.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .kernel import Event, Simulator

__all__ = ["Queue", "Semaphore", "QueueTimeout", "queue_get_with_timeout"]


class QueueTimeout(Exception):
    """Raised by :func:`queue_get_with_timeout` when the wait expires."""


class Queue:
    """An unbounded FIFO queue with event-based blocking ``get``.

    ``put`` never blocks.  ``get`` returns an :class:`Event` that
    triggers with the next item.  ``wake_order`` selects which blocked
    getter a ``put`` hands the item to: ``"fifo"`` (fair, default) or
    ``"lifo"`` (unfair — most recently blocked getter first, the
    semantics of ``SynchronousQueue`` hand-off in JVM cached thread
    pools, which keeps hot worker threads busy and lets cold ones time
    out).
    """

    __slots__ = ("sim", "_items", "_getters", "wake_order")

    def __init__(self, sim: Simulator, wake_order: str = "fifo") -> None:
        if wake_order not in ("fifo", "lifo"):
            raise ValueError(f"unknown wake order {wake_order!r}")
        self.sim = sim
        self.wake_order = wake_order
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def waiting(self) -> int:
        """Number of getters currently blocked."""
        return len(self._getters)

    def _handoff(self, item: Any) -> bool:
        """Hand *item* to the first live blocked getter; False if none.

        Skips getters that were abandoned (e.g. lost a timeout race and
        were triggered by the raced timeout path).
        """
        getters = self._getters
        pop = getters.pop if self.wake_order == "lifo" else getters.popleft
        while getters:
            getter = pop()
            if not getter.triggered:
                getter.succeed(item)
                return True
        return False

    def put(self, item: Any) -> None:
        """Append *item*; wakes a blocked getter if any."""
        if not self._getters or not self._handoff(item):
            self._items.append(item)

    def put_front(self, item: Any) -> None:
        """Prepend *item* (used by schedulers re-queueing work)."""
        if not self._getters or not self._handoff(item):
            self._items.appendleft(item)

    def get(self) -> Event:
        """Return an event triggering with the next available item."""
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def drain(self) -> list:
        """Remove and return all currently queued items."""
        items = list(self._items)
        self._items.clear()
        return items


#: Sentinel a racing idle timer injects into an abandoned getter.
_TIMED_OUT = object()


def queue_get_with_timeout(sim: Simulator, queue: Queue, timeout: float):
    """Coroutine helper: get from *queue* or raise :class:`QueueTimeout`.

    Use with ``yield from``.  A timed-out get leaves the queue in a
    consistent state: a later ``put`` skips the abandoned getter.

    The race is run without an :class:`AnyOf`: the idle timer succeeds
    the pending getter directly with a sentinel, and when the item wins
    instead the timer is lazily cancelled (idle timers are far-future
    entries; cancelling beats letting them fire).
    """
    get_event = queue.get()
    if get_event.triggered:
        value = yield get_event
        return value
    timer = sim.timeout(timeout, value=_TIMED_OUT)
    timer.add_callback(get_event._succeed_from)
    value = yield get_event
    if value is _TIMED_OUT:
        # The getter is now triggered, so a later put() skips it; an item
        # racing in at this same instant stays queued because put()
        # checks `triggered` before handing over.
        raise QueueTimeout()
    timer.cancel()
    return value


class Semaphore:
    """A counting semaphore with FIFO waiters."""

    __slots__ = ("sim", "_count", "_waiters")

    def __init__(self, sim: Simulator, count: int = 1) -> None:
        if count < 0:
            raise ValueError("semaphore count must be >= 0")
        self.sim = sim
        self._count = count
        self._waiters: Deque[Event] = deque()

    @property
    def count(self) -> int:
        """Currently available permits."""
        return self._count

    @property
    def waiting(self) -> int:
        """Number of blocked acquirers."""
        return len(self._waiters)

    def acquire(self) -> Event:
        """Return an event that triggers once a permit is granted."""
        event = Event(self.sim)
        if self._count > 0:
            self._count -= 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def try_acquire(self) -> bool:
        """Non-blocking acquire; True on success."""
        if self._count > 0:
            self._count -= 1
            return True
        return False

    def release(self) -> None:
        """Release one permit, waking the oldest waiter if any."""
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.triggered:
                waiter.succeed()
                return
        self._count += 1
