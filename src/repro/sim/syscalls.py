"""The selector syscall model: select()/epoll readiness monitoring.

The paper's Tables 2 and 3 are built from ``select()`` counts, CPU
share, and "events per select".  This module makes those observable:

- A :class:`Selector` owns a set of :class:`Channel` endpoints.
  Messages delivered to a channel are queued as readiness events.
- ``Selector.select(thread, timeout)`` charges the calling thread
  :attr:`CostParams.select_base_cost` plus a per-event cost (category
  ``select``), returns the drained batch, and records per-selector
  metrics — including *spurious* selects that return zero events, the
  waste mechanism behind the imbalanced-workload problem.
- ``Selector.post`` is the cross-thread wakeup path (Netty's
  ``eventLoop.execute`` + wakeup-fd write), charging
  :attr:`CostParams.selector_wakeup_cost` to the posting thread.

Type-2a (Netty) reactors poll with a finite timeout; AIO and
DoubleFaceAD selectors block indefinitely.  Both styles are expressed
through the ``timeout`` argument.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Deque, List, Optional, Tuple

from .cpu import Cpu
from .kernel import Event, Simulator
from .metrics import Metrics
from .params import CostParams
from .threads import SimThread
from ..trace import K_HANDOFF, K_SELECTOR_WAIT

__all__ = ["Channel", "Selector", "ReadyEvent"]

_channel_ids = itertools.count(1)

#: A readiness event handed to the reactor: (channel, message).
ReadyEvent = Tuple["Channel", Any]


class Channel:
    """A registered endpoint delivering readiness events to a selector.

    ``kind`` tags the traffic direction (``"upstream"``, ``"downstream"``,
    ``"task"``) and ``context`` carries whatever the owning driver needs
    to dispatch the event (a connection object, a request, ...).
    """

    __slots__ = ("selector", "kind", "context", "cid")

    def __init__(self, selector: "Selector", kind: str, context: Any = None) -> None:
        self.selector = selector
        self.kind = kind
        self.context = context
        self.cid = next(_channel_ids)

    def deliver(self, message: Any) -> None:
        """Called by the network (or a poster) when data arrives."""
        self.selector._enqueue(self, message)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Channel {self.kind}#{self.cid}>"


class Selector:
    """One select()/epoll instance, used by exactly one reactor thread."""

    __slots__ = ("sim", "cpu", "metrics", "params", "name", "_ready",
                 "_waiter", "_task_channel", "_wakeups", "_selects",
                 "_events", "_spurious", "_total_selects", "_total_events",
                 "_total_spurious")

    def __init__(self, sim: Simulator, cpu: Cpu, metrics: Metrics,
                 params: CostParams, name: str) -> None:
        self.sim = sim
        self.cpu = cpu
        self.metrics = metrics
        self.params = params
        self.name = name
        self._ready: Deque[ReadyEvent] = deque()
        self._waiter: Optional[Event] = None
        self._task_channel = Channel(self, "task")
        # Interned per-select counters: the select loop is the hottest
        # metrics producer in every reactor driver.
        self._wakeups = metrics.counter(f"selector.{name}.wakeups")
        self._selects = metrics.counter(f"selector.{name}.selects")
        self._events = metrics.counter(f"selector.{name}.events")
        self._spurious = metrics.counter(f"selector.{name}.spurious")
        self._total_selects = metrics.counter("selector.total_selects")
        self._total_events = metrics.counter("selector.total_events")
        self._total_spurious = metrics.counter("selector.total_spurious")

    # -- registration ------------------------------------------------------

    def open_channel(self, kind: str, context: Any = None) -> Channel:
        """Register a new channel on this selector."""
        return Channel(self, kind, context)

    # -- delivery ------------------------------------------------------------

    def _enqueue(self, channel: Channel, message: Any) -> None:
        tracer = self.sim.tracer
        if tracer is not None and tracer.trace_of(message) is not None:
            tracer.stamp_wait(message, self.sim.now)
        self._ready.append((channel, message))
        if self._waiter is not None and not self._waiter.triggered:
            self._waiter.succeed()
        self._waiter = None

    def post(self, thread: Optional[SimThread], message: Any):
        """Coroutine: cross-thread hand-off into this selector's loop.

        Charges the wakeup-fd write to *thread* (pass None to skip the
        charge, e.g. for harness-injected events).
        """
        self._wakeups.add()
        if thread is not None:
            yield self.cpu.execute(
                thread, self.params.selector_wakeup_cost, "syscall")
        self._enqueue(self._task_channel, message)

    @property
    def pending(self) -> int:
        """Readiness events queued but not yet collected."""
        return len(self._ready)

    # -- the syscall ------------------------------------------------------------

    def select(self, thread: SimThread, timeout: Optional[float] = None):
        """Coroutine: one select() call by *thread*.

        Returns the drained batch of ready events (possibly empty when a
        finite *timeout* expires first — a spurious select).
        """
        if not self._ready:
            waiter = Event(self.sim)
            self._waiter = waiter
            if timeout is None:
                yield waiter
            else:
                # Netty's loop does a selectNow() probe before blocking
                # in select(timeout): an extra kernel crossing per loop.
                self._selects.add()
                self._total_selects.add()
                yield self.cpu.execute(
                    thread, self.params.select_base_cost, "select")
                # (If data raced in during the probe, the waiter has
                # already been triggered and the wait below is instant.)
                # Race the poll timer against readiness without an AnyOf
                # allocation: the timer succeeds the pending waiter
                # directly, and loses by lazy cancellation.
                timer = self.sim.timeout(timeout)
                timer.add_callback(waiter._succeed_from)
                yield waiter
                if not self._ready:
                    # Spurious wakeup: kernel crossing with nothing to show.
                    if self._waiter is waiter:
                        self._waiter = None
                    self._selects.add()
                    self._spurious.add()
                    self._total_selects.add()
                    self._total_spurious.add()
                    yield self.cpu.execute(
                        thread, self.params.select_base_cost, "select")
                    return []
                timer.cancel()
        if timeout is not None and (len(self._ready)
                                    > self.params.netty_select_max_batch):
            # Poll-loop reactors consume a bounded batch per cycle and
            # come straight back for the rest.
            limit = self.params.netty_select_max_batch
            batch: List[ReadyEvent] = [self._ready.popleft()
                                       for _ in range(limit)]
        else:
            batch = list(self._ready)
            self._ready.clear()
        tracer = self.sim.tracer
        if tracer is not None:
            now = self.sim.now
            for channel, message in batch:
                trace = tracer.trace_of(message)
                if trace is not None:
                    started = tracer.pop_wait(message)
                    if started is not None:
                        trace.add(
                            K_HANDOFF if channel.kind == "task"
                            else K_SELECTOR_WAIT,
                            started, now,
                            seq=getattr(message, "seq", -1),
                            attempt=getattr(message, "attempt", 0),
                            shard=getattr(message, "shard_id", -1),
                            replica=getattr(message, "replica", -1))
        n = len(batch)
        self._selects.add()
        self._events.add(n)
        self._total_selects.add()
        self._total_events.add(n)
        cost = self.params.select_base_cost + self.params.select_per_event_cost * n
        yield self.cpu.execute(thread, cost, "select")
        return batch

    # -- reporting helpers ---------------------------------------------------

    def stats(self) -> dict:
        """Windowed per-selector statistics (Table 2/3 rows)."""
        selects = self.metrics.count(f"selector.{self.name}.selects")
        events = self.metrics.count(f"selector.{self.name}.events")
        spurious = self.metrics.count(f"selector.{self.name}.spurious")
        return {
            "name": self.name,
            "selects": selects,
            "events": events,
            "spurious": spurious,
            "events_per_select": (events / selects) if selects else 0.0,
        }
