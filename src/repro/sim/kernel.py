"""Discrete-event simulation kernel.

This is the foundation of the whole reproduction: a small, fast,
deterministic discrete-event simulator in the style of SimPy, built from
scratch so the repository has no dependency beyond the standard library
and numpy.

The model is the classic *event / process* pair:

- An :class:`Event` is a one-shot waitable cell.  It starts *pending*,
  is *triggered* exactly once with either a value (``succeed``) or an
  exception (``fail``), and then invokes its registered callbacks in
  simulation-time order.

- A :class:`Process` wraps a Python generator.  The generator ``yield``\\ s
  :class:`Event` objects; the process suspends until the yielded event
  triggers and then resumes with the event's value (or the event's
  exception is thrown into the generator).  Helper coroutines compose
  with ``yield from``.

All times are floats in **seconds** of simulated time.  The simulator is
fully deterministic: ties in time are broken by a monotonically
increasing sequence number, so two runs with the same seed produce
byte-identical traces.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Simulator",
    "SimulationError",
]

#: Sentinel yielded value type for process generators.
ProcessGenerator = Generator["Event", Any, Any]


class SimulationError(RuntimeError):
    """Raised for misuse of the kernel (double trigger, bad yield, ...)."""


class Event:
    """A one-shot waitable occurrence in simulated time.

    Events begin *pending*.  Calling :meth:`succeed` or :meth:`fail`
    *triggers* the event: the event is placed on the simulator's heap at
    the current simulation time and, when popped, runs its callbacks.

    Callbacks receive the event itself; they read ``event.value`` (or
    observe ``event.exception``).
    """

    __slots__ = ("sim", "callbacks", "_value", "_exception", "triggered", "processed")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self.triggered = False
        #: True once callbacks have run.
        self.processed = False

    # -- inspection ----------------------------------------------------

    @property
    def value(self) -> Any:
        """The value the event succeeded with (None until triggered)."""
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The exception the event failed with, if any."""
        return self._exception

    @property
    def ok(self) -> bool:
        """True if the event triggered successfully."""
        return self.triggered and self._exception is None

    # -- triggering ----------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with *value*."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self.triggered = True
        self._value = value
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        heappush(sim._heap, (sim.now, seq, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes get the exception thrown into their generator.
        """
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self.triggered = True
        self._exception = exception
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        heappush(sim._heap, (sim.now, seq, self))
        return self

    # -- internal ------------------------------------------------------

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self.processed = True
        if callbacks:
            for callback in callbacks:
                callback(self)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register *callback*; runs immediately if already processed."""
        if self.callbacks is None:
            # Already processed: run at once (still at the same sim time).
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at t={self.sim.now:.6f}>"


class Timeout(Event):
    """An event that triggers automatically after a fixed delay.

    Timeouts are the kernel's hottest allocation (every simulated CPU
    slice, network hop, and think-time pause is one), so ``__init__``
    assigns the Event slots and pushes onto the heap directly instead
    of going through ``Event.__init__`` + ``succeed``.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._exception = None
        self.triggered = True
        self.processed = False
        sim._seq = seq = sim._seq + 1
        heappush(sim._heap, (sim.now + delay, seq, self))


class Process(Event):
    """Drives a generator, suspending on each yielded :class:`Event`.

    A Process is itself an Event: it triggers when the generator returns
    (value = generator return value) or raises (event fails), so
    processes can wait on other processes.
    """

    __slots__ = ("generator", "name", "_waiting_on", "_send", "_throw")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator,
                 name: str = "") -> None:
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError("Process requires a generator")
        self.generator = generator
        # Bound-method caches: _resume runs once per event the process
        # waits on, so shaving the attribute lookups is measurable.
        self._send = generator.send
        self._throw = generator.throw
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Kick off at the current time: an already-triggered bootstrap
        # event whose only callback resumes the generator (pushed onto
        # the heap directly — equivalent to add_callback + succeed).
        bootstrap = Event(sim)
        bootstrap.callbacks.append(self._resume)
        bootstrap.triggered = True
        sim._seq = seq = sim._seq + 1
        heappush(sim._heap, (sim.now, seq, bootstrap))

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        try:
            if event._exception is not None:
                target = self._throw(event._exception)
            else:
                target = self._send(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001
            if self.callbacks:
                # Someone is waiting on this process: deliver the failure.
                self.fail(exc)
                return
            # Unobserved failure: crash the simulation loudly rather than
            # letting a dead server thread look like zero throughput.
            raise
        if not isinstance(target, Event):
            exc = SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield Event instances"
            )
            self.generator.close()
            if self.callbacks:
                self.fail(exc)
                return
            raise exc
        self._waiting_on = target
        # Inlined target.add_callback(self._resume) — one per yield.
        callbacks = target.callbacks
        if callbacks is None:
            self._resume(target)
        else:
            callbacks.append(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name} alive={self.is_alive}>"


class AnyOf(Event):
    """Triggers when the first of *events* triggers.

    The value is the (event, value) pair of the winner.  Late triggers of
    the remaining events are ignored.
    """

    __slots__ = ("_done",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._done = False
        events = list(events)
        if not events:
            raise ValueError("AnyOf requires at least one event")
        for event in events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._done:
            return
        self._done = True
        if event._exception is not None:
            self.fail(event._exception)
        else:
            self.succeed((event, event._value))


class AllOf(Event):
    """Triggers when every one of *events* has triggered.

    The value is the list of child values in the original order.  If any
    child fails, this event fails with the first failure.
    """

    __slots__ = ("_events", "_remaining", "_failed")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._events = list(events)
        self._remaining = len(self._events)
        self._failed = False
        if not self._events:
            self.succeed([])
            return
        for event in self._events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._failed:
            return
        if event._exception is not None:
            self._failed = True
            self.fail(event._exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([child._value for child in self._events])


class Simulator:
    """The event loop: a time-ordered heap of triggered events.

    Usage::

        sim = Simulator()
        sim.process(some_generator_function(sim))
        sim.run(until=10.0)
    """

    __slots__ = ("_heap", "_seq", "now", "_event_count")

    def __init__(self) -> None:
        self._heap: List[Any] = []
        self._seq = 0
        #: Current simulation time in seconds.
        self.now = 0.0
        #: Total number of events processed (for diagnostics).
        self._event_count = 0

    # -- factory helpers ------------------------------------------------

    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers after *delay* seconds."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start driving *generator* as a process."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event triggering on the first of *events*."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event triggering once all *events* have triggered."""
        return AllOf(self, events)

    # -- scheduling ------------------------------------------------------

    def _schedule(self, delay: float, event: Event) -> None:
        self._seq += 1
        heappush(self._heap, (self.now + delay, self._seq, event))

    # -- execution --------------------------------------------------------

    def step(self) -> bool:
        """Process the single next event; return False if none remain."""
        if not self._heap:
            return False
        when, _seq, event = heappop(self._heap)
        self.now = when
        self._event_count += 1
        event._run_callbacks()
        return True

    def peek(self) -> Optional[float]:
        """Time of the next scheduled event, or None when idle."""
        return self._heap[0][0] if self._heap else None

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains or simulated time reaches *until*.

        When *until* is given, ``now`` is advanced to exactly *until*
        even if the last event fired earlier, so measurement windows have
        a precise width.
        """
        if until is None:
            bound = math.inf
        elif until < self.now:
            raise ValueError(f"until={until} is in the past (now={self.now})")
        else:
            bound = until
        # One loop for both modes (bound = +inf drains the heap), with
        # the heap and heappop held in locals.  Callbacks may push onto
        # the heap but never rebind it, so the local alias stays valid.
        # _event_count is settled in `finally` so a callback that raises
        # (e.g. an unobserved process failure) can't lose the tally.
        heap = self._heap
        pop = heappop
        count = 0
        try:
            while heap and heap[0][0] <= bound:
                when, _seq, event = pop(heap)
                self.now = when
                count += 1
                # Inlined Event._run_callbacks (one method call per
                # event adds up to whole seconds across an exhibit grid).
                callbacks = event.callbacks
                event.callbacks = None
                event.processed = True
                if callbacks:
                    for callback in callbacks:
                        callback(event)
        finally:
            self._event_count += count
        if until is not None:
            self.now = until
