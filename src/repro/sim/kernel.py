"""Discrete-event simulation kernel.

This is the foundation of the whole reproduction: a small, fast,
deterministic discrete-event simulator in the style of SimPy, built from
scratch so the repository has no dependency beyond the standard library
and numpy.

The model is the classic *event / process* pair:

- An :class:`Event` is a one-shot waitable cell.  It starts *pending*,
  is *triggered* exactly once with either a value (``succeed``) or an
  exception (``fail``), and then invokes its registered callbacks in
  simulation-time order.

- A :class:`Process` wraps a Python generator.  The generator ``yield``\\ s
  :class:`Event` objects; the process suspends until the yielded event
  triggers and then resumes with the event's value (or the event's
  exception is thrown into the generator).  Helper coroutines compose
  with ``yield from``.

All times are floats in **seconds** of simulated time.  The simulator is
fully deterministic: ties in time are broken by a monotonically
increasing sequence number, so two runs with the same seed produce
byte-identical traces.

Scheduling structure (calendar queue)
-------------------------------------

The scheduler is a *calendar queue* rather than a single binary heap.
Entries are tuples whose first two fields are always ``(time, seq)``;
``seq`` is globally unique, so tuple comparison never reaches the third
field and the total order is exactly the guarded ``(time, seq)`` order.
Two entry shapes coexist:

- ``(t, seq, event)`` — a triggered :class:`Event` to dispatch, and
- ``(t, seq, fn, arg)`` — a bare callback from :meth:`Simulator.call_later`
  (no Event object allocated at all; used for fire-and-forget work such
  as network message delivery and CPU slice completions).

Entries live in one of three places, by virtual bucket
``vb = int(t * inv_width)``:

- ``_active`` — an ascending-sorted list holding every entry with
  ``vb <= _vb`` (the consumed horizon).  It is consumed by advancing an
  index (``_apos``), not by popping, and new same-instant entries are
  ``bisect.insort``-ed — because fresh entries carry the largest ``seq``,
  they land at (or near) the tail, so the insert is O(1) memmove in the
  common case.
- ``_buckets`` — a power-of-two ring of unsorted lists covering one
  *revolution* of virtual buckets ``(_vb, _vb + nbuckets)``.  Pushing is
  a plain ``list.append``; a bucket is sorted only when it becomes the
  new ``_active`` (Timsort on an almost-sorted run, since appends arrive
  in ``seq`` order).
- ``_far`` — a binary-heap fallback for entries beyond the current
  revolution (think-time pauses, idle timeouts).  It is drained into the
  ring as the horizon advances.

When occupancy drifts (more than ~2 entries per bucket, or the ring is
nearly empty) the next refill *resizes*: bucket width is re-derived from
the observed span of pending entries and everything is re-placed.
Cancelled :class:`Timeout` entries (``callbacks is None``) are skipped at
dispatch without counting and dropped wholesale during a resize.
"""

from __future__ import annotations

import math
from bisect import insort
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "CountdownLatch",
    "Simulator",
    "SimulationError",
]

#: Sentinel yielded value type for process generators.
ProcessGenerator = Generator["Event", Any, Any]

# Calendar-queue tuning.  The defaults favour the exhibits' event mix
# (microsecond-scale service events + second-scale think timers): a
# 100 us bucket keeps one request's causal chain inside a bucket or two
# while think timers overflow to the far heap until their bucket nears.
_DEFAULT_WIDTH = 1e-4
_MIN_BUCKETS = 256
_MAX_BUCKETS = 1 << 16
_ITEMS_PER_BUCKET = 4
#: Resize trigger for the active list (covers both a consumed prefix
#: that was never compacted and a same-bucket burst); doubled when a
#: resize cannot split the entries (zero time span).
_ACTIVE_LIMIT = 8192


class SimulationError(RuntimeError):
    """Raised for misuse of the kernel (double trigger, bad yield, ...)."""


class Event:
    """A one-shot waitable occurrence in simulated time.

    Events begin *pending*.  Calling :meth:`succeed` or :meth:`fail`
    *triggers* the event: the event is scheduled at the current
    simulation time and, when dispatched, runs its callbacks.

    Callbacks receive the event itself; they read ``event.value`` (or
    observe ``event.exception``).
    """

    __slots__ = ("sim", "callbacks", "_value", "_exception", "triggered", "processed")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self.triggered = False
        #: True once callbacks have run.
        self.processed = False

    # -- inspection ----------------------------------------------------

    @property
    def value(self) -> Any:
        """The value the event succeeded with (None until triggered)."""
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The exception the event failed with, if any."""
        return self._exception

    @property
    def ok(self) -> bool:
        """True if the event triggered successfully."""
        return self.triggered and self._exception is None

    # -- triggering ----------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with *value*."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self.triggered = True
        self._value = value
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        # t == sim.now: every pending bucket/far entry is strictly later,
        # so the entry belongs in the active list unconditionally.
        active = sim._active
        insort(active, (sim.now, seq, self))
        if len(active) > sim._active_limit:
            sim._pending_resize = True
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes get the exception thrown into their generator.
        """
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self.triggered = True
        self._exception = exception
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        active = sim._active
        insort(active, (sim.now, seq, self))
        if len(active) > sim._active_limit:
            sim._pending_resize = True
        return self

    def _succeed_from(self, other: "Event") -> None:
        """Callback form of :meth:`succeed`: adopt *other*'s value if
        this event is still pending.

        Lets a :class:`Timeout` race a pending event without an
        :class:`AnyOf` allocation::

            timer.add_callback(waiter._succeed_from)
        """
        if not self.triggered:
            self.succeed(other._value)

    # -- internal ------------------------------------------------------

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self.processed = True
        if callbacks:
            for callback in callbacks:
                callback(self)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register *callback*; runs immediately if already processed."""
        if self.callbacks is None:
            # Already processed: run at once (still at the same sim time).
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at t={self.sim.now:.6f}>"


class Timeout(Event):
    """An event that triggers automatically after a fixed delay.

    Timeouts are the kernel's hottest allocation (every simulated CPU
    slice, network hop, and think-time pause is one), so ``__init__``
    assigns the Event slots and pushes the queue entry directly instead
    of going through ``Event.__init__`` + ``succeed``.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._exception = None
        self.triggered = True
        self.processed = False
        sim._seq = seq = sim._seq + 1
        t = sim.now + delay
        vb = int(t * sim._inv_w)
        if sim._vb < vb < sim._vbh:
            sim._buckets[vb & sim._mask].append((t, seq, self))
            sim._nbucket += 1
        else:
            sim._push_slow(t, vb, (t, seq, self))

    def cancel(self) -> None:
        """Lazily cancel the timeout.

        The queue entry stays where it is; the dispatch loop recognises
        the cleared callback list, skips the entry without counting it,
        and never advances the clock for it.  Resizes drop cancelled
        entries wholesale.  A no-op if the timeout already fired.
        """
        self.callbacks = None


class Process(Event):
    """Drives a generator, suspending on each yielded :class:`Event`.

    A Process is itself an Event: it triggers when the generator returns
    (value = generator return value) or raises (event fails), so
    processes can wait on other processes.
    """

    __slots__ = ("generator", "name", "_waiting_on", "_send", "_throw")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator,
                 name: str = "") -> None:
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError("Process requires a generator")
        self.generator = generator
        # Bound-method caches: _resume runs once per event the process
        # waits on, so shaving the attribute lookups is measurable.
        self._send = generator.send
        self._throw = generator.throw
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Kick off at the current time with a bare-callback entry: the
        # shared pre-made null event stands in for a bootstrap Event, so
        # starting a process allocates nothing beyond the queue tuple.
        sim._seq = seq = sim._seq + 1
        active = sim._active
        insort(active, (sim.now, seq, self._resume, sim._null_event))
        if len(active) > sim._active_limit:
            sim._pending_resize = True

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        try:
            if event._exception is not None:
                target = self._throw(event._exception)
            else:
                target = self._send(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001
            if self.callbacks:
                # Someone is waiting on this process: deliver the failure.
                self.fail(exc)
                return
            # Unobserved failure: crash the simulation loudly rather than
            # letting a dead server thread look like zero throughput.
            raise
        if not isinstance(target, Event):
            exc = SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield Event instances"
            )
            self.generator.close()
            if self.callbacks:
                self.fail(exc)
                return
            raise exc
        self._waiting_on = target
        # Inlined target.add_callback(self._resume) — one per yield.
        callbacks = target.callbacks
        if callbacks is None:
            self._resume(target)
        else:
            callbacks.append(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name} alive={self.is_alive}>"


class AnyOf(Event):
    """Triggers when the first of *events* triggers.

    The value is the (event, value) pair of the winner.  Late triggers of
    the remaining events are ignored.
    """

    __slots__ = ("_done",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._done = False
        events = list(events)
        if not events:
            raise ValueError("AnyOf requires at least one event")
        for event in events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._done:
            return
        self._done = True
        if event._exception is not None:
            self.fail(event._exception)
        else:
            self.succeed((event, event._value))


class CountdownLatch(Event):
    """A fixed-width fanout completion latch.

    One allocation up front, one integer decrement per completion: a
    fanout-20 join is this latch plus twenty :meth:`count_down` calls
    instead of an :class:`AllOf` with twenty child Event registrations.
    The latch succeeds (value ``None``) when the count reaches zero; a
    count of zero succeeds immediately.

    :meth:`count_down` accepts and ignores an optional argument so it
    can be registered directly as an event callback::

        latch = sim.latch(len(children))
        for child in children:
            child.add_callback(latch.count_down)
    """

    __slots__ = ("_remaining",)

    def __init__(self, sim: "Simulator", count: int) -> None:
        super().__init__(sim)
        count = int(count)
        if count < 0:
            raise ValueError(f"negative latch count: {count}")
        self._remaining = count
        if count == 0:
            self.succeed(None)

    @property
    def remaining(self) -> int:
        """Completions still outstanding."""
        return self._remaining

    def count_down(self, _event: Optional[Event] = None) -> None:
        """Record one completion; trigger the latch on the last one."""
        remaining = self._remaining - 1
        if remaining < 0:
            raise SimulationError("count_down() on an exhausted latch")
        self._remaining = remaining
        if remaining == 0 and not self.triggered:
            self.succeed(None)


class AllOf(Event):
    """Triggers when every one of *events* has triggered.

    The value is the list of child values in the original order.  If any
    child fails, this event fails with the first failure.
    """

    __slots__ = ("_events", "_remaining", "_failed")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._events = list(events)
        self._remaining = len(self._events)
        self._failed = False
        if not self._events:
            self.succeed([])
            return
        for event in self._events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._failed:
            return
        if event._exception is not None:
            self._failed = True
            self.fail(event._exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([child._value for child in self._events])


class Simulator:
    """The event loop: a calendar queue of triggered events.

    Usage::

        sim = Simulator()
        sim.process(some_generator_function(sim))
        sim.run(until=10.0)

    *bucket_width* overrides the initial calendar bucket width in
    seconds (the width self-tunes afterwards); it exists for tests that
    force the far-heap or all-active paths.
    """

    __slots__ = (
        "_seq", "now", "_event_count", "tracer",
        "_width", "_inv_w", "_nbuckets", "_mask", "_buckets",
        "_vb", "_vbh", "_active", "_apos", "_far", "_nbucket", "_nfar",
        "_pending_resize", "_active_limit", "_null_event",
    )

    def __init__(self, bucket_width: Optional[float] = None) -> None:
        self._seq = 0
        #: Current simulation time in seconds.
        self.now = 0.0
        #: Total number of events processed (for diagnostics).
        self._event_count = 0
        #: Optional :class:`repro.trace.Tracer` (None = tracing off;
        #: every hook in the stack is one attribute test against this).
        self.tracer = None
        width = _DEFAULT_WIDTH if bucket_width is None else float(bucket_width)
        if width <= 0.0 or not math.isfinite(width):
            raise ValueError(f"bucket_width must be positive, got {bucket_width}")
        self._width = width
        self._inv_w = 1.0 / width
        self._nbuckets = _MIN_BUCKETS
        self._mask = _MIN_BUCKETS - 1
        self._buckets: List[List[Any]] = [[] for _ in range(_MIN_BUCKETS)]
        self._vb = 0
        self._vbh = _MIN_BUCKETS
        self._active: List[Any] = []
        self._apos = 0
        self._far: List[Any] = []
        self._nbucket = 0
        self._nfar = 0
        self._pending_resize = False
        self._active_limit = _ACTIVE_LIMIT
        self._null_event = Event(self)

    # -- factory helpers ------------------------------------------------

    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers after *delay* seconds."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start driving *generator* as a process."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event triggering on the first of *events*."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event triggering once all *events* have triggered."""
        return AllOf(self, events)

    def latch(self, count: int) -> CountdownLatch:
        """A :class:`CountdownLatch` for *count* completions."""
        return CountdownLatch(self, count)

    # -- scheduling ------------------------------------------------------

    def call_later(self, delay: float, fn: Callable[[Any], None],
                   arg: Any = None) -> None:
        """Schedule ``fn(arg)`` after *delay* seconds — no Event allocated.

        This is the fire-and-forget fast path for internal machinery
        (network delivery, CPU slice completion): one queue tuple instead
        of a Timeout + callback list + closure.  The callback cannot be
        cancelled or waited on; use :meth:`timeout` for that.
        """
        if delay < 0:
            raise ValueError(f"negative call_later delay: {delay}")
        self._seq = seq = self._seq + 1
        t = self.now + delay
        vb = int(t * self._inv_w)
        if self._vb < vb < self._vbh:
            self._buckets[vb & self._mask].append((t, seq, fn, arg))
            self._nbucket += 1
        else:
            self._push_slow(t, vb, (t, seq, fn, arg))

    def call_at(self, when: float, fn: Callable[[Any], None],
                arg: Any = None) -> None:
        """Schedule ``fn(arg)`` at absolute time *when* — no Event allocated.

        Like :meth:`call_later`, but takes the target instant directly so
        callers replaying a precomputed timeline (e.g. coalesced CPU
        stints) hit the exact float they computed instead of re-deriving
        it through ``now + (when - now)``.
        """
        if when < self.now:
            raise ValueError(
                f"call_at target {when} is before now={self.now}")
        self._seq = seq = self._seq + 1
        vb = int(when * self._inv_w)
        if self._vb < vb < self._vbh:
            self._buckets[vb & self._mask].append((when, seq, fn, arg))
            self._nbucket += 1
        else:
            self._push_slow(when, vb, (when, seq, fn, arg))

    def call_every(self, period: float, fn: Callable[[float], None]) -> None:
        """Invoke ``fn(now)`` every *period* simulated seconds, starting
        at ``now + period`` — the telemetry-ticker primitive.

        Built on :meth:`call_at` with absolute tick times, so tick *k*
        fires at exactly ``start + k * accumulated-period`` floats and
        the schedule is a pure function of the start time.  One bare
        callback tuple per tick, no Event allocation, no cancellation
        handle: the chain simply stops dispatching when the run ends.
        Observation-only callbacks (no RNG draws, no state mutation)
        keep measured results float-identical — extra queue entries
        shift sequence numbers uniformly, never the relative order of
        any two other events.
        """
        if period <= 0.0 or not math.isfinite(period):
            raise ValueError(f"call_every period must be positive, "
                             f"got {period}")

        def tick(when: float) -> None:
            fn(when)
            self.call_at(when + period, tick, when + period)

        self.call_at(self.now + period, tick, self.now + period)

    def _schedule(self, delay: float, event: Event) -> None:
        self._seq = seq = self._seq + 1
        t = self.now + delay
        vb = int(t * self._inv_w)
        if self._vb < vb < self._vbh:
            self._buckets[vb & self._mask].append((t, seq, event))
            self._nbucket += 1
        else:
            self._push_slow(t, vb, (t, seq, event))

    def _push_slow(self, t: float, vb: int, entry: Any) -> None:
        """Entry falls outside the bucket ring: far heap or active list."""
        if vb > self._vb:
            heappush(self._far, entry)
            self._nfar += 1
        else:
            active = self._active
            insort(active, entry)
            if len(active) > self._active_limit:
                self._pending_resize = True

    # -- calendar maintenance -------------------------------------------

    def _drain_far(self) -> None:
        """Move far-heap entries that now fall inside the ring."""
        far = self._far
        inv_w = self._inv_w
        vbh = self._vbh
        buckets = self._buckets
        mask = self._mask
        moved = 0
        while far:
            vb = int(far[0][0] * inv_w)
            if vb >= vbh:
                break
            buckets[vb & mask].append(heappop(far))
            moved += 1
        self._nfar -= moved
        self._nbucket += moved

    def _refill(self) -> bool:
        """Consume the next non-empty bucket into ``_active``.

        Precondition: the active list is exhausted (``_apos`` synced and
        at the end).  Returns False when no entries remain anywhere.
        """
        total = self._nbucket + self._nfar
        if total == 0:
            return False
        nbuckets = self._nbuckets
        if total > (nbuckets << 1) or (
                nbuckets > _MIN_BUCKETS and total < (nbuckets >> 3)):
            self._resize()
            if self._apos < len(self._active):
                return True
            if self._nbucket == 0 and not self._far:
                # Everything pending turned out to be cancelled.
                return False
        if self._nbucket == 0:
            # All buckets empty: hop the window straight to the far head
            # instead of scanning revolution by revolution.
            jump = int(self._far[0][0] * self._inv_w) - 1
            if jump > self._vb:
                self._vb = jump
                self._vbh = jump + self._nbuckets
            self._drain_far()
        buckets = self._buckets
        mask = self._mask
        vb = self._vb
        while True:
            vb += 1
            bucket = buckets[vb & mask]
            if bucket:
                break
        buckets[vb & mask] = []
        self._vb = vb
        self._vbh = vb + self._nbuckets
        self._nbucket -= len(bucket)
        if len(bucket) > 1:
            # Appends arrive in seq order, so runs are nearly sorted.
            bucket.sort()
        self._active = bucket
        self._apos = 0
        if self._far:
            self._drain_far()
        return True

    def _resize(self) -> None:
        """Re-derive bucket width from pending entries and re-place them.

        Also acts as compaction: the consumed active prefix and any
        cancelled entries are dropped.
        """
        items = self._active[self._apos:]
        for bucket in self._buckets:
            if bucket:
                items.extend(bucket)
        items.extend(self._far)
        items = [it for it in items
                 if len(it) != 3 or it[2].callbacks is not None]
        n = len(items)
        width = self._width
        if n >= 2:
            tmin = tmax = items[0][0]
            for it in items:
                t = it[0]
                if t < tmin:
                    tmin = t
                elif t > tmax:
                    tmax = t
            span = tmax - tmin
            if span > 0.0:
                candidate = span * _ITEMS_PER_BUCKET / n
                if candidate > 0.0 and math.isfinite(candidate):
                    width = candidate
        nbuckets = 1 << max(_MIN_BUCKETS.bit_length() - 1,
                            (n // _ITEMS_PER_BUCKET).bit_length())
        if nbuckets > _MAX_BUCKETS:
            nbuckets = _MAX_BUCKETS
        self._width = width
        self._inv_w = inv_w = 1.0 / width
        self._nbuckets = nbuckets
        self._mask = mask = nbuckets - 1
        self._vb = vb0 = int(self.now * inv_w)
        self._vbh = vbh = vb0 + nbuckets
        buckets: List[List[Any]] = [[] for _ in range(nbuckets)]
        active: List[Any] = []
        far: List[Any] = []
        for it in items:
            vb = int(it[0] * inv_w)
            if vb <= vb0:
                active.append(it)
            elif vb < vbh:
                buckets[vb & mask].append(it)
            else:
                far.append(it)
        active.sort()
        heapify(far)
        self._buckets = buckets
        self._active = active
        self._apos = 0
        self._far = far
        self._nfar = len(far)
        self._nbucket = n - len(active) - len(far)
        self._pending_resize = False
        # If the entries would not split (zero span), raise the trigger
        # so the resize is not immediately re-requested.
        self._active_limit = max(_ACTIVE_LIMIT, 2 * len(active))

    # -- execution --------------------------------------------------------

    def step(self) -> bool:
        """Process the single next event; return False if none remain."""
        while True:
            active = self._active
            apos = self._apos
            if apos >= len(active):
                if not self._refill():
                    return False
                continue
            item = active[apos]
            self._apos = apos + 1
            if len(item) == 3:
                event = item[2]
                callbacks = event.callbacks
                if callbacks is None:
                    continue  # cancelled: skip silently, no count
                event.callbacks = None
                event.processed = True
                self.now = item[0]
                self._event_count += 1
                for callback in callbacks:
                    callback(event)
                return True
            self.now = item[0]
            self._event_count += 1
            item[2](item[3])
            return True

    def peek(self) -> Optional[float]:
        """Time of the next scheduled event, or None when idle.

        Cancelled entries at the head are purged as a side effect.
        """
        while True:
            active = self._active
            n = len(active)
            apos = self._apos
            while apos < n:
                item = active[apos]
                if len(item) != 3 or item[2].callbacks is not None:
                    self._apos = apos
                    return item[0]
                apos += 1
            self._apos = apos
            if not self._refill():
                return None

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or simulated time reaches *until*.

        When *until* is given, ``now`` is advanced to exactly *until*
        even if the last event fired earlier, so measurement windows have
        a precise width.
        """
        if until is None:
            bound = math.inf
        elif until < self.now:
            raise ValueError(f"until={until} is in the past (now={self.now})")
        else:
            bound = until
        # One loop for both modes (bound = +inf drains the queue), with
        # the active list and cursor held in locals.  Callbacks may
        # insort into the active list but never rebind it (restructures
        # go through the _pending_resize flag, checked each iteration),
        # so the local alias stays valid.  _apos/_event_count are settled
        # in `finally` so a callback that raises (e.g. an unobserved
        # process failure) can't lose the cursor or the tally.
        active = self._active
        apos = self._apos
        count = 0
        try:
            while True:
                if self._pending_resize:
                    self._apos = apos
                    self._resize()
                    active = self._active
                    apos = 0
                if apos >= len(active):
                    self._apos = apos
                    if not self._refill():
                        break
                    active = self._active
                    apos = 0
                    continue
                item = active[apos]
                when = item[0]
                if when > bound:
                    break
                apos += 1
                if len(item) == 3:
                    event = item[2]
                    # Inlined Event._run_callbacks (one method call per
                    # event adds up across an exhibit grid).
                    callbacks = event.callbacks
                    if callbacks is None:
                        continue  # cancelled Timeout: skip, no count
                    event.callbacks = None
                    event.processed = True
                    self.now = when
                    count += 1
                    if callbacks:
                        for callback in callbacks:
                            callback(event)
                else:
                    # (t, seq, fn, arg) bare-callback entry.
                    self.now = when
                    count += 1
                    item[2](item[3])
        finally:
            self._apos = apos
            self._event_count += count
        if until is not None:
            self.now = until
