"""Discrete-event simulation substrate.

Layers (bottom-up):

- :mod:`repro.sim.kernel` — events, processes, the event loop.
- :mod:`repro.sim.resources` — waitable queues and semaphores.
- :mod:`repro.sim.cpu` — cores, run queues, context switches.
- :mod:`repro.sim.threads` — threads, mutexes, worker pools.
- :mod:`repro.sim.syscalls` — the select()/epoll readiness model.
- :mod:`repro.sim.network` — connections and endpoints.
- :mod:`repro.sim.metrics` / :mod:`repro.sim.params` / :mod:`repro.sim.rng`
  — measurement, cost calibration, deterministic randomness.
"""

from .kernel import (AllOf, AnyOf, CountdownLatch, Event, Process,
                     SimulationError, Simulator, Timeout)
from .metrics import CpuAccounting, LatencyRecorder, Metrics, TimeSeries
from .params import KB, CostParams
from .resources import Queue, QueueTimeout, Semaphore, queue_get_with_timeout
from .rng import RngStreams, lognormal_from_mean_cv
from .cpu import Cpu
from .threads import FixedPool, Mutex, OnDemandPool, SimThread, locked_section
from .syscalls import Channel, Selector
from .network import ChannelEndpoint, Connection, Endpoint, InboxEndpoint, QueueEndpoint

__all__ = [
    "AllOf", "AnyOf", "CountdownLatch", "Event", "Process",
    "SimulationError", "Simulator",
    "Timeout", "CpuAccounting", "LatencyRecorder", "Metrics", "TimeSeries",
    "KB", "CostParams", "Queue", "QueueTimeout", "Semaphore",
    "queue_get_with_timeout", "RngStreams", "lognormal_from_mean_cv", "Cpu",
    "FixedPool", "Mutex", "OnDemandPool", "SimThread", "locked_section",
    "Channel", "Selector", "ChannelEndpoint", "Connection", "Endpoint",
    "InboxEndpoint", "QueueEndpoint",
]
