"""Simulated threads, mutexes, and worker-thread pools.

These primitives carry the *costs* that the paper's perf analysis
attributes to multithreading:

- :class:`Mutex` charges ``futex`` CPU (category ``lock``) on both sides
  of every *contended* hand-off, so lock-contention CPU share (Table 1)
  emerges from actual queueing on shared structures.
- :class:`OnDemandPool` implements the JVM-style pool of the Type-2b
  AIO driver: workers are spawned when work arrives and no worker is
  idle (charging ``thread_init`` CPU) and terminate after an idle
  timeout — exactly the dynamics behind Figure 9 and Table 1.
- :class:`FixedPool` is the pre-defined pool of Type-1 async drivers.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Callable, Deque, Generator, Optional

from .cpu import Cpu
from .kernel import Event, Simulator
from .metrics import Metrics
from .params import CostParams
from .resources import Queue, QueueTimeout, queue_get_with_timeout

__all__ = ["SimThread", "Mutex", "locked_section", "FixedPool", "OnDemandPool"]

_thread_ids = itertools.count(1)

#: A pool task: a callable taking the worker thread and returning a
#: generator to be driven with ``yield from``.
Task = Callable[["SimThread"], Generator]


class SimThread:
    """Identity of a simulated OS thread.

    A thread is a token: code *runs as* a thread by passing it to
    ``cpu.execute``; blocking is simply not having a job queued.
    """

    __slots__ = ("name", "cpu", "tid")

    def __init__(self, cpu: Cpu, name: str = "") -> None:
        self.cpu = cpu
        self.tid = next(_thread_ids)
        self.name = name or f"thread-{self.tid}"

    def execute(self, amount: float, category: str = "app") -> Event:
        """Shorthand for ``cpu.execute(self, amount, category)``."""
        return self.cpu.execute(self, amount, category)

    def execute_then(self, amount: float, category: str = "app",
                     fn=None, arg=None) -> None:
        """Shorthand for ``cpu.execute_then`` — charge with no Event."""
        self.cpu.execute_then(self, amount, category, fn, arg)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimThread {self.name}>"


class Mutex:
    """A mutual-exclusion lock with futex-cost accounting.

    ``acquire``/``release`` are coroutine helpers (use with
    ``yield from``): a contended acquire blocks and, when granted,
    charges :attr:`CostParams.futex_cost` to the woken thread; a release
    that wakes a waiter charges the same to the releasing thread
    (futex_wake).  Uncontended operations are free, as on real hardware.
    """

    __slots__ = ("sim", "cpu", "metrics", "params", "name", "owner",
                 "_waiters", "_contended", "_contended_total",
                 "_wait_time_total", "_barged")

    def __init__(self, sim: Simulator, cpu: Cpu, metrics: Metrics,
                 params: CostParams, name: str = "mutex") -> None:
        self.sim = sim
        self.cpu = cpu
        self.metrics = metrics
        self.params = params
        self.name = name
        self.owner: Optional[SimThread] = None
        self._waiters: Deque[Event] = deque()
        # Interned contention counters: no f-string per contended acquire.
        self._contended = metrics.counter(f"mutex.{name}.contended")
        self._contended_total = metrics.counter("mutex.contended_total")
        self._wait_time_total = metrics.counter("mutex.wait_time_total")
        self._barged = metrics.counter(f"mutex.{name}.barged")

    @property
    def locked(self) -> bool:
        return self.owner is not None

    @property
    def waiting(self) -> int:
        return len(self._waiters)

    def acquire(self, thread: SimThread):
        """Coroutine: block until the lock is held by *thread*.

        Semantics follow Linux futexes: the lock is *not* handed off
        directly to the oldest waiter (that would convoy two alternating
        threads into contending on every operation); a released lock is
        up for grabs, and a woken waiter that finds it taken re-queues.
        """
        # The fast-path CAS: a real CPU instruction, so competing
        # acquirers serialise through the core instead of interleaving
        # at event granularity.
        yield self.cpu.execute(thread, self.params.cas_cost, "app")
        if self.owner is None:
            self.owner = thread
            return
        self._contended.add()
        self._contended_total.add()
        start = self.sim.now
        while True:
            waiter = Event(self.sim)
            self._waiters.append(waiter)
            yield waiter
            # futex_wait return + scheduling back in.
            yield self.cpu.execute(thread, self.params.futex_cost, "lock")
            if self.owner is None:
                self.owner = thread
                self._wait_time_total.add(self.sim.now - start)
                return
            # Barged by another thread between wake-up and running: wait
            # again (counted so pathological convoys are observable).
            self._barged.add()

    def release(self, thread: SimThread):
        """Coroutine: release the lock and wake the next waiter, if any."""
        if self.owner is not thread:
            raise RuntimeError(
                f"mutex {self.name} released by {thread.name} but held by "
                f"{self.owner.name if self.owner else None}"
            )
        self.owner = None
        woke = False
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.triggered:
                waiter.succeed()
                woke = True
                break
        if woke:
            # futex_wake syscall on the releasing side.
            yield self.cpu.execute(thread, self.params.futex_cost, "lock")


def locked_section(thread: SimThread, mutex: Mutex, hold: float,
                   category: str = "app"):
    """Coroutine: acquire *mutex*, run *hold* seconds of CPU, release.

    This is the unit of every shared-structure operation (pool task
    queues, connection-pool checkout) whose contention the paper
    measures.
    """
    yield from mutex.acquire(thread)
    if hold > 0:
        yield thread.execute(hold, category)
    yield from mutex.release(thread)


class _PoolBase:
    """Shared machinery of fixed and on-demand worker pools."""

    __slots__ = ("sim", "cpu", "metrics", "params", "name", "tasks",
                 "mutex", "worker_count", "idle_count", "busy_count",
                 "_submitted", "_completed")

    def __init__(self, sim: Simulator, cpu: Cpu, metrics: Metrics,
                 params: CostParams, name: str) -> None:
        self.sim = sim
        self.cpu = cpu
        self.metrics = metrics
        self.params = params
        self.name = name
        # FixedPool overrides this with a fair (FIFO) queue.
        self.tasks = Queue(sim, wake_order="lifo")
        self.mutex = Mutex(sim, cpu, metrics, params, name=f"{name}.queue")
        self.worker_count = 0
        self.idle_count = 0
        self.busy_count = 0
        # Interned per-task counters.
        self._submitted = metrics.counter(f"pool.{name}.submitted")
        self._completed = metrics.counter(f"pool.{name}.completed")

    def submit(self, thread: SimThread, task: Task):
        """Coroutine: enqueue *task* from *thread* (charges the critical
        section on the submitter)."""
        yield from locked_section(
            thread, self.mutex, self.params.queue_hold_time, "app")
        self._submitted.add()
        self._before_enqueue(thread)
        self.tasks.put(task)

    def _before_enqueue(self, thread: SimThread) -> None:
        """Hook for on-demand scaling."""

    def _run_task(self, worker: SimThread, task: Task):
        yield from locked_section(
            worker, self.mutex, self.params.queue_hold_time, "app")
        self.busy_count += 1
        try:
            yield from task(worker)
        finally:
            self.busy_count -= 1
        self._completed.add()


class FixedPool(_PoolBase):
    """A pre-defined pool of *size* workers (Type-1 async drivers)."""

    __slots__ = ("size",)

    def __init__(self, sim: Simulator, cpu: Cpu, metrics: Metrics,
                 params: CostParams, size: int, name: str = "fixed") -> None:
        super().__init__(sim, cpu, metrics, params, name)
        if size < 1:
            raise ValueError("pool size must be >= 1")
        # LinkedBlockingQueue semantics: fair FIFO hand-off, so work
        # spreads across all workers (unlike the cached pool's LIFO).
        self.tasks = Queue(sim, wake_order="fifo")
        self.size = size
        for i in range(size):
            worker = SimThread(cpu, name=f"{name}-worker-{i}")
            self.worker_count += 1
            sim.process(self._worker_loop(worker), name=worker.name)

    def _worker_loop(self, worker: SimThread):
        while True:
            self.idle_count += 1
            task = yield self.tasks.get()
            self.idle_count -= 1
            yield from self._run_task(worker, task)


class OnDemandPool(_PoolBase):
    """JVM-style on-demand pool (the Type-2b AIO driver's executor).

    A new worker is spawned when a task is submitted and no worker is
    idle (up to *max_size*); spawning charges
    :attr:`CostParams.thread_spawn_cost` as ``thread_init`` CPU, the
    overhead perf attributes to "thread initiation" in Table 1.  Workers
    terminate after :attr:`CostParams.aio_pool_idle_timeout` idle.
    """

    __slots__ = ("max_size", "idle_timeout", "_worker_seq",
                 "_spawned", "_terminated")

    def __init__(self, sim: Simulator, cpu: Cpu, metrics: Metrics,
                 params: CostParams, max_size: Optional[int] = None,
                 idle_timeout: Optional[float] = None,
                 name: str = "ondemand") -> None:
        super().__init__(sim, cpu, metrics, params, name)
        self.max_size = max_size if max_size is not None else params.aio_pool_max
        self.idle_timeout = (idle_timeout if idle_timeout is not None
                             else params.aio_pool_idle_timeout)
        self._worker_seq = itertools.count(1)
        self._spawned = metrics.counter(f"pool.{name}.spawned")
        self._terminated = metrics.counter(f"pool.{name}.terminated")

    def _before_enqueue(self, thread: SimThread) -> None:
        if self.idle_count == 0 and self.worker_count < self.max_size:
            self._spawn()

    def _spawn(self) -> None:
        worker = SimThread(self.cpu, name=f"{self.name}-worker-{next(self._worker_seq)}")
        self.worker_count += 1
        self._spawned.add()
        self.sim.process(self._worker_loop(worker), name=worker.name)

    def _worker_loop(self, worker: SimThread):
        # Thread initialisation cost (stack setup, JVM bookkeeping).
        yield worker.execute(self.params.thread_spawn_cost, "thread_init")
        while True:
            self.idle_count += 1
            try:
                task = yield from queue_get_with_timeout(
                    self.sim, self.tasks, self.idle_timeout)
            except QueueTimeout:
                self.idle_count -= 1
                self.worker_count -= 1
                self._terminated.add()
                return
            self.idle_count -= 1
            yield from self._run_task(worker, task)
