"""Measurement infrastructure: counters, CPU accounting, latency
recorders, and time series.

A single :class:`Metrics` object is shared by every component of a
simulation run.  Components record into namespaced keys
(``"selector.frontend.selects"``, ``"cpu.ctx_switches"``, ...); the
experiment harness reads them back to build the paper's tables.
"""

from __future__ import annotations

import bisect
import math
from array import array
from collections import defaultdict
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["Metrics", "Counter", "CpuCharger", "LatencyRecorder",
           "TimeSeries", "CpuAccounting", "SKETCH_PERCENTILES"]

#: Percentiles the sketch mode tracks one P-squared estimator for — the
#: harness's reporting set plus the 0/100 endpoints held as min/max.
SKETCH_PERCENTILES = (50.0, 80.0, 90.0, 95.0, 99.0, 99.9)

#: Sketch mode answers exactly from a small buffer until this many
#: windowed samples have arrived (P-squared estimates are noisy early).
_SKETCH_EXACT_UNTIL = 64


class _P2Quantile:
    """One streaming quantile via the P-squared algorithm
    (Jain & Chlamtac, CACM 1985): five markers whose heights
    approximate the q-quantile without storing samples."""

    __slots__ = ("p", "_init", "_q", "_n", "_np", "_dn")

    def __init__(self, p: float) -> None:
        self.p = p  # quantile in (0, 1)
        self._init: Optional[List[float]] = []

    def add(self, x: float) -> None:
        init = self._init
        if init is not None:
            init.append(x)
            if len(init) == 5:
                init.sort()
                p = self.p
                self._q = init
                self._n = [0.0, 1.0, 2.0, 3.0, 4.0]
                self._np = [0.0, 2.0 * p, 4.0 * p, 2.0 + 2.0 * p, 4.0]
                self._dn = (0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0)
                self._init = None
            return
        q = self._q
        n = self._n
        if x < q[0]:
            q[0] = x
            k = 0
        elif x < q[1]:
            k = 0
        elif x < q[2]:
            k = 1
        elif x < q[3]:
            k = 2
        elif x <= q[4]:
            k = 3
        else:
            q[4] = x
            k = 3
        for i in range(k + 1, 5):
            n[i] += 1.0
        np_ = self._np
        dn = self._dn
        for i in range(5):
            np_[i] += dn[i]
        for i in (1, 2, 3):
            d = np_[i] - n[i]
            if ((d >= 1.0 and n[i + 1] - n[i] > 1.0)
                    or (d <= -1.0 and n[i - 1] - n[i] < -1.0)):
                d = 1.0 if d > 0.0 else -1.0
                # Piecewise-parabolic prediction of the marker height;
                # fall back to linear when it would leave the bracket.
                qn = q[i] + d / (n[i + 1] - n[i - 1]) * (
                    (n[i] - n[i - 1] + d) * (q[i + 1] - q[i])
                    / (n[i + 1] - n[i])
                    + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1])
                    / (n[i] - n[i - 1]))
                if not q[i - 1] < qn < q[i + 1]:
                    j = i + (1 if d > 0.0 else -1)
                    qn = q[i] + d * (q[j] - q[i]) / (n[j] - n[i])
                q[i] = qn
                n[i] += d

    def value(self) -> float:
        init = self._init
        if init is not None:
            # Fewer than five samples: exact from the seed buffer.
            if not init:
                return math.nan
            values = sorted(init)
            rank = self.p * (len(values) - 1)
            low = int(rank)
            high = min(low + 1, len(values) - 1)
            return values[low] + (rank - low) * (values[high] - values[low])
        return self._q[2]


class LatencyRecorder:
    """Collects latency samples and answers percentile queries.

    Samples recorded before ``start_at`` (the measurement-window start,
    set by the harness after warm-up) are discarded at query time.

    **Exact mode** (the default) stores every sample in two flat
    ``array('d')`` columns (times, values) — samples are columnar at
    collection time, so the result transport can ship them as packed
    float buffers without a per-sample conversion pass.  Simulation
    time is monotone, so the window cut is a ``bisect`` over the time
    column (a linear-scan fallback covers hand-built recorders that
    append out of order).  Queries share one sorted copy of the
    windowed values, rebuilt only when a sample lands or ``start_at``
    moves since the last query, so ``cdf_points`` over six percentiles
    costs one sort instead of six and ``record`` stays bare appends.

    **Sketch mode** (``sketch=True``) keeps O(1) state per tracked
    percentile (:data:`SKETCH_PERCENTILES`, via P-squared estimators)
    plus count/sum/min/max, so long ``--full`` windows stop holding
    millions of samples.  Reported percentiles become estimates;
    untracked percentiles interpolate between the tracked ones (with
    0 -> min and 100 -> max).  Moving ``start_at`` forward resets the
    sketch, which is how the harness discards warm-up samples.
    """

    __slots__ = ("_times", "_values", "_last_time", "_monotone",
                 "_start_at", "_cache", "_cache_len",
                 "_cache_start", "_sketch", "_estimators", "_count",
                 "_sum", "_min", "_max", "_seed", "_raw_total")

    def __init__(self, sketch: bool = False) -> None:
        self._times = array("d")
        self._values = array("d")
        self._last_time = -math.inf
        self._monotone = True
        self._start_at = 0.0
        self._cache: Optional[List[float]] = None
        self._cache_len = -1
        self._cache_start = 0.0
        self._sketch = sketch
        self._raw_total = 0
        if sketch:
            self._reset_sketch()

    def _reset_sketch(self) -> None:
        self._estimators = {q: _P2Quantile(q / 100.0)
                            for q in SKETCH_PERCENTILES}
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._seed: List[float] = []

    @property
    def is_sketch(self) -> bool:
        return self._sketch

    @property
    def start_at(self) -> float:
        return self._start_at

    @start_at.setter
    def start_at(self, value: float) -> None:
        if self._sketch and value != self._start_at:
            # The sketch cannot retroactively un-record warm-up samples;
            # restarting the estimators has the same effect because
            # record() drops samples before the new window start.
            self._reset_sketch()
        self._start_at = value

    def record(self, now: float, value: float) -> None:
        """Record *value* observed at simulated time *now*."""
        self._raw_total += 1
        if not self._sketch:
            if now < self._last_time:
                self._monotone = False
            else:
                self._last_time = now
            self._times.append(now)
            self._values.append(value)
            return
        if now < self._start_at:
            return
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if len(self._seed) < _SKETCH_EXACT_UNTIL:
            self._seed.append(value)
        for estimator in self._estimators.values():
            estimator.add(value)

    def _window_lo(self) -> int:
        """Index of the first sample inside the measurement window."""
        if self._monotone:
            return bisect.bisect_left(self._times, self._start_at)
        # Out-of-order appends (hand-built recorders only): no index
        # structure holds, fall back to a full scan via window_columns.
        return -1

    def _window_sorted(self) -> List[float]:
        """Sorted windowed values; cached until the inputs change."""
        n = len(self._values)
        if (self._cache is not None and self._cache_len == n
                and self._cache_start == self._start_at):
            return self._cache
        start = self._start_at
        lo = self._window_lo()
        if lo >= 0:
            values = sorted(self._values[lo:])
        else:
            values = sorted(v for (t, v) in zip(self._times, self._values)
                            if t >= start)
        self._cache = values
        self._cache_len = n
        self._cache_start = start
        return values

    def window_columns(self) -> Tuple[array, array]:
        """The windowed samples as flat ``array('d')`` (times, values)
        columns in arrival order — the transport-ready view.  Sketch
        mode stores no samples and returns empty columns."""
        if self._sketch:
            return array("d"), array("d")
        lo = self._window_lo()
        if lo >= 0:
            return self._times[lo:], self._values[lo:]
        start = self._start_at
        times = array("d")
        values = array("d")
        for t, v in zip(self._times, self._values):
            if t >= start:
                times.append(t)
                values.append(v)
        return times, values

    def __len__(self) -> int:
        if self._sketch:
            return self._count
        return len(self._window_sorted())

    @property
    def raw_count(self) -> int:
        """All samples ever recorded, including warm-up."""
        return self._raw_total

    @staticmethod
    def _interpolate(values: List[float], q: float) -> float:
        if len(values) == 1:
            return values[0]
        rank = (q / 100.0) * (len(values) - 1)
        low = int(math.floor(rank))
        high = min(low + 1, len(values) - 1)
        frac = rank - low
        # This form is exact when neighbours are equal, keeping the
        # percentile function monotone under float rounding.
        return values[low] + frac * (values[high] - values[low])

    def percentile(self, q: float) -> float:
        """The *q*-th percentile (0..100); linear interpolation in exact
        mode, a P-squared estimate in sketch mode."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile out of range: {q}")
        if not self._sketch:
            values = self._window_sorted()
            if not values:
                return math.nan
            return self._interpolate(values, q)
        if self._count == 0:
            return math.nan
        if self._count <= len(self._seed):
            # Small window: every sample is still in the seed buffer.
            return self._interpolate(sorted(self._seed), q)
        estimator = self._estimators.get(q)
        if estimator is not None:
            value = estimator.value()
            return min(max(value, self._min), self._max)
        # Untracked percentile: interpolate between the tracked marks,
        # anchored by min (q=0) and max (q=100).
        marks = [(0.0, self._min)]
        marks += [(mark, min(max(self._estimators[mark].value(), self._min),
                             self._max))
                  for mark in SKETCH_PERCENTILES]
        marks.append((100.0, self._max))
        for (lo_q, lo_v), (hi_q, hi_v) in zip(marks, marks[1:]):
            if lo_q <= q <= hi_q:
                if hi_q == lo_q:
                    return lo_v
                frac = (q - lo_q) / (hi_q - lo_q)
                return lo_v + frac * (hi_v - lo_v)
        return self._max  # pragma: no cover - marks span [0, 100]

    def mean(self) -> float:
        """Arithmetic mean of windowed samples (NaN when empty)."""
        if self._sketch:
            return self._sum / self._count if self._count else math.nan
        values = self._window_sorted()
        if not values:
            return math.nan
        return sum(values) / len(values)

    def maximum(self) -> float:
        if self._sketch:
            return self._max if self._count else math.nan
        values = self._window_sorted()
        return values[-1] if values else math.nan

    def cdf_points(self, percentiles: Iterable[float]) -> List[Tuple[float, float]]:
        """(percentile, value) pairs — one row per requested percentile."""
        return [(q, self.percentile(q)) for q in percentiles]


class TimeSeries:
    """Append-only (time, value) series, e.g. running-thread counts.

    Backed by two flat ``array('d')`` columns so a window is a pair of
    ``bisect`` cuts plus buffer slices — :meth:`columns` hands the raw
    slices to the result transport with no per-sample conversion.
    """

    __slots__ = ("_times", "_values")

    def __init__(self) -> None:
        self._times = array("d")
        self._values = array("d")

    def append(self, now: float, value: float) -> None:
        if self._times and now < self._times[-1]:
            raise ValueError("time series must be appended in time order")
        self._times.append(now)
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._times)

    def items(self) -> List[Tuple[float, float]]:
        return list(zip(self._times, self._values))

    def window(self, start: float, end: float) -> List[Tuple[float, float]]:
        """Samples with start <= t < end."""
        lo = bisect.bisect_left(self._times, start)
        hi = bisect.bisect_left(self._times, end)
        return list(zip(self._times[lo:hi], self._values[lo:hi]))

    def columns(self, start: float = 0.0,
                end: float = math.inf) -> Tuple[array, array]:
        """The ``start <= t < end`` window as flat ``array('d')``
        (times, values) columns — same cut as :meth:`window`, no
        tuple boxing."""
        lo = bisect.bisect_left(self._times, start)
        hi = bisect.bisect_left(self._times, end)
        return self._times[lo:hi], self._values[lo:hi]

    def mean(self, start: float = 0.0, end: float = math.inf) -> float:
        pairs = self.window(start, end)
        if not pairs:
            return math.nan
        return sum(v for (_t, v) in pairs) / len(pairs)


class GaugeBoard:
    """Columnar multi-gauge store: many gauges sampled at the same
    ticks share one time column.

    Where :class:`TimeSeries` pairs one time column with one value
    column, the telemetry ticker samples tens of gauges at every tick —
    a shared time column plus one ``array('d')`` value column per gauge
    keeps that O(gauges) floats per tick with no per-sample boxing, and
    the columns ride the shared-memory result transport as-is.
    """

    __slots__ = ("names", "_times", "_columns")

    def __init__(self, names) -> None:
        self.names: Tuple[str, ...] = tuple(names)
        self._times = array("d")
        self._columns = tuple(array("d") for _ in self.names)

    def append(self, now: float, values) -> None:
        """Record one tick: *values* aligned with :attr:`names`."""
        if len(values) != len(self._columns):
            raise ValueError(
                f"expected {len(self._columns)} gauge values, "
                f"got {len(values)}")
        if self._times and now < self._times[-1]:
            raise ValueError("gauge board must be appended in time order")
        self._times.append(now)
        for column, value in zip(self._columns, values):
            column.append(value)

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> array:
        return self._times

    def column(self, name: str) -> array:
        """The value column for gauge *name*."""
        return self._columns[self.names.index(name)]

    def columns(self) -> Tuple[array, ...]:
        """All value columns, aligned with :attr:`names`."""
        return self._columns

    def as_dict(self) -> Dict[str, array]:
        """name → value-column view (columns shared, not copied)."""
        return dict(zip(self.names, self._columns))


class Counter:
    """An interned counter handle: one float cell bound to a name.

    Hot call sites obtain a handle once (:meth:`Metrics.counter`) and
    bump it with :meth:`add` — no f-string construction and no dict
    lookup per event.  The cell *is* the counter's storage; the merged
    :attr:`Metrics.counters` view folds handles back in by name.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0.0) -> None:
        self.name = name
        self.value = value

    def add(self, amount: float = 1.0) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class CpuCharger:
    """An interned CPU-charge handle for one accounting category.

    Owns the category's busy-time cell.  The first charge (of any
    amount, including zero) links the handle into the accounting's
    category order, so :meth:`CpuAccounting.windowed` iterates in exact
    first-charge order — the float-summation order the pre-handle
    ``defaultdict`` gave, which downstream share calculations depend on
    for bit-identical results.
    """

    __slots__ = ("category", "value", "_linked", "_acct")

    def __init__(self, acct: "CpuAccounting", category: str) -> None:
        self._acct = acct
        self.category = category
        self.value = 0.0
        self._linked = False

    def add(self, amount: float) -> None:
        acct = self._acct
        if acct._co_sources:
            # Coalesced stints elsewhere may have slice boundaries due
            # before this charge: commit them first so the global charge
            # order matches the sliced schedule.
            acct.co_sync()
        if not self._linked:
            self._linked = True
            acct._order.append(self)
        self.value += amount
        acct._busy_ever += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CpuCharger {self.category}={self.value}>"


class CpuAccounting:
    """Tracks busy time per CPU-work category.

    Categories mirror the paper's perf breakdown: ``app`` (useful work),
    ``lock`` (futex), ``thread_init``, ``select``, ``syscall`` (send/recv),
    ``ctx_switch``.  ``window_start`` is set by the harness after
    warm-up so utilisation reflects only the measurement window.

    Storage lives in per-category :class:`CpuCharger` handles
    (:meth:`charger`); :attr:`busy_by_category` is a read view built
    from them.  The accounting also hosts the *coalesced-stint* commit
    protocol: a :class:`~repro.sim.cpu.Cpu` running an uncontended
    multi-quantum stint defers its per-slice charges behind a cursor
    registered here, and every read or charge first calls
    :meth:`co_sync` to commit all deferred slice boundaries up to the
    current instant, in exactly the order the sliced schedule would
    have charged them.
    """

    __slots__ = ("window_start", "_warmup_by_category", "_busy_ever",
                 "_chargers", "_order", "_co_sources", "_co_reg")

    def __init__(self) -> None:
        self._chargers: Dict[str, CpuCharger] = {}
        #: Chargers in first-charge order (the float-sum order).
        self._order: List[CpuCharger] = []
        self._warmup_by_category: Dict[str, float] = {}
        self.window_start = 0.0
        # Running total of all busy time ever charged (cheap monotonic
        # clock of "work done by the machine", used by the cache model);
        # read through the syncing :attr:`total_busy_ever` property.
        self._busy_ever = 0.0
        #: Active coalesced-stint cursors with uncommitted boundaries.
        self._co_sources: List[Any] = []
        self._co_reg = 0

    # -- handles ---------------------------------------------------------

    def charger(self, category: str) -> CpuCharger:
        """The interned :class:`CpuCharger` handle for *category*."""
        ch = self._chargers.get(category)
        if ch is None:
            ch = CpuCharger(self, category)
            self._chargers[category] = ch
        return ch

    def charge(self, category: str, amount: float) -> None:
        if amount < 0:
            raise ValueError("cannot charge negative CPU time")
        self.charger(category).add(amount)

    @property
    def total_busy_ever(self) -> float:
        """Busy seconds since the start of the run, all categories.

        A monotonic clock of "work done by the machine" (the cache
        model measures other threads' progress with it).  Commits any
        deferred coalesced-stint charges first, so mid-stint reads see
        exactly what the sliced schedule would have accumulated.
        """
        if self._co_sources:
            self.co_sync()
        return self._busy_ever

    @property
    def busy_by_category(self) -> Dict[str, float]:
        """Busy seconds per category since the start of the run.

        A read view (a fresh ``defaultdict(float)``, so missing
        categories read as 0.0 like the original storage did); mutate
        through :meth:`charge` / :meth:`charger`.
        """
        if self._co_sources:
            self.co_sync()
        view: Dict[str, float] = defaultdict(float)
        for ch in self._order:
            view[ch.category] = ch.value
        return view

    # -- coalesced-stint commit protocol ---------------------------------

    def co_register(self, source: Any) -> None:
        """Register a coalesced-stint cursor.

        *source* must expose ``sim`` (for ``now``), ``next_t`` /
        ``prev_t`` (time of its next uncommitted slice boundary and of
        the boundary before it), ``exhausted``, and
        ``commit_next(acct)`` advancing one boundary.
        """
        self._co_reg += 1
        source.reg = self._co_reg
        self._co_sources.append(source)

    def co_sync(self) -> None:
        """Commit every deferred slice boundary with ``t <= now``.

        Boundaries across concurrent cursors merge in
        ``(t, prev_t, reg)`` order: time first; ties (structurally
        aligned stints that started the same instant with equal slice
        patterns) resolve by scheduling time then registration order,
        which matches the sliced schedule's event-sequence order.
        """
        sources = self._co_sources
        if not sources:
            return
        now = sources[0].sim.now
        if len(sources) == 1:
            src = sources[0]
            while not src.exhausted and src.next_t <= now:
                src.commit_next(self)
            if src.exhausted:
                self._co_sources = []
            return
        while True:
            best = None
            best_key = None
            for src in sources:
                if src.exhausted or src.next_t > now:
                    continue
                key = (src.next_t, src.prev_t, src.reg)
                if best is None or key < best_key:
                    best = src
                    best_key = key
            if best is None:
                break
            best.commit_next(self)
        if any(src.exhausted for src in sources):
            self._co_sources = [s for s in sources if not s.exhausted]

    # -- windows ---------------------------------------------------------

    def mark_window_start(self, now: float) -> None:
        """Freeze warm-up totals; subsequent queries subtract them."""
        if self._co_sources:
            self.co_sync()
        self.window_start = now
        self._warmup_by_category = {ch.category: ch.value
                                    for ch in self._order}

    def windowed(self) -> Dict[str, float]:
        """Busy seconds per category inside the measurement window."""
        if self._co_sources:
            self.co_sync()
        warmup = self._warmup_by_category
        return {
            ch.category: ch.value - warmup.get(ch.category, 0.0)
            for ch in self._order
        }

    def total_busy(self) -> float:
        return sum(self.windowed().values())

    def utilization(self, now: float, cores: int) -> float:
        """Fraction of core-time busy over the measurement window."""
        elapsed = now - self.window_start
        if elapsed <= 0:
            return 0.0
        return self.total_busy() / (elapsed * cores)

    def category_share(self, category: str) -> float:
        """Share of *busy* CPU spent in *category* (paper's perf rows)."""
        total = self.total_busy()
        if total <= 0:
            return 0.0
        return self.windowed().get(category, 0.0) / total


class Metrics:
    """Shared sink for every measurement a simulation produces."""

    def __init__(self, latency_sketch: bool = False) -> None:
        self._lazy: Dict[str, float] = defaultdict(float)
        self._handles: Dict[str, Counter] = {}
        self._warmup_counters: Dict[str, float] = {}
        self.latencies: Dict[str, LatencyRecorder] = {}
        self.series: Dict[str, TimeSeries] = {}
        self.cpu = CpuAccounting()
        self.window_start = 0.0
        #: When True, new recorders use the P-squared sketch mode.
        self.latency_sketch = latency_sketch

    # -- counters -------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The interned :class:`Counter` handle for *name*.

        Any value accumulated through :meth:`add` before the handle was
        created migrates into the handle, so interning never loses or
        duplicates counts.
        """
        handle = self._handles.get(name)
        if handle is None:
            handle = Counter(name, self._lazy.pop(name, 0.0))
            self._handles[name] = handle
        return handle

    def add(self, name: str, amount: float = 1.0) -> None:
        handle = self._handles.get(name)
        if handle is not None:
            handle.value += amount
        else:
            self._lazy[name] += amount

    @property
    def counters(self) -> Dict[str, float]:
        """Merged name → value view over lazy counters and handles.

        Handle names appear as soon as :meth:`counter` interns them
        (at 0.0 before the first bump), lazy names on first
        :meth:`add`.  Read-only: a fresh dict per access.
        """
        view = dict(self._lazy)
        for name, handle in self._handles.items():
            view[name] = handle.value
        return view

    def count(self, name: str) -> float:
        """Counter value within the measurement window."""
        return self.raw_count(name) - self._warmup_counters.get(name, 0.0)

    def raw_count(self, name: str) -> float:
        handle = self._handles.get(name)
        if handle is not None:
            return handle.value
        return self._lazy.get(name, 0.0)

    # -- latencies / series ----------------------------------------------

    def latency(self, name: str) -> LatencyRecorder:
        recorder = self.latencies.get(name)
        if recorder is None:
            recorder = LatencyRecorder(sketch=self.latency_sketch)
            recorder.start_at = self.window_start
            self.latencies[name] = recorder
        return recorder

    def timeseries(self, name: str) -> TimeSeries:
        series = self.series.get(name)
        if series is None:
            series = TimeSeries()
            self.series[name] = series
        return series

    # -- windowing --------------------------------------------------------

    def mark_window_start(self, now: float) -> None:
        """Called by the harness when warm-up ends."""
        self.window_start = now
        self._warmup_counters = self.counters
        self.cpu.mark_window_start(now)
        for recorder in self.latencies.values():
            recorder.start_at = now

    # -- derived ------------------------------------------------------------

    def rate(self, name: str, now: float) -> float:
        """Windowed counter divided by window length (events/second)."""
        elapsed = now - self.window_start
        if elapsed <= 0:
            return 0.0
        return self.count(name) / elapsed
