"""Measurement infrastructure: counters, CPU accounting, latency
recorders, and time series.

A single :class:`Metrics` object is shared by every component of a
simulation run.  Components record into namespaced keys
(``"selector.frontend.selects"``, ``"cpu.ctx_switches"``, ...); the
experiment harness reads them back to build the paper's tables.
"""

from __future__ import annotations

import bisect
import math
from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["Metrics", "LatencyRecorder", "TimeSeries", "CpuAccounting"]


class LatencyRecorder:
    """Collects latency samples and answers percentile queries.

    Samples recorded before ``start_at`` (the measurement-window start,
    set by the harness after warm-up) are discarded at query time.

    Queries share one sorted copy of the windowed samples, rebuilt only
    when a sample lands or ``start_at`` moves since the last query, so
    ``cdf_points`` over six percentiles costs one sort instead of six
    and ``record`` stays a bare ``list.append``.
    """

    __slots__ = ("_samples", "start_at", "_cache", "_cache_len",
                 "_cache_start")

    def __init__(self) -> None:
        self._samples: List[Tuple[float, float]] = []
        self.start_at = 0.0
        self._cache: Optional[List[float]] = None
        self._cache_len = -1
        self._cache_start = 0.0

    def record(self, now: float, value: float) -> None:
        """Record *value* observed at simulated time *now*."""
        self._samples.append((now, value))

    def _window_sorted(self) -> List[float]:
        """Sorted windowed values; cached until the inputs change."""
        n = len(self._samples)
        if (self._cache is not None and self._cache_len == n
                and self._cache_start == self.start_at):
            return self._cache
        start = self.start_at
        values = sorted(v for (t, v) in self._samples if t >= start)
        self._cache = values
        self._cache_len = n
        self._cache_start = start
        return values

    def __len__(self) -> int:
        return len(self._window_sorted())

    @property
    def raw_count(self) -> int:
        """All samples ever recorded, including warm-up."""
        return len(self._samples)

    def percentile(self, q: float) -> float:
        """The *q*-th percentile (0..100) using linear interpolation."""
        values = self._window_sorted()
        if not values:
            return math.nan
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile out of range: {q}")
        if len(values) == 1:
            return values[0]
        rank = (q / 100.0) * (len(values) - 1)
        low = int(math.floor(rank))
        high = min(low + 1, len(values) - 1)
        frac = rank - low
        # This form is exact when neighbours are equal, keeping the
        # percentile function monotone under float rounding.
        return values[low] + frac * (values[high] - values[low])

    def mean(self) -> float:
        """Arithmetic mean of windowed samples (NaN when empty)."""
        values = self._window_sorted()
        if not values:
            return math.nan
        return sum(values) / len(values)

    def maximum(self) -> float:
        values = self._window_sorted()
        return values[-1] if values else math.nan

    def cdf_points(self, percentiles: Iterable[float]) -> List[Tuple[float, float]]:
        """(percentile, value) pairs — one row per requested percentile."""
        return [(q, self.percentile(q)) for q in percentiles]


class TimeSeries:
    """Append-only (time, value) series, e.g. running-thread counts."""

    __slots__ = ("_times", "_values")

    def __init__(self) -> None:
        self._times: List[float] = []
        self._values: List[float] = []

    def append(self, now: float, value: float) -> None:
        if self._times and now < self._times[-1]:
            raise ValueError("time series must be appended in time order")
        self._times.append(now)
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._times)

    def items(self) -> List[Tuple[float, float]]:
        return list(zip(self._times, self._values))

    def window(self, start: float, end: float) -> List[Tuple[float, float]]:
        """Samples with start <= t < end."""
        lo = bisect.bisect_left(self._times, start)
        hi = bisect.bisect_left(self._times, end)
        return list(zip(self._times[lo:hi], self._values[lo:hi]))

    def mean(self, start: float = 0.0, end: float = math.inf) -> float:
        pairs = self.window(start, end)
        if not pairs:
            return math.nan
        return sum(v for (_t, v) in pairs) / len(pairs)


class CpuAccounting:
    """Tracks busy time per CPU-work category.

    Categories mirror the paper's perf breakdown: ``app`` (useful work),
    ``lock`` (futex), ``thread_init``, ``select``, ``syscall`` (send/recv),
    ``ctx_switch``.  ``window_start`` is set by the harness after
    warm-up so utilisation reflects only the measurement window.
    """

    __slots__ = ("busy_by_category", "window_start", "_warmup_by_category",
                 "total_busy_ever")

    def __init__(self) -> None:
        self.busy_by_category: Dict[str, float] = defaultdict(float)
        self._warmup_by_category: Dict[str, float] = {}
        self.window_start = 0.0
        #: Running total of all busy time ever charged (cheap monotonic
        #: clock of "work done by the machine", used by the cache model).
        self.total_busy_ever = 0.0

    def charge(self, category: str, amount: float) -> None:
        if amount < 0:
            raise ValueError("cannot charge negative CPU time")
        self.busy_by_category[category] += amount
        self.total_busy_ever += amount

    def mark_window_start(self, now: float) -> None:
        """Freeze warm-up totals; subsequent queries subtract them."""
        self.window_start = now
        self._warmup_by_category = dict(self.busy_by_category)

    def windowed(self) -> Dict[str, float]:
        """Busy seconds per category inside the measurement window."""
        return {
            cat: total - self._warmup_by_category.get(cat, 0.0)
            for cat, total in self.busy_by_category.items()
        }

    def total_busy(self) -> float:
        return sum(self.windowed().values())

    def utilization(self, now: float, cores: int) -> float:
        """Fraction of core-time busy over the measurement window."""
        elapsed = now - self.window_start
        if elapsed <= 0:
            return 0.0
        return self.total_busy() / (elapsed * cores)

    def category_share(self, category: str) -> float:
        """Share of *busy* CPU spent in *category* (paper's perf rows)."""
        total = self.total_busy()
        if total <= 0:
            return 0.0
        return self.windowed().get(category, 0.0) / total


class Metrics:
    """Shared sink for every measurement a simulation produces."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = defaultdict(float)
        self._warmup_counters: Dict[str, float] = {}
        self.latencies: Dict[str, LatencyRecorder] = {}
        self.series: Dict[str, TimeSeries] = {}
        self.cpu = CpuAccounting()
        self.window_start = 0.0

    # -- counters -------------------------------------------------------

    def add(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] += amount

    def count(self, name: str) -> float:
        """Counter value within the measurement window."""
        return self.counters.get(name, 0.0) - self._warmup_counters.get(name, 0.0)

    def raw_count(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    # -- latencies / series ----------------------------------------------

    def latency(self, name: str) -> LatencyRecorder:
        recorder = self.latencies.get(name)
        if recorder is None:
            recorder = LatencyRecorder()
            recorder.start_at = self.window_start
            self.latencies[name] = recorder
        return recorder

    def timeseries(self, name: str) -> TimeSeries:
        series = self.series.get(name)
        if series is None:
            series = TimeSeries()
            self.series[name] = series
        return series

    # -- windowing --------------------------------------------------------

    def mark_window_start(self, now: float) -> None:
        """Called by the harness when warm-up ends."""
        self.window_start = now
        self._warmup_counters = dict(self.counters)
        self.cpu.mark_window_start(now)
        for recorder in self.latencies.values():
            recorder.start_at = now

    # -- derived ------------------------------------------------------------

    def rate(self, name: str, now: float) -> float:
        """Windowed counter divided by window length (events/second)."""
        elapsed = now - self.window_start
        if elapsed <= 0:
            return 0.0
        return self.count(name) / elapsed
