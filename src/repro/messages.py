"""Message types exchanged between clients, servers, and datastores.

These are plain dataclasses; "serialisation" in the simulation is the
``wire_size`` each message reports.  Keeping every message type in one
module gives the drivers, the workload generators, and the datastore a
single shared vocabulary with no import cycles.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "HttpRequest",
    "HttpResponse",
    "Query",
    "QueryResponse",
    "request_ids",
]

#: Global request-id source (reset per simulation is unnecessary:
#: uniqueness is all that matters).
request_ids = itertools.count(1)


def _with_slots(cls):
    """Rebuild a dataclass with ``__slots__`` (3.9-compatible).

    ``@dataclass(slots=True)`` needs Python 3.10; this repo supports
    3.9.  Slots must be present at class creation, so the class is
    rebuilt with a ``__slots__`` tuple naming every field.  Field
    defaults stored as class attributes are dropped (they would shadow
    the slot descriptors); ``__init__`` keeps them alive through its
    ``__defaults__``, and ``default_factory`` fields never create class
    attributes in the first place.
    """
    slots = tuple(f.name for f in fields(cls))
    namespace = dict(cls.__dict__)
    namespace.pop("__dict__", None)
    namespace.pop("__weakref__", None)
    for name in slots:
        namespace.pop(name, None)
    namespace["__slots__"] = slots
    rebuilt = type(cls)(cls.__name__, cls.__bases__, namespace)
    rebuilt.__qualname__ = cls.__qualname__
    rebuilt.__module__ = cls.__module__
    return rebuilt


@_with_slots
@dataclass
class HttpRequest:
    """An upstream client request that triggers fanout queries.

    ``fanout`` is the number of shards queried; ``response_size`` is the
    per-fanout-query payload the datastore returns (the paper's
    0.1 kB / 1 kB / 20 kB classes); ``klass`` tags the request class for
    per-class latency reporting (``"Lfan"`` / ``"Sfan"``).
    """

    fanout: int
    response_size: int
    klass: str = "default"
    request_id: int = field(default_factory=lambda: next(request_ids))
    #: Set by the client at send time (simulated seconds).
    sent_at: float = 0.0
    #: Opaque client context used to route the response back.
    reply_to: Any = None
    #: Optional explicit keys, one per fanout query (dataset-driven runs).
    keys: Optional[List[Any]] = None
    #: :class:`repro.trace.Trace` when this request was head-sampled
    #: (None otherwise; never affects behaviour).
    trace: Any = None

    @property
    def wire_size(self) -> int:
        return 300


@_with_slots
@dataclass
class HttpResponse:
    """The assembled reply to an :class:`HttpRequest`."""

    request_id: int
    payload_size: int
    klass: str = "default"
    completed_at: float = 0.0
    #: Trace of the originating request (propagated by the driver so
    #: the response's wire leg and inbox wait attribute correctly).
    trace: Any = None

    @property
    def wire_size(self) -> int:
        return self.payload_size + 160


@_with_slots
@dataclass
class Query:
    """One fanout query to a datastore shard."""

    request_id: int
    shard_id: int
    op: str  # "get" | "scan"
    response_size: int
    key: Any = None
    #: Index of this query within its request's fanout set.
    seq: int = 0
    #: Opaque driver context used to correlate the response.
    context: Any = None
    #: Resilience attempt tag: 0 = original send, 1..N = retries,
    #: :data:`repro.faults.HEDGE_ATTEMPT` = hedged duplicate.  Echoed
    #: back on the response so the policy can attribute wins.
    attempt: int = 0
    #: Stamped when this attempt hits the wire; echoed on the response
    #: so latency-aware replica routing (the ``ewma`` policy) can
    #: observe per-replica response latency without a side table.
    sent_at: float = 0.0

    @property
    def wire_size(self) -> int:
        return 180


@_with_slots
@dataclass
class QueryResponse:
    """A shard's reply to a :class:`Query`."""

    request_id: int
    shard_id: int
    payload_size: int
    seq: int = 0
    context: Any = None
    #: Records returned (populated only for materialised datasets).
    records: Optional[List[Tuple[Any, Dict[str, bytes]]]] = None
    #: Shard-side service time, for diagnostics.
    service_time: float = 0.0
    #: Echo of the query's resilience attempt tag.
    attempt: int = 0
    #: Replica index of the shard server that produced this response
    #: (0 = primary); lets the replica selector retire the in-flight
    #: count it charged at send time.
    replica: int = 0
    #: True for the synthetic response a
    #: :class:`~repro.faults.ResiliencePolicy` delivers when a sub-query
    #: exhausts its retries; carries an empty payload.
    failed: bool = False
    #: Echo of the winning query attempt's wire stamp (see
    #: :attr:`Query.sent_at`).
    sent_at: float = 0.0

    @property
    def wire_size(self) -> int:
        return self.payload_size + 90
