"""Record layout for the key-value datastore.

Mirrors the paper's YCSB geometry: each record is a primary key plus a
set of named fields; the YCSB dataset uses ten 100-byte fields per 1 kB
record.  Records can be materialised (real bytes, for tests and
examples) or described (sizes only, for large simulated datasets).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["RecordSchema", "materialize_record", "record_size"]


@dataclass(frozen=True)
class RecordSchema:
    """Describes the shape of every record in a dataset."""

    field_count: int
    field_size: int
    key_size: int = 24

    @property
    def record_bytes(self) -> int:
        """Total bytes of one record's values (excluding the key)."""
        return self.field_count * self.field_size

    def field_names(self) -> Tuple[str, ...]:
        return tuple(f"field{i}" for i in range(self.field_count))


def _deterministic_bytes(seed: str, length: int) -> bytes:
    """Deterministic pseudo-random bytes derived from *seed*."""
    out = bytearray()
    counter = 0
    while len(out) < length:
        out.extend(hashlib.sha256(f"{seed}:{counter}".encode()).digest())
        counter += 1
    return bytes(out[:length])


def materialize_record(schema: RecordSchema, key: str) -> Dict[str, bytes]:
    """Build the real field map for *key* (deterministic content)."""
    return {
        name: _deterministic_bytes(f"{key}/{name}", schema.field_size)
        for name in schema.field_names()
    }


def record_size(schema: RecordSchema) -> int:
    """On-the-wire size of one record."""
    return schema.record_bytes + schema.key_size
