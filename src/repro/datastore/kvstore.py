"""The shard-local storage engine and its service-time model.

Two concerns live here:

1. A real (small-scale) in-memory ordered KV store supporting ``put``,
   ``get``, ``delete``, and ``scan`` — used by tests and the examples
   that materialise data.
2. The *service-time model* used by the simulation: how long a shard
   takes to answer a point lookup or a scan of a given size.  The paper
   reports 0.12 ms average datastore response time on 1 GB shards and
   0.18 ms on 10 GB shards, with enough per-query variability that
   fanout queries "may not respond at the same time" — the observation
   motivating DoubleFaceAD's scheduler.  We model service time as a
   lognormal around an operation-dependent mean, scaled by a per-shard
   speed factor (heterogeneous shard servers) and a shard-size factor.
"""

from __future__ import annotations

import bisect
import random
from typing import Dict, List, Optional, Tuple

from ..sim.params import KB, CostParams
from ..sim.rng import lognormal_from_mean_cv

__all__ = ["KVStore", "ServiceTimeModel"]


class KVStore:
    """A sorted in-memory key-value store (one shard's data).

    Keys are kept in sorted order so ``scan`` has range semantics like
    the paper's datastores (MongoDB/HBase range scans produce the large
    responses).
    """

    def __init__(self) -> None:
        self._data: Dict[str, bytes] = {}
        self._sorted_keys: List[str] = []

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def put(self, key: str, value: bytes) -> None:
        """Insert or overwrite *key*."""
        if key not in self._data:
            bisect.insort(self._sorted_keys, key)
        self._data[key] = value

    def get(self, key: str) -> Optional[bytes]:
        """Point lookup; None when absent."""
        return self._data.get(key)

    def delete(self, key: str) -> bool:
        """Remove *key*; True if it existed."""
        if key not in self._data:
            return False
        del self._data[key]
        index = bisect.bisect_left(self._sorted_keys, key)
        del self._sorted_keys[index]
        return True

    def scan(self, start_key: str, limit: int) -> List[Tuple[str, bytes]]:
        """Up to *limit* records with key >= *start_key*, in key order."""
        if limit < 0:
            raise ValueError("scan limit must be >= 0")
        index = bisect.bisect_left(self._sorted_keys, start_key)
        keys = self._sorted_keys[index:index + limit]
        return [(k, self._data[k]) for k in keys]

    def size_bytes(self) -> int:
        """Total stored value bytes."""
        return sum(len(v) for v in self._data.values())


class ServiceTimeModel:
    """Draws per-query service times for one shard.

    ``speed_factor`` models shard heterogeneity (drawn once per shard
    from :attr:`CostParams.shard_speed_spread`); ``size_factor`` is 1.0
    for the paper's default 1 GB shards and
    :attr:`CostParams.large_shard_factor` for the 10 GB variant.
    """

    def __init__(self, params: CostParams, rng: random.Random,
                 speed_factor: float = 1.0, size_factor: float = 1.0) -> None:
        if speed_factor <= 0 or size_factor <= 0:
            raise ValueError("factors must be positive")
        self.params = params
        self.rng = rng
        self.speed_factor = speed_factor
        self.size_factor = size_factor

    def mean_for(self, op: str, response_bytes: int) -> float:
        """Mean service time for *op* returning *response_bytes*."""
        base = self.params.point_lookup_mean
        if op == "scan":
            base += self.params.scan_per_kb * (response_bytes / KB)
        elif op != "get":
            raise ValueError(f"unknown datastore op {op!r}")
        return base * self.speed_factor * self.size_factor

    def draw(self, op: str, response_bytes: int,
             multiplier: float = 1.0) -> float:
        """One stochastic service-time sample.

        ``multiplier`` scales the distribution's mean; fault injection
        uses it for slowdown windows (multiplier > 1 while the shard is
        degraded).  At the default 1.0 the draw sequence is identical to
        a fault-free run.
        """
        mean = self.mean_for(op, response_bytes)
        if multiplier != 1.0:
            mean *= multiplier
        return lognormal_from_mean_cv(self.rng, mean, self.params.service_cv)
