"""Assembly of a sharded datastore cluster.

The paper's downstream tier is 20 datastore nodes holding one shard
each.  :class:`DatastoreCluster` builds the shard servers with
heterogeneous speed factors, routes keys via the hash partitioner, and
hands out connections (local-LAN latency, or remote latency for the
Amazon-DynamoDB-style cluster).
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Tuple

from ..sim.kernel import Simulator
from ..sim.metrics import Metrics
from ..sim.network import Connection
from ..sim.params import CostParams
from ..sim.rng import RngStreams
from .records import RecordSchema
from .server import ShardServer
from .sharding import HashPartitioner, ReplicaSelector, rack_of

__all__ = ["DatastoreCluster"]


class DatastoreCluster:
    """A set of shard servers plus routing metadata."""

    def __init__(self, sim: Simulator, metrics: Metrics, params: CostParams,
                 rng_streams: RngStreams, n_shards: int = 20,
                 large_shards: bool = False, remote: bool = False,
                 schema: Optional[RecordSchema] = None,
                 name: str = "datastore", replicas_per_shard: int = 1,
                 racks: int = 1, replica_policy: str = "primary",
                 faults: Optional[Any] = None,
                 cross_rack_extra_latency: float = 0.0,
                 app_rack: int = 0) -> None:
        if n_shards < 1:
            raise ValueError("cluster needs at least one shard")
        if replicas_per_shard < 1:
            raise ValueError("need at least one replica per shard")
        if racks < 1:
            raise ValueError("cluster needs at least one rack")
        if cross_rack_extra_latency < 0:
            raise ValueError("cross_rack_extra_latency must be >= 0")
        if not 0 <= app_rack < racks:
            raise ValueError(f"app_rack {app_rack} outside 0..{racks - 1}")
        self.sim = sim
        self.metrics = metrics
        self.params = params
        self.name = name
        self.remote = remote
        self.replicas_per_shard = replicas_per_shard
        #: Rack count for correlated-fault topology; replica *r* of
        #: shard *s* lives in rack :func:`rack_of(s, r, racks)`.
        self.racks = racks
        #: Rack the application server sits in: connections to replicas
        #: placed in *other* racks pay ``cross_rack_extra_latency`` of
        #: additional one-way latency (spine-crossing RTT asymmetry).
        #: The 0.0 default keeps every connection identical to the
        #: pre-knob behaviour.
        self.app_rack = app_rack
        self.cross_rack_extra_latency = cross_rack_extra_latency
        #: Optional :class:`~repro.faults.FaultSchedule` threaded into
        #: every shard server and app<->shard connection.
        self.faults = faults
        #: Shared :class:`~repro.datastore.sharding.ReplicaSelector`
        #: consulted by every driver's initial sends and by the
        #: resilience policy's retries/hedges.  Only the ``random`` and
        #: ``ewma`` policies draw randomness, from their own named
        #: stream, so ``primary`` (the default) leaves every existing
        #: stream's draw sequence untouched.
        self.replica_selector = ReplicaSelector(
            replica_policy, replicas_per_shard,
            rng=(rng_streams.stream(f"{name}.replica_select")
                 if replica_policy in ("random", "ewma") else None))
        self.partitioner = HashPartitioner(n_shards)
        size_factor = params.large_shard_factor if large_shards else 1.0
        spread_lo, spread_hi = params.shard_speed_spread
        speed_rng = rng_streams.stream(f"{name}.shard_speeds")
        # Replica speed factors come from a separate stream so the
        # primaries' speeds (and every downstream draw) stay identical
        # to a replicas_per_shard=1 run.
        replica_speed_rng = (rng_streams.stream(f"{name}.replica_speeds")
                             if replicas_per_shard > 1 else None)
        #: ``replica_sets[shard][r]`` — every replica server; replica 0
        #: is the primary, also exposed as ``shards[shard]``.
        self.replica_sets: List[List[ShardServer]] = []
        self.shards: List[ShardServer] = []
        for shard_id in range(n_shards):
            speed = speed_rng.uniform(spread_lo, spread_hi)
            replicas: List[ShardServer] = []
            for r in range(replicas_per_shard):
                if r == 0:
                    rng_name = f"{name}.shard.{shard_id}.service"
                    rspeed = speed
                    rname = f"{name}-{shard_id}"
                else:
                    rng_name = f"{name}.shard.{shard_id}.replica{r}.service"
                    rspeed = replica_speed_rng.uniform(spread_lo, spread_hi)
                    rname = f"{name}-{shard_id}-r{r}"
                replicas.append(ShardServer(
                    sim, metrics, params, shard_id,
                    rng_streams.stream(rng_name),
                    speed_factor=rspeed, size_factor=size_factor,
                    schema=schema, name=rname, replica=r,
                    rack=rack_of(shard_id, r, racks), faults=faults))
            self.replica_sets.append(replicas)
            self.shards.append(replicas[0])

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def connection_latency(self, shard_id: int = -1,
                           replica: int = 0) -> float:
        """One-way latency from the app server to one cluster server.

        With the default arguments (or ``cross_rack_extra_latency`` at
        its 0.0 default) this is the flat cluster-wide latency; given a
        placement it adds the cross-rack penalty when the target
        replica's rack differs from :attr:`app_rack`.
        """
        latency = self.params.net_latency
        if self.remote:
            latency += self.params.remote_extra_latency
        if (self.cross_rack_extra_latency > 0.0 and shard_id >= 0
                and rack_of(shard_id, replica % self.replicas_per_shard,
                            self.racks) != self.app_rack):
            latency += self.cross_rack_extra_latency
        return latency

    def connect_shard(self, shard_id: int, replica: int = 0) -> Connection:
        """Open a connection to *shard_id*; caller attaches side ``a``.

        ``replica`` picks a server in the shard's replica set (modulo
        the set size, so failover rotation never indexes out of range).
        """
        server = self.replica_sets[shard_id][replica % self.replicas_per_shard]
        return server.accept(
            latency=self.connection_latency(shard_id, replica))

    def connect_all(self) -> List[Connection]:
        """One connection per shard, in shard order."""
        return [self.connect_shard(i) for i in range(self.n_shards)]

    def load(self, items: Iterable[Tuple[str, bytes]]) -> int:
        """Materialise *items* across shards by hash; returns count."""
        count = 0
        for key, value in items:
            shard_id = self.partitioner.shard_for(key)
            # Full replication within the shard's replica set, so a
            # failover target can serve the same keys.
            for server in self.replica_sets[shard_id]:
                server.store.put(key, value)
            count += 1
        return count

    def total_records(self) -> int:
        return sum(len(shard.store) for shard in self.shards)
