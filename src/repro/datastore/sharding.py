"""Key partitioning across datastore shards.

The paper shards the YCSB dataset across 20 datastore nodes and varies
the fanout factor from 1 to 20 by querying that many shards per
request.  This module provides the hash partitioner, the fanout
shard-selection policy, the rack-placement rule, and the replica
selector that routes every send — initial, retry, or hedge — to a
replica within the target shard's replica set.
"""

from __future__ import annotations

import hashlib
import random
from collections import defaultdict
from typing import Dict, List, Optional, Sequence

__all__ = ["HashPartitioner", "pick_fanout_shards", "failover_replica",
           "rack_of", "ReplicaSelector", "REPLICA_POLICIES"]


class HashPartitioner:
    """Stable hash partitioning of keys onto ``n_shards`` shards."""

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise ValueError("need at least one shard")
        self.n_shards = n_shards

    def shard_for(self, key) -> int:
        """Shard index owning *key* (stable across processes/runs)."""
        digest = hashlib.md5(str(key).encode()).digest()
        return int.from_bytes(digest[:8], "big") % self.n_shards

    def split(self, keys: Sequence) -> List[List]:
        """Partition *keys* into per-shard lists."""
        buckets: List[List] = [[] for _ in range(self.n_shards)]
        for key in keys:
            buckets[self.shard_for(key)].append(key)
        return buckets


def pick_fanout_shards(rng: random.Random, n_shards: int, fanout: int) -> List[int]:
    """Choose *fanout* distinct shards for one request.

    Matches the paper's setup: a request with fanout factor F issues one
    sub-query to each of F distinct shards.  ``fanout`` must not exceed
    the shard count.
    """
    if fanout < 1:
        raise ValueError("fanout must be >= 1")
    if fanout > n_shards:
        raise ValueError(f"fanout {fanout} exceeds shard count {n_shards}")
    if fanout == n_shards:
        return list(range(n_shards))
    return rng.sample(range(n_shards), fanout)


def failover_replica(attempt: int, replicas_per_shard: int) -> int:
    """Replica index for the *attempt*-th resend of a sub-query.

    Rotates through the replica set — attempt 1 goes to replica 1,
    attempt ``replicas_per_shard`` wraps back to the primary — so
    repeated retries do not camp on a single backup.  With one replica
    everything stays on the primary.
    """
    if attempt < 0:
        raise ValueError("attempt must be >= 0")
    if replicas_per_shard < 1:
        raise ValueError("need at least one replica per shard")
    return attempt % replicas_per_shard


def rack_of(shard_id: int, replica: int, racks: int) -> int:
    """Rack holding *replica* of *shard_id* under round-robin placement.

    Consecutive replicas of a shard land in consecutive racks, so a
    shard's replica set spans ``min(replicas, racks)`` racks — the
    standard anti-affinity rule that lets failover escape a rack-wide
    fault *unless* more racks are degraded than the set spans.
    """
    if racks < 1:
        raise ValueError("need at least one rack")
    return (shard_id + replica) % racks


#: Initial-send routing policies :class:`ReplicaSelector` understands.
REPLICA_POLICIES = ("primary", "round_robin", "least_outstanding", "random",
                    "ewma")


class ReplicaSelector:
    """Routes sends to replicas within each shard's replica set.

    One selector per run, shared by every component that sends
    sub-queries: the servers' initial sends call :meth:`pick`, and the
    :class:`~repro.faults.ResiliencePolicy` calls :meth:`alternate` for
    retry/hedge targets, so concurrent hedges rotate across the replica
    set instead of stampeding one backup.

    Policies (``policy``):

    - ``primary`` — every initial send goes to replica 0 (the
      pre-replica-routing behaviour; zero bookkeeping, zero RNG).
    - ``round_robin`` — a per-shard cursor cycles the replica set.
    - ``least_outstanding`` — the replica with the fewest in-flight
      sub-queries wins (ties break toward the lowest index).  In-flight
      counts increment at pick time and decrement per real response, so
      a replica that stops answering — crashed, or drowning in a slow
      rack — accumulates outstanding work and sheds new load.
    - ``random`` — seeded uniform choice (``rng`` required).
    - ``ewma`` — the replica with the lowest exponentially-weighted
      moving average of *observed* wire-to-wire response latency wins
      (C3/Finagle-style latency-aware routing).  Each response's
      latency is ``arrival - sent_at`` — the request's wire stamp
      echoed back by the shard — so queueing behind a slow or faulted
      replica raises its score and sheds new load.  Unsampled replicas
      score 0.0 and are explored first; ties break by seeded uniform
      choice (``rng`` required).

    Determinism: the only randomness is the injected ``rng`` (a named
    :class:`~repro.sim.rng.RngStreams` stream); cursor, outstanding,
    and EWMA state advance in simulator event order, which is
    single-threaded.
    """

    #: Smoothing factor for the ``ewma`` policy: weight of the newest
    #: observation (0.2 remembers roughly the last five responses).
    EWMA_ALPHA = 0.2

    __slots__ = ("policy", "replicas", "_rng", "_cursor", "_alt_cursor",
                 "_outstanding", "_track", "_ewma")

    def __init__(self, policy: str = "primary", replicas_per_shard: int = 1,
                 rng: Optional[random.Random] = None) -> None:
        if policy not in REPLICA_POLICIES:
            raise ValueError(f"unknown replica policy {policy!r}; "
                             f"valid: {', '.join(REPLICA_POLICIES)}")
        if replicas_per_shard < 1:
            raise ValueError("need at least one replica per shard")
        if policy in ("random", "ewma") and rng is None:
            raise ValueError(f"{policy} replica policy needs an rng")
        self.policy = policy
        self.replicas = replicas_per_shard
        self._rng = rng
        self._cursor: Dict[int, int] = defaultdict(int)
        self._alt_cursor: Dict[int, int] = defaultdict(int)
        self._track = (policy == "least_outstanding"
                       and replicas_per_shard > 1)
        self._outstanding: Dict[int, List[int]] = defaultdict(
            lambda: [0] * replicas_per_shard)
        #: Per-(shard, replica) latency EWMA; 0.0 = not yet sampled.
        self._ewma: Dict[int, List[float]] = defaultdict(
            lambda: [0.0] * replicas_per_shard)

    def pick(self, shard_id: int) -> int:
        """Replica for an initial send to *shard_id* (counts it as
        in-flight under ``least_outstanding``)."""
        if self.replicas == 1 or self.policy == "primary":
            return 0
        if self.policy == "round_robin":
            cursor = self._cursor[shard_id]
            self._cursor[shard_id] = cursor + 1
            return cursor % self.replicas
        if self.policy == "random":
            return self._rng.randrange(self.replicas)
        if self.policy == "ewma":
            return self._best_ewma(shard_id, avoid=-1)
        counts = self._outstanding[shard_id]
        replica = counts.index(min(counts))
        counts[replica] += 1
        return replica

    def alternate(self, shard_id: int, avoid: int) -> int:
        """Replica for a retry/hedge of a sub-query last sent to
        *avoid*.

        With one replica there is nowhere else to go.  Otherwise the
        choice is among the *other* replicas: ``least_outstanding``
        picks the least-loaded one; every other policy rotates a shared
        per-shard cursor, so concurrent hedges on the same shard spread
        across the set instead of piling onto one backup.
        """
        if self.replicas == 1:
            return 0
        if self._track:
            counts = self._outstanding[shard_id]
            replica = min((r for r in range(self.replicas) if r != avoid),
                          key=lambda r: (counts[r], r))
            counts[replica] += 1
            return replica
        if self.policy == "ewma":
            return self._best_ewma(shard_id, avoid=avoid)
        others = [r for r in range(self.replicas) if r != avoid]
        cursor = self._alt_cursor[shard_id]
        self._alt_cursor[shard_id] = cursor + 1
        return others[cursor % len(others)]

    def _best_ewma(self, shard_id: int, avoid: int) -> int:
        """Lowest-EWMA replica of *shard_id*, excluding *avoid* (pass
        -1 to consider the full set); ties break by seeded choice."""
        scores = self._ewma[shard_id]
        candidates = [r for r in range(self.replicas) if r != avoid]
        best = min(scores[r] for r in candidates)
        ties = [r for r in candidates if scores[r] == best]
        if len(ties) == 1:
            return ties[0]
        return ties[self._rng.randrange(len(ties))]

    def note_response(self, response, now: float = 0.0) -> None:
        """Account one shard response arriving at the app server at
        simulated time *now* (no-op unless the policy tracks state).

        Synthesised failures (``failed=True``) never left a server, so
        they don't feed either tracker — a replica that swallows
        queries keeps its in-flight count (``least_outstanding``) or
        stale score (``ewma``) and sheds future load via deadline
        pressure instead.
        """
        if response.failed:
            return
        if self._track:
            counts = self._outstanding[response.shard_id]
            replica = response.replica
            if counts[replica] > 0:
                counts[replica] -= 1
            return
        if self.policy != "ewma":
            return
        sent_at = getattr(response, "sent_at", 0.0)
        if sent_at <= 0.0 or now <= sent_at:
            return
        latency = now - sent_at
        scores = self._ewma[response.shard_id]
        prev = scores[response.replica]
        if prev == 0.0:
            scores[response.replica] = latency
        else:
            scores[response.replica] = prev + self.EWMA_ALPHA * (
                latency - prev)

    def latency_score(self, shard_id: int) -> List[float]:
        """EWMA latency per replica of *shard_id* (diagnostics)."""
        return list(self._ewma[shard_id])

    def outstanding(self, shard_id: int) -> List[int]:
        """In-flight counts per replica of *shard_id* (diagnostics)."""
        return list(self._outstanding[shard_id])
