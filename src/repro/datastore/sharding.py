"""Key partitioning across datastore shards.

The paper shards the YCSB dataset across 20 datastore nodes and varies
the fanout factor from 1 to 20 by querying that many shards per
request.  This module provides the hash partitioner plus the fanout
shard-selection policy.
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Sequence

__all__ = ["HashPartitioner", "pick_fanout_shards", "failover_replica"]


class HashPartitioner:
    """Stable hash partitioning of keys onto ``n_shards`` shards."""

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise ValueError("need at least one shard")
        self.n_shards = n_shards

    def shard_for(self, key) -> int:
        """Shard index owning *key* (stable across processes/runs)."""
        digest = hashlib.md5(str(key).encode()).digest()
        return int.from_bytes(digest[:8], "big") % self.n_shards

    def split(self, keys: Sequence) -> List[List]:
        """Partition *keys* into per-shard lists."""
        buckets: List[List] = [[] for _ in range(self.n_shards)]
        for key in keys:
            buckets[self.shard_for(key)].append(key)
        return buckets


def pick_fanout_shards(rng: random.Random, n_shards: int, fanout: int) -> List[int]:
    """Choose *fanout* distinct shards for one request.

    Matches the paper's setup: a request with fanout factor F issues one
    sub-query to each of F distinct shards.  ``fanout`` must not exceed
    the shard count.
    """
    if fanout < 1:
        raise ValueError("fanout must be >= 1")
    if fanout > n_shards:
        raise ValueError(f"fanout {fanout} exceeds shard count {n_shards}")
    if fanout == n_shards:
        return list(range(n_shards))
    return rng.sample(range(n_shards), fanout)


def failover_replica(attempt: int, replicas_per_shard: int) -> int:
    """Replica index for the *attempt*-th resend of a sub-query.

    Rotates through the replica set — attempt 1 goes to replica 1,
    attempt ``replicas_per_shard`` wraps back to the primary — so
    repeated retries do not camp on a single backup.  With one replica
    everything stays on the primary.
    """
    if attempt < 0:
        raise ValueError("attempt must be >= 0")
    if replicas_per_shard < 1:
        raise ValueError("need at least one replica per shard")
    return attempt % replicas_per_shard
