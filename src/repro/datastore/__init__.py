"""Distributed datastore substrate: records, sharding, storage engine,
shard servers, and cluster assembly."""

from .cluster import DatastoreCluster
from .kvstore import KVStore, ServiceTimeModel
from .records import RecordSchema, materialize_record, record_size
from .server import ShardServer
from .sharding import HashPartitioner, pick_fanout_shards

__all__ = [
    "DatastoreCluster", "KVStore", "ServiceTimeModel", "RecordSchema",
    "materialize_record", "record_size", "ShardServer", "HashPartitioner",
    "pick_fanout_shards",
]
