"""A simulated datastore shard server.

Each shard runs on its own node (as in the paper's testbed, where every
datastore got a dedicated machine), so shard-side CPU is *not* charged
to the application server's cores; a shard is modelled as a G/G/c
queueing station whose service times come from
:class:`~repro.datastore.kvstore.ServiceTimeModel`.

If the shard holds materialised data (small datasets in tests and
examples), responses carry the actual records; otherwise only the
payload size travels, which is all the drivers observe.
"""

from __future__ import annotations

import random
from typing import Any, List, Optional, Tuple

from ..messages import Query, QueryResponse
from ..sim.kernel import Simulator
from ..sim.metrics import Metrics
from ..sim.network import Connection, Endpoint
from ..sim.params import CostParams
from ..sim.resources import Queue
from ..trace import K_SERVER_QUEUE, K_SERVICE
from .kvstore import KVStore, ServiceTimeModel
from .records import RecordSchema, record_size

__all__ = ["ShardServer"]


class _TaggingEndpoint(Endpoint):
    """Delivers (connection, message) pairs so replies can be routed."""

    __slots__ = ("queue", "conn")

    def __init__(self, queue: Queue, conn: Connection) -> None:
        self.queue = queue
        self.conn = conn

    def deliver(self, message: Any) -> None:
        sim = self.conn.sim
        tracer = sim.tracer
        if tracer is not None and tracer.trace_of(message) is not None:
            tracer.stamp_arrival(message, sim.now)
        self.queue.put((self.conn, message))


class ShardServer:
    """One datastore shard: accepts queries, serves them, replies."""

    def __init__(self, sim: Simulator, metrics: Metrics, params: CostParams,
                 shard_id: int, rng: random.Random,
                 speed_factor: float = 1.0, size_factor: float = 1.0,
                 schema: Optional[RecordSchema] = None,
                 name: str = "", replica: int = 0, rack: int = 0,
                 faults: Optional[Any] = None) -> None:
        self.sim = sim
        self.metrics = metrics
        self.params = params
        self.shard_id = shard_id
        #: Replica index within the shard's replica set (0 = primary).
        self.replica = replica
        #: Rack this server is placed in (correlated-fault topology).
        self.rack = rack
        #: Optional :class:`~repro.faults.FaultSchedule` consulted per
        #: query for crash windows and slowdown multipliers.
        self.faults = faults
        self.name = name or f"shard-{shard_id}"
        self.store = KVStore()
        self.schema = schema
        self.service_model = ServiceTimeModel(
            params, rng, speed_factor=speed_factor, size_factor=size_factor)
        self._inbox: Queue = Queue(sim)
        self.queries_served = 0
        # Interned per-query instruments (fault counters stay lazy so
        # healthy runs never report zero-valued fault keys).
        self._queries = metrics.counter("datastore.queries")
        self._shard_queries = metrics.counter(
            f"datastore.shard.{shard_id}.queries")
        self._service_latency = metrics.latency("datastore.service_time")
        for i in range(params.shard_concurrency):
            sim.process(self._serve_loop(), name=f"{self.name}-srv{i}")

    @property
    def inbox_depth(self) -> int:
        """Queries queued in the inbox, not yet picked up by a serve
        loop (telemetry diagnostics; reading it never perturbs the
        queue)."""
        return len(self._inbox)

    # -- connectivity -------------------------------------------------------

    def accept(self, latency: Optional[float] = None) -> Connection:
        """Create a connection whose side ``a`` the caller will attach.

        The shard listens on side ``b``.
        """
        conn = Connection(self.sim, self.metrics, self.params, latency=latency,
                          faults=self.faults)
        conn.attach("b", _TaggingEndpoint(self._inbox, conn))
        return conn

    # -- data ---------------------------------------------------------------

    def load(self, items: List[Tuple[str, bytes]]) -> None:
        """Materialise records into the shard's local store."""
        for key, value in items:
            self.store.put(key, value)

    # -- serving -----------------------------------------------------------------

    def _lookup_records(self, query: Query):
        """Fetch real records when the store is materialised."""
        if query.key is None or len(self.store) == 0:
            return None
        if query.op == "get":
            value = self.store.get(str(query.key))
            return [(query.key, value)] if value is not None else []
        limit = 1
        if self.schema is not None:
            per_record = max(1, record_size(self.schema))
            limit = max(1, query.response_size // per_record)
        return self.store.scan(str(query.key), limit)

    def _serve_loop(self):
        while True:
            conn, query = yield self._inbox.get()
            if not isinstance(query, Query):
                raise TypeError(f"shard received non-query {query!r}")
            faults = self.faults
            if faults is not None and faults.is_down(
                    self.shard_id, self.replica, self.sim.now):
                # Crashed: the query vanishes, like a dead TCP peer.
                # Recovery is the driver's problem (deadline + retry).
                self.metrics.add("faults.crash_dropped_queries")
                if self.sim.tracer is not None:
                    self.sim.tracer.pop_arrival(query)
                continue
            multiplier = 1.0
            if faults is not None:
                multiplier = faults.service_multiplier(
                    self.shard_id, self.replica, self.sim.now)
                if multiplier != 1.0:
                    self.metrics.add("faults.slowed_queries")
                    if faults.rack_active(self.shard_id, self.replica,
                                          self.sim.now):
                        self.metrics.add("faults.rack_slowed_queries")
            service_time = self.service_model.draw(
                query.op, query.response_size, multiplier=multiplier)
            tracer = self.sim.tracer
            trace = tracer.trace_of(query) if tracer is not None else None
            if trace is not None:
                service_start = self.sim.now
                arrived = tracer.pop_arrival(query)
                if arrived is not None:
                    trace.add(K_SERVER_QUEUE, arrived, service_start,
                              seq=query.seq, attempt=query.attempt,
                              shard=self.shard_id, replica=self.replica)
            yield self.sim.timeout(service_time)
            if trace is not None:
                trace.add(K_SERVICE, service_start, self.sim.now,
                          seq=query.seq, attempt=query.attempt,
                          shard=self.shard_id, replica=self.replica)
            self.queries_served += 1
            self._queries.add()
            self._shard_queries.add()
            self._service_latency.record(self.sim.now, service_time)
            response = QueryResponse(
                request_id=query.request_id,
                shard_id=self.shard_id,
                payload_size=query.response_size,
                seq=query.seq,
                context=query.context,
                records=self._lookup_records(query),
                service_time=service_time,
                attempt=query.attempt,
                replica=self.replica,
                sent_at=query.sent_at,
            )
            # thread=None send never yields nor charges: go straight to
            # the wire, skipping the generator frame per response.
            conn.transmit(response, response.wire_size, "a")
