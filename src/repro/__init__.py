"""DoubleFaceAD reproduction: asynchronous datastore driver
architectures for fanout queries on distributed datastores.

Reproduces Zhang et al., *"DoubleFaceAD: A New Datastore Driver
Architecture to Optimize Fanout Query Performance"* (ACM/IFIP
Middleware 2020) as a deterministic discrete-event simulation.

Quick start::

    from repro import (Simulator, Metrics, CostParams, RngStreams,
                       DatastoreCluster, DoubleFaceServer,
                       ClosedLoopWorkload, uniform_profile)

    sim, metrics, params = Simulator(), Metrics(), CostParams()
    rng = RngStreams(seed=42)
    cluster = DatastoreCluster(sim, metrics, params, rng, n_shards=20)
    server = DoubleFaceServer(sim, metrics, params, cluster, rng)
    workload = ClosedLoopWorkload(sim, metrics, params, server,
                                  uniform_profile(fanout=5,
                                                  response_size=100),
                                  concurrency=50, rng_streams=rng)
    server.start()
    workload.start()
    sim.run(until=2.0)
    print(metrics.rate("client.completed", sim.now), "req/s")

or drive a whole configured experiment::

    from repro.experiments import ExperimentConfig, run_experiment
    result = run_experiment(ExperimentConfig(server="doubleface"))

Package layout:

- :mod:`repro.sim` — the discrete-event substrate (CPU, threads,
  selectors, network, metrics).
- :mod:`repro.datastore` — the sharded key-value datastore.
- :mod:`repro.data` — YCSB and DBLP dataset generators.
- :mod:`repro.drivers` — the four baseline server architectures.
- :mod:`repro.core` — DoubleFaceAD and its fanout-aware scheduler.
- :mod:`repro.workload` — closed-loop (JMeter) and open-loop (RUBBoS)
  generators.
- :mod:`repro.experiments` — the harness regenerating every paper
  exhibit.
"""

from .core import (BackendHandler, BatchScheduler, DoubleFaceServer,
                   EventHandler, FanoutAwareScheduler, FifoScheduler,
                   FrontendHandler, Reactor, TaskHandler)
from .data import DBLPDataset, YCSBDataset
from .datastore import (DatastoreCluster, HashPartitioner, KVStore,
                        RecordSchema, ServiceTimeModel, ShardServer,
                        pick_fanout_shards)
from .drivers import (AioBackendServer, AppServer, NettyBackendServer,
                      RequestState, SyncConnectionPool, ThreadBasedServer,
                      Type1AsyncServer)
from .messages import HttpRequest, HttpResponse, Query, QueryResponse
from .sim import (KB, CostParams, Cpu, Metrics, RngStreams, Simulator,
                  SimThread)
from .workload import (ClosedLoopWorkload, PoissonWorkload, RequestClass,
                       WorkloadProfile, lfan_sfan_profile, uniform_profile)

__version__ = "1.0.0"

__all__ = [
    "BackendHandler", "BatchScheduler", "DoubleFaceServer", "EventHandler",
    "FanoutAwareScheduler", "FifoScheduler", "FrontendHandler", "Reactor",
    "TaskHandler", "DBLPDataset", "YCSBDataset", "DatastoreCluster",
    "HashPartitioner", "KVStore", "RecordSchema", "ServiceTimeModel",
    "ShardServer", "pick_fanout_shards", "AioBackendServer", "AppServer",
    "NettyBackendServer", "RequestState", "SyncConnectionPool",
    "ThreadBasedServer", "Type1AsyncServer", "HttpRequest", "HttpResponse",
    "Query", "QueryResponse", "KB", "CostParams", "Cpu", "Metrics",
    "RngStreams", "Simulator", "SimThread", "ClosedLoopWorkload",
    "PoissonWorkload", "RequestClass", "WorkloadProfile",
    "lfan_sfan_profile", "uniform_profile", "__version__",
]
