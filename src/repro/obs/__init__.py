"""repro.obs — phase-annotated live telemetry for simulated runs.

Where :mod:`repro.trace` records *per-request* span trees, this
package watches the *system* over simulated time:

- :mod:`repro.obs.timeline` — a :class:`TelemetryTicker` on the
  simulation clock samples gauges (per-shard queue depths, hedge and
  retry rates, replica routing state, CPU run-queue depth) into one
  columnar :class:`~repro.sim.metrics.GaugeBoard` that rides the
  shared-memory result transport;
- :mod:`repro.obs.prometheus` — renders a finished run's end state
  (latency quantiles, counters, last gauge values, workload phases)
  in the Prometheus text exposition format.

Everything is observation-only and seed-deterministic: the ticker
draws no randomness and mutates nothing, so an observed run's measured
results are float-identical to the same run unobserved, and the
sampled series are a pure function of the seed across ``--jobs`` and
transport settings.
"""

from .prometheus import prometheus_snapshot, render_prometheus, \
    write_prometheus
from .timeline import DEFAULT_OBS_PERIOD, TelemetryTicker

__all__ = ["TelemetryTicker", "DEFAULT_OBS_PERIOD",
           "prometheus_snapshot", "render_prometheus", "write_prometheus"]
