"""Prometheus text-exposition snapshot of a finished run.

A simulated run has no live scrape endpoint, so the exporter renders
the run's *end state* — throughput, latency quantiles, CPU, counters,
the last sampled value of every telemetry gauge, and phase durations —
as one ``# HELP``/``# TYPE``-annotated text block, the format every
Prometheus-compatible stack ingests.  The snapshot is a pure function
of the result (and hence of the seed), so it is safe to diff across
runs and machines.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Tuple

__all__ = ["prometheus_snapshot", "render_prometheus", "write_prometheus"]

_PREFIX = "repro"


def _escape(value: str) -> str:
    """Escape a label value per the exposition format."""
    return (value.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _labels(pairs: List[Tuple[str, str]]) -> str:
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    return repr(float(value))


class _Families:
    """Accumulates samples grouped into metric families."""

    def __init__(self) -> None:
        self._order: List[str] = []
        self._families: Dict[str, Tuple[str, str, List[str]]] = {}

    def add(self, name: str, kind: str, help_text: str, value: float,
            labels: List[Tuple[str, str]]) -> None:
        full = f"{_PREFIX}_{name}"
        if full not in self._families:
            self._order.append(full)
            self._families[full] = (kind, help_text, [])
        self._families[full][2].append(
            f"{full}{_labels(labels)} {_fmt(value)}")

    def render(self) -> str:
        lines: List[str] = []
        for full in self._order:
            kind, help_text, samples = self._families[full]
            lines.append(f"# HELP {full} {help_text}")
            lines.append(f"# TYPE {full} {kind}")
            lines.extend(samples)
        return "\n".join(lines) + "\n"


def prometheus_snapshot(result, label: str = "") -> str:
    """Render one :class:`ExperimentResult` as Prometheus text.

    ``label`` (e.g. the exhibit name) is attached to every sample as
    the ``run`` label alongside the config's own label.
    """
    base: List[Tuple[str, str]] = [("config", result.config.label)]
    if label:
        base.insert(0, ("run", label))
    fam = _Families()
    fam.add("throughput_rps", "gauge",
            "Completed requests per second over the measurement window.",
            result.throughput, base)
    fam.add("completed_requests_total", "counter",
            "Requests completed in the measurement window.",
            result.completed, base)
    fam.add("window_seconds", "gauge",
            "Measurement window length [simulated s].",
            result.window, base)
    fam.add("response_time_seconds", "summary",
            "Client response-time quantiles over the window.",
            result.mean_rt, base + [("quantile", "mean")])
    for q in sorted(result.percentiles):
        fam.add("response_time_seconds", "summary",
                "Client response-time quantiles over the window.",
                result.percentiles[q],
                base + [("quantile", _fmt(q / 100.0))])
    for klass in sorted(result.class_percentiles):
        for q in sorted(result.class_percentiles[klass]):
            fam.add("class_response_time_seconds", "summary",
                    "Per-request-class response-time quantiles.",
                    result.class_percentiles[klass][q],
                    base + [("request_class", klass),
                            ("quantile", _fmt(q / 100.0))])
    fam.add("cpu_utilization_ratio", "gauge",
            "App-server CPU utilisation over the window (0..1).",
            result.cpu_utilization, base)
    for share in sorted(result.cpu_shares):
        fam.add("cpu_share_ratio", "gauge",
                "Share of busy CPU per cost category.",
                result.cpu_shares[share], base + [("category", share)])
    fam.add("ctx_switches_per_second", "gauge",
            "Context switches per second on the app CPU.",
            result.ctx_switches_per_sec, base)
    fam.add("selects_per_second", "gauge",
            "select() calls per second across all selectors.",
            result.selects_per_sec, base)
    for name in sorted(result.fault_counters):
        fam.add("fault_events_total", "counter",
                "Fault and resilience counters over the window.",
                result.fault_counters[name], base + [("event", name)])
    for shard in sorted(result.hedge_delays):
        fam.add("hedge_delay_seconds", "gauge",
                "Learned per-shard hedge delay.",
                result.hedge_delays[shard],
                base + [("shard", str(shard))])
    if result.obs_names and len(result.obs_times):
        fam.add("telemetry_samples_total", "counter",
                "Telemetry ticker samples taken over the run.",
                float(len(result.obs_times)), base)
        for name, column in zip(result.obs_names, result.obs_values):
            fam.add("telemetry_gauge", "gauge",
                    "Last sampled value of each telemetry gauge.",
                    column[-1] if len(column) else 0.0,
                    base + [("gauge", name)])
    for name, start, end in result.phases:
        fam.add("phase_seconds", "gauge",
                "Workload phase durations (warmup, measure, faults).",
                end - start, base + [("phase", name)])
    return fam.render()


def render_prometheus(snapshots: Dict[str, str]) -> str:
    """Concatenate per-run snapshots (sorted by key) into one page."""
    return "".join(snapshots[key] for key in sorted(snapshots))


def write_prometheus(path: str, snapshots: Dict[str, Any]) -> None:
    """Write snapshots to ``path``, creating parent directories."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_prometheus(snapshots))
