"""The simulated-time telemetry ticker.

A :class:`TelemetryTicker` fires every ``period`` simulated seconds
(via :meth:`Simulator.call_every`) and samples live gauges into one
:class:`~repro.sim.metrics.GaugeBoard` — a shared time column plus one
``array('d')`` value column per gauge, ready for the columnar result
transport.

Determinism contract (the same one :mod:`repro.trace` keeps):

- the tick callback **reads** state and appends to its private board;
  it draws no randomness and mutates nothing the simulation consults,
  so measured results are float-identical with the ticker on or off
  (asserted by the observability integration tests);
- tick times and every sampled value are pure functions of the seed,
  so the series are identical across ``--jobs 1`` / ``--jobs N`` and
  shm / pickle transports.

Gauge vocabulary (columns appear in this order):

- ``cpu.runnable`` — app-CPU run-queue depth (runnable + running);
- ``retry.rate`` / ``hedge.rate`` — resilience retries/hedges fired
  per second over the last tick (windowed counter deltas);
- ``queued.total`` and ``queued.shard<i>`` — queries sitting in shard
  inboxes (all replicas), total and per shard;
- ``outstanding.shard<i>`` — the replica selector's in-flight counts
  (summed over replicas), only under the ``least_outstanding`` policy;
- ``ewma.shard<i>.r<j>`` — per-replica EWMA latency estimates, only
  under the ``ewma`` policy.
"""

from __future__ import annotations

from typing import List

from ..sim.kernel import Simulator
from ..sim.metrics import GaugeBoard, Metrics

__all__ = ["TelemetryTicker", "DEFAULT_OBS_PERIOD"]

#: Default sampling period [simulated s]: 10 ms — ~100 samples over a
#: quick exhibit window, a few hundred floats per gauge.
DEFAULT_OBS_PERIOD = 0.01


class TelemetryTicker:
    """Observation-only gauge sampler on the simulation clock.

    Built from a running server (any of the five architectures — the
    gauges only touch the shared cluster/CPU/selector surfaces) and
    started once; the tick chain ends with the run.
    """

    def __init__(self, sim: Simulator, metrics: Metrics, server,
                 period: float = DEFAULT_OBS_PERIOD) -> None:
        if period <= 0.0:
            raise ValueError(f"obs period must be positive, got {period}")
        self.sim = sim
        self.metrics = metrics
        self.period = period
        self._cpu = server.cpu
        cluster = server.cluster
        self._replica_sets = cluster.replica_sets
        selector = cluster.replica_selector
        self._selector = selector
        n_shards = cluster.n_shards
        names: List[str] = ["cpu.runnable", "retry.rate", "hedge.rate",
                            "queued.total"]
        names += [f"queued.shard{i}" for i in range(n_shards)]
        self._sample_outstanding = (selector.policy == "least_outstanding"
                                    and selector.replicas > 1)
        if self._sample_outstanding:
            names += [f"outstanding.shard{i}" for i in range(n_shards)]
        self._sample_ewma = (selector.policy == "ewma"
                             and selector.replicas > 1)
        if self._sample_ewma:
            names += [f"ewma.shard{i}.r{j}"
                      for i in range(n_shards)
                      for j in range(selector.replicas)]
        #: The sampled series; the runner copies its columns onto the
        #: result after the measurement window.
        self.board = GaugeBoard(names)
        self._last_retries = 0.0
        self._last_hedges = 0.0

    def start(self) -> None:
        """Begin ticking at ``now + period``."""
        self.sim.call_every(self.period, self._tick)

    def _tick(self, now: float) -> None:
        metrics = self.metrics
        retries = metrics.raw_count("resilience.retries")
        hedges = metrics.raw_count("resilience.hedges")
        per_sec = 1.0 / self.period
        values: List[float] = [
            float(self._cpu.runnable_count),
            (retries - self._last_retries) * per_sec,
            (hedges - self._last_hedges) * per_sec,
        ]
        self._last_retries = retries
        self._last_hedges = hedges
        depths = [float(sum(replica.inbox_depth for replica in replicas))
                  for replicas in self._replica_sets]
        values.append(sum(depths))
        values.extend(depths)
        if self._sample_outstanding:
            selector = self._selector
            values.extend(float(sum(selector.outstanding(i)))
                          for i in range(len(depths)))
        if self._sample_ewma:
            selector = self._selector
            for i in range(len(depths)):
                values.extend(selector.latency_score(i))
        self.board.append(now, values)
