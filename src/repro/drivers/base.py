"""Shared machinery of every application-server + driver architecture.

All five servers (thread-based, Type-1, Type-2a Netty, Type-2b AIO,
DoubleFaceAD) share the same request lifecycle:

1. read + parse an upstream :class:`~repro.messages.HttpRequest`
   (``http_parse_cost`` + any ``request_cpu`` business logic);
2. issue one :class:`~repro.messages.Query` per fanout target
   (``fanout_send_cost`` + write syscall each);
3. process each :class:`~repro.messages.QueryResponse`
   (``response_process_cost``, proportional to payload);
4. when all fanout responses are in, assemble + send the
   :class:`~repro.messages.HttpResponse` (``assemble_cost``).

What differs between architectures — and what the paper studies — is
*which thread does what*.  Subclasses implement :meth:`accept_client`
(wiring an upstream connection into their event machinery) and the
processing flow; this base centralises query construction, request
bookkeeping, and completion accounting so the architectures differ only
in their concurrency structure.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from ..datastore.cluster import DatastoreCluster
from ..datastore.sharding import pick_fanout_shards
from ..messages import HttpRequest, HttpResponse, Query
from ..sim.cpu import Cpu
from ..sim.kernel import Simulator
from ..sim.metrics import Metrics
from ..sim.params import CostParams
from ..sim.rng import RngStreams, lognormal_from_mean_cv
from ..sim.network import Connection
from ..sim.threads import Mutex, SimThread, locked_section
from ..trace import K_ASSEMBLE, K_PARSE, K_PROCESS

__all__ = ["AppServer", "RequestState", "default_op_rule"]


def default_op_rule(response_size: int) -> str:
    """The paper's rule: responses larger than one record (1 kB) come
    from scan queries, smaller ones from point lookups."""
    return "scan" if response_size > 1024 else "get"


class RequestState:
    """Lifecycle bookkeeping for one in-flight upstream request."""

    __slots__ = ("request", "conn", "remaining", "fanout", "total_bytes",
                 "arrived_at", "first_response_at", "session", "won",
                 "failed", "trace")

    def __init__(self, request: HttpRequest, conn: Connection, now: float) -> None:
        self.request = request
        self.conn = conn
        self.remaining = request.fanout
        self.fanout = request.fanout
        self.total_bytes = 0
        self.arrived_at = now
        self.first_response_at: Optional[float] = None
        #: The request's :class:`repro.trace.Trace` when sampled (the
        #: ``Query``/``QueryResponse`` messages reach it via their
        #: ``context``; a posted completed state carries it directly).
        self.trace = request.trace
        #: Per-sub-query trackers (seq -> tracker) installed by
        #: :meth:`repro.faults.ResiliencePolicy.attach`; None when no
        #: resilience policy is active.
        self.session = None
        #: Seqs whose winning response was absorbed (tracker already
        #: dropped from ``session``); lets late hedge losers still be
        #: recognised as stale.
        self.won = None
        #: Sub-queries that exhausted their retries; the request
        #: completed with a degraded (partial) payload.
        self.failed = 0

    @property
    def complete(self) -> bool:
        return self.remaining == 0

    def absorb(self, payload_size: int, now: float,
               response: Any = None) -> bool:
        """Account one fanout response; True when this was the last.

        When the request is traced and the caller passes the winning
        *response*, the completing sub-query is stamped on the trace as
        the critical path's join point.
        """
        if self.remaining <= 0:
            raise RuntimeError(
                f"request {self.request.request_id} received more responses "
                "than fanout queries")
        if self.first_response_at is None:
            self.first_response_at = now
        self.remaining -= 1
        self.total_bytes += payload_size
        done = self.remaining == 0
        if done and self.trace is not None and response is not None:
            self.trace.note_win(response)
        return done


class AppServer:
    """Base class for every server architecture under study."""

    #: Human-readable architecture name, set by subclasses.
    kind = "abstract"

    def __init__(self, sim: Simulator, metrics: Metrics, params: CostParams,
                 cluster: DatastoreCluster, rng_streams: RngStreams,
                 op_rule: Callable[[int], str] = default_op_rule,
                 name: str = "", resilience: Optional[Any] = None) -> None:
        self.sim = sim
        self.metrics = metrics
        self.params = params
        self.cluster = cluster
        self.name = name or self.kind
        self.op_rule = op_rule
        #: Optional shared :class:`~repro.faults.ResiliencePolicy`.
        #: None (the default) keeps every code path identical to the
        #: pre-resilience behaviour.
        self.resilience = resilience
        #: Lazily opened replica connections for non-primary initial
        #: routing, keyed by (primary connection id, shard, replica);
        #: empty for the default ``primary`` policy.
        self._replica_conns: dict = {}
        self.cpu = Cpu(sim, metrics, params, name="app")
        self._fanout_rng = rng_streams.stream(f"{self.name}.fanout")
        self._request_cpu_rng = rng_streams.stream(f"{self.name}.request_cpu")
        self.requests_completed = 0
        # Interned per-request instruments.  The degraded counter and
        # other fault-path names stay lazy: healthy runs must not grow
        # zero-valued fault keys.  Per-class counters are interned on
        # first use so their relative creation order is unchanged.
        self._requests_counter = metrics.counter("server.requests")
        self._fanout_responses = metrics.counter("server.fanout_responses")
        self._completed = metrics.counter("server.completed")
        self._completed_by_klass: dict = {}
        self._time_in_server = metrics.latency("server.time_in_server")
        #: Shared buffer-allocator lock.  Architectures whose worker
        #: threads are transient or unbounded (thread-based, Type-1,
        #: Type-2b) allocate from a process-wide pool and contend here;
        #: reactor architectures (Type-2a, DoubleFaceAD) use per-thread
        #: arenas and never touch it.
        self.allocator = Mutex(sim, self.cpu, metrics, params,
                               name=f"{self.name}.allocator")

    # -- to be provided by subclasses ------------------------------------

    def accept_client(self) -> Connection:
        """Open an upstream connection; the client attaches side ``a``."""
        raise NotImplementedError

    def start(self) -> None:
        """Launch the server's threads (called once by the harness)."""
        raise NotImplementedError

    def selectors(self):
        """All selectors this server owns (for Table 2/3 reporting)."""
        return []

    # -- shared helpers -----------------------------------------------------

    def new_request_state(self, request: HttpRequest,
                          conn: Connection) -> RequestState:
        """A :class:`RequestState`, wired to the resilience policy."""
        state = RequestState(request, conn, self.sim.now)
        if self.resilience is not None:
            self.resilience.attach(state)
        return state

    def arm_subquery(self, state: RequestState, query: Query,
                     conn: Connection, replica: int = 0) -> None:
        """Register a just-sent sub-query with the resilience policy
        (deadline + hedge watchdogs).  No-op without a policy."""
        if query.sent_at == 0.0:
            # Wire stamp for latency-aware replica routing; the send
            # path (Connection.send / ResiliencePolicy._transmit)
            # normally stamps it, this is the fallback for tests that
            # arm without sending.
            query.sent_at = self.sim.now
        if self.resilience is not None:
            self.resilience.arm(state, query, conn, replica)

    def route_initial(self, query: Query,
                      primary_conn: Connection) -> "tuple[Connection, int]":
        """Pick the replica for *query*'s initial send.

        Returns ``(conn, replica)``.  Under the default ``primary``
        policy this is ``(primary_conn, 0)`` with zero overhead; other
        policies lazily open one connection per (primary conn, shard,
        replica) that shares the primary connection's receive endpoint,
        so replica responses surface exactly where primary responses do.
        """
        replica = self.cluster.replica_selector.pick(query.shard_id)
        if replica == 0:
            return primary_conn, 0
        key = (primary_conn.cid, query.shard_id, replica)
        conn = self._replica_conns.get(key)
        if conn is None:
            conn = self.cluster.connect_shard(query.shard_id, replica)
            conn.attach("a", primary_conn.endpoint_a)
            self._replica_conns[key] = conn
        return conn, replica

    def response_is_fresh(self, state: RequestState, response: Any) -> bool:
        """True when *response* is the winning response for its
        sub-query.  Stale duplicates (hedge losers, post-retry or
        post-failure stragglers) must be dropped before any processing
        CPU is charged."""
        # Retire the in-flight count the replica selector charged at
        # send time — for every real response, winner or straggler —
        # and (ewma policy) feed it the observed response latency.
        self.cluster.replica_selector.note_response(response, self.sim.now)
        if self.resilience is None:
            return True
        return self.resilience.on_response(state, response)

    def build_queries(self, request: HttpRequest, context: Any) -> List[Query]:
        """One query per fanout target, on distinct shards."""
        shard_ids = pick_fanout_shards(
            self._fanout_rng, self.cluster.n_shards, request.fanout)
        op = self.op_rule(request.response_size)
        keys = request.keys
        queries = []
        for seq, shard_id in enumerate(shard_ids):
            key = keys[seq] if keys is not None and seq < len(keys) else None
            queries.append(Query(
                request_id=request.request_id,
                shard_id=shard_id,
                op=op,
                response_size=request.response_size,
                key=key,
                seq=seq,
                context=context,
            ))
        return queries

    def parse_request(self, thread: SimThread, request: HttpRequest):
        """Coroutine: charge request parsing + business-logic CPU.

        The business-logic cost is drawn from a lognormal with mean
        :attr:`CostParams.request_cpu` and CV
        :attr:`CostParams.request_cpu_cv` (deterministic when the CV
        is 0), modelling heterogeneous page weights.
        """
        self._requests_counter.add()
        cost = self.params.http_parse_cost
        if self.params.request_cpu > 0:
            if self.params.request_cpu_cv > 0:
                cost += lognormal_from_mean_cv(
                    self._request_cpu_rng, self.params.request_cpu,
                    self.params.request_cpu_cv)
            else:
                cost += self.params.request_cpu
        trace = request.trace if self.sim.tracer is not None else None
        if trace is None:
            yield thread.execute(cost, "app")
        else:
            started = self.sim.now
            yield thread.execute(cost, "app")
            trace.add(K_PARSE, started, self.sim.now, work=cost)

    def process_response_cpu(self, thread: SimThread, payload_size: int,
                             response: Any = None):
        """Coroutine: charge fanout-response processing CPU.

        Callers pass the *response* so sampled requests get a
        ``process`` span tagged with the sub-query's seq/attempt (the
        critical-path analyzer needs the winning attempt's CPU span).
        """
        self._fanout_responses.add()
        cost = self.params.response_process_cost(payload_size)
        trace = None
        if self.sim.tracer is not None and response is not None:
            trace = self.sim.tracer.trace_of(response)
        if trace is None:
            yield thread.execute(cost, "app")
        else:
            started = self.sim.now
            yield thread.execute(cost, "app")
            trace.add(K_PROCESS, started, self.sim.now,
                      seq=response.seq, attempt=response.attempt,
                      work=cost, shard=response.shard_id,
                      replica=response.replica)

    def allocate_buffer(self, thread: SimThread, size: int):
        """Coroutine: allocate a response buffer from the *shared* pool
        (only called by non-reactor architectures).

        Small allocations come from thread-local caches and are free;
        only buffers past the TLAB threshold serialise on the shared
        allocator lock.
        """
        if size < self.params.alloc_tlab_threshold:
            return
        hold = (self.params.alloc_base_hold
                + self.params.alloc_per_kb_hold * (size / 1024.0))
        yield from locked_section(thread, self.allocator, hold, "app")

    def finish_request(self, thread: SimThread, state: RequestState):
        """Coroutine: assemble the reply and send it upstream."""
        cost = self.params.assemble_cost(state.total_bytes)
        trace = state.trace if self.sim.tracer is not None else None
        if trace is None:
            yield thread.execute(cost, "app")
        else:
            started = self.sim.now
            yield thread.execute(cost, "app")
            trace.add(K_ASSEMBLE, started, self.sim.now, work=cost)
        response = HttpResponse(
            request_id=state.request.request_id,
            payload_size=state.total_bytes,
            klass=state.request.klass,
            completed_at=self.sim.now,
            trace=state.trace,
        )
        self.requests_completed += 1
        self._completed.add()
        klass = state.request.klass
        by_klass = self._completed_by_klass.get(klass)
        if by_klass is None:
            by_klass = self.metrics.counter(f"server.completed.{klass}")
            self._completed_by_klass[klass] = by_klass
        by_klass.add()
        if state.failed:
            self.metrics.add("server.completed.degraded")
        self._time_in_server.record(
            self.sim.now, self.sim.now - state.arrived_at)
        yield from state.conn.send(thread, response, response.wire_size, to_side="a")
