"""Type-2b asynchronous driver: the AIO-based MongoDB backend.

Architecture of Figure 6 in the paper:

- a Netty-style **frontend reactor** thread handles upstream HTTP
  traffic and final assembly;
- fanout queries are written to downstream connections whose readiness
  is monitored by a **JVM-level reactor** thread (Java AIO);
- ready fanout responses are wrapped into tasks and processed by a
  JVM-level **on-demand worker pool** (spawn-as-needed, terminate when
  idle) — stage 5, the source of the unexpected multithreading
  overhead: with large responses (processing time proportional to
  payload) many workers run concurrently, paying lock contention on the
  task queue, thread-initiation CPU, and context switches (Table 1,
  Figure 7).

Completed requests are handed back to the frontend through its selector
wake-up path, as the real driver posts the completion callback to the
server's event loop.
"""

from __future__ import annotations

from typing import List, Optional

from ..messages import HttpRequest, QueryResponse
from ..sim.network import ChannelEndpoint, Connection
from ..sim.syscalls import Selector
from ..sim.threads import Mutex, OnDemandPool, SimThread, locked_section
from ..trace import K_PROCESS
from .base import AppServer, RequestState

__all__ = ["AioBackendServer"]


class AioBackendServer(AppServer):
    """Frontend reactor + JVM reactor + on-demand worker pool."""

    kind = "aio"

    def __init__(self, *args, pool_max: Optional[int] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.frontend_selector = Selector(
            self.sim, self.cpu, self.metrics, self.params,
            name=f"{self.name}.frontend")
        self.jvm_selector = Selector(
            self.sim, self.cpu, self.metrics, self.params,
            name=f"{self.name}.jvm")
        self.pool = OnDemandPool(
            self.sim, self.cpu, self.metrics, self.params,
            max_size=pool_max, name=f"{self.name}.jvmpool")
        self.frontend_thread = SimThread(self.cpu, name=f"{self.name}-frontend")
        self.jvm_thread = SimThread(self.cpu, name=f"{self.name}-jvm")
        self._downstream: List[Connection] = []
        #: Per-connection stream locks: concurrent pool workers decoding
        #: responses multiplexed on the same shard connection serialise
        #: here (a reactor design gets this serialisation for free).
        self._conn_locks: List[Mutex] = []

    def start(self) -> None:
        # One multiplexed connection per shard, monitored by the JVM
        # reactor (AIO registers the channels with the JVM's group).
        for shard_id in range(self.cluster.n_shards):
            conn = self.cluster.connect_shard(shard_id)
            channel = self.jvm_selector.open_channel("downstream", context=conn)
            conn.attach("a", ChannelEndpoint(channel))
            self._downstream.append(conn)
            self._conn_locks.append(Mutex(
                self.sim, self.cpu, self.metrics, self.params,
                name=f"{self.name}.conn{shard_id}"))
        self.sim.process(self._frontend_loop(), name=f"{self.name}-frontend")
        self.sim.process(self._jvm_loop(), name=f"{self.name}-jvm")

    def selectors(self):
        return [self.frontend_selector, self.jvm_selector]

    def accept_client(self) -> Connection:
        conn = Connection(self.sim, self.metrics, self.params)
        channel = self.frontend_selector.open_channel("upstream", context=conn)
        conn.attach("b", ChannelEndpoint(channel))
        return conn

    # -- frontend: upstream requests + final assembly ----------------------

    def _frontend_loop(self):
        thread = self.frontend_thread
        timeout = self.params.netty_select_timeout
        while True:
            batch = yield from self.frontend_selector.select(thread, timeout)
            for channel, message in batch:
                if channel.kind == "upstream":
                    yield from self._handle_request(thread, channel, message)
                elif channel.kind == "task":
                    # A completed request posted by a pool worker.
                    yield from self.finish_request(thread, message)
                else:
                    raise RuntimeError(f"unexpected event {channel.kind}")

    def _handle_request(self, thread: SimThread, channel, message) -> None:
        if not isinstance(message, HttpRequest):
            raise TypeError(f"unexpected upstream message: {message!r}")
        yield from self.parse_request(thread, message)
        state = self.new_request_state(message, channel.context)
        for query in self.build_queries(message, context=state):
            yield thread.execute(self.params.fanout_send_cost, "app")
            conn, replica = self.route_initial(
                query, self._downstream[query.shard_id])
            yield from conn.send(thread, query, query.wire_size, to_side="b")
            self.arm_subquery(state, query, conn, replica)

    # -- JVM reactor: wrap ready responses into pool tasks ---------------------

    def _jvm_loop(self):
        thread = self.jvm_thread
        while True:
            # AIO's group selector blocks until readiness (no poll loop).
            batch = yield from self.jvm_selector.select(thread, timeout=None)
            for _channel, message in batch:
                if not isinstance(message, QueryResponse):
                    raise TypeError(f"unexpected downstream message: {message!r}")
                if not self.response_is_fresh(message.context, message):
                    # Stale duplicate (hedge loser / late straggler):
                    # drop it before spawning a pool worker for it.
                    continue
                yield from self.pool.submit(thread, self._make_task(message))

    def _make_task(self, response: QueryResponse):
        def task(worker: SimThread):
            # Allocate the response buffer from the shared pool, then
            # read/decode from the multiplexed connection under its
            # stream lock; only the tail of the processing is lock-free.
            tracer = self.sim.tracer
            trace = tracer.trace_of(response) if tracer is not None else None
            started = self.sim.now
            yield from self.allocate_buffer(worker, response.payload_size)
            total = self.params.response_process_cost(response.payload_size)
            locked_part = total * self.params.decode_lock_fraction
            conn_lock = self._conn_locks[response.shard_id]
            yield from locked_section(worker, conn_lock, locked_part, "app")
            self._fanout_responses.add()
            yield worker.execute(total - locked_part, "app")
            if trace is not None:
                # Lock waits and preemption inside the span surface as
                # cpu_queue: (end - start) - work.
                trace.add(K_PROCESS, started, self.sim.now,
                          seq=response.seq, attempt=response.attempt,
                          work=total, shard=response.shard_id,
                          replica=response.replica)
            state: RequestState = response.context
            if state.absorb(response.payload_size, self.sim.now, response):
                yield from self.frontend_selector.post(worker, state)
        return task
