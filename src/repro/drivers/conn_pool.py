"""Blocking connection pool for synchronous-RPC drivers.

Thread-based and Type-1 asynchronous drivers communicate with each
shard over *exclusively checked-out* connections (one outstanding query
per connection), the classic sync-RPC pattern.  Checkout/checkin go
through a single pool mutex — the shared structure whose contention
perf attributes to "Locking (mutex)" in Table 1 when many worker
threads hammer it.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, List, Optional, Tuple

from ..datastore.cluster import DatastoreCluster
from ..messages import Query, QueryResponse
from ..sim.cpu import Cpu
from ..sim.kernel import Simulator
from ..sim.metrics import Metrics
from ..sim.network import Connection, InboxEndpoint
from ..sim.params import CostParams
from ..sim.threads import Mutex, SimThread, locked_section

__all__ = ["SyncConnectionPool"]


class SyncConnectionPool:
    """Per-shard free lists of blocking connections, one global lock."""

    def __init__(self, sim: Simulator, cpu: Cpu, metrics: Metrics,
                 params: CostParams, cluster: DatastoreCluster,
                 name: str = "connpool",
                 resilience: Optional[Any] = None) -> None:
        self.sim = sim
        self.cpu = cpu
        self.metrics = metrics
        self.params = params
        self.cluster = cluster
        self.name = name
        #: Optional shared :class:`~repro.faults.ResiliencePolicy`.
        self.resilience = resilience
        self.mutex = Mutex(sim, cpu, metrics, params, name=name)
        #: Free lists keyed by (shard, replica): a connection checked
        #: out for a replica only ever serves that replica, so the
        #: receive side stays a simple exclusive inbox.
        self._free: Dict[Tuple[int, int],
                         List[Tuple[Connection, InboxEndpoint]]] = (
            defaultdict(list))
        self.created = 0
        # Interned per-checkout counters (resilience.* names stay lazy).
        self._reused = metrics.counter(f"pool.{name}.reused")
        self._created = metrics.counter(f"pool.{name}.created")

    def checkout(self, thread: SimThread, shard_id: int, replica: int = 0):
        """Coroutine: obtain an exclusive (connection, inbox) pair to
        one replica of *shard_id* (0 = primary).

        Creates a new connection (paying one TCP-setup round trip) when
        the free list is empty — the pool grows to the high-water mark
        of concurrent queries per shard replica, like a real driver
        pool.
        """
        yield from locked_section(
            thread, self.mutex, self.params.mutex_hold_time, "app")
        free = self._free[shard_id, replica]
        if free:
            self._reused.add()
            return free.pop()
        conn = self.cluster.connect_shard(shard_id, replica)
        inbox = InboxEndpoint(self.sim, self.cpu, self.params)
        conn.attach("a", inbox)
        self.created += 1
        self._created.add()
        # TCP handshake: one round trip before the connection is usable.
        yield self.sim.timeout(2 * conn.latency)
        return conn, inbox

    def checkin(self, thread: SimThread, shard_id: int,
                pair: Tuple[Connection, InboxEndpoint],
                replica: int = 0):
        """Coroutine: return a pair to its (shard, replica) free list."""
        yield from locked_section(
            thread, self.mutex, self.params.mutex_hold_time, "app")
        self._free[shard_id, replica].append(pair)

    def sync_query(self, thread: SimThread, query: Query):
        """Coroutine: the full synchronous RPC — checkout, send, block
        for the response, checkin.  Returns the :class:`QueryResponse`.

        With a resilience policy attached, the send is supervised
        (deadline/retry/hedge watchdogs run off simulated timers while
        this thread stays blocked, exactly like a driver whose socket
        read has a timeout managed elsewhere), and the receive loop
        skips stale messages: hedge losers and post-retry stragglers
        left in the pooled connection's inbox by earlier checkouts.
        """
        selector = self.cluster.replica_selector
        replica = selector.pick(query.shard_id)
        pair = yield from self.checkout(thread, query.shard_id, replica)
        conn, inbox = pair
        yield thread.execute(self.params.fanout_send_cost, "app")
        yield from conn.send(thread, query, query.wire_size, to_side="b")
        if self.resilience is not None:
            self.resilience.arm(query.context, query, conn, replica)
        while True:
            response = yield from inbox.recv(thread)
            if not isinstance(response, QueryResponse):
                raise TypeError(
                    f"unexpected message on sync connection: {response!r}")
            # Retire the selector's in-flight charge for every real
            # response, stale or winning (and feed the ewma policy the
            # observed wire-to-wire latency).
            selector.note_response(response, self.sim.now)
            if (response.request_id != query.request_id
                    or response.seq != query.seq):
                # A straggler from a previous checkout of this pooled
                # connection; its sub-query was already won.
                self.metrics.add("resilience.stale_sync_responses")
                continue
            if (self.resilience is not None
                    and not self.resilience.on_response(query.context,
                                                        response)):
                continue
            break
        yield from self.checkin(thread, query.shard_id, pair, replica)
        return response
