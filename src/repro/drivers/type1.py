"""Type-1 asynchronous driver: async facade over a worker-thread pool.

This is the architecture of the DynamoDB and HBase "asynchronous"
drivers (Section 2.1, Table 4): the server's main (reactor) thread is
event-driven, but each asynchronous query API call is delegated to a
worker in a *pre-defined* thread pool, and each worker still performs
a synchronous RPC.  The result (Figure 4) is the same multithreading
overhead as the thread-based design once workload concurrency is high:
concurrency N with fanout F keeps up to N*F synchronous calls in
flight, all funnelled through the pool's task-queue lock and the
connection-pool lock.
"""

from __future__ import annotations

from typing import Optional

from ..messages import HttpRequest, Query
from ..sim.network import ChannelEndpoint, Connection
from ..sim.syscalls import Selector
from ..sim.threads import FixedPool, SimThread
from .base import AppServer, RequestState
from .conn_pool import SyncConnectionPool

__all__ = ["Type1AsyncServer"]


class Type1AsyncServer(AppServer):
    """Event-driven frontend + pre-defined sync-RPC worker pool."""

    kind = "type1-async"

    def __init__(self, *args, pool_size: Optional[int] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        size = pool_size if pool_size is not None else self.params.type1_pool_size
        self.workers = FixedPool(
            self.sim, self.cpu, self.metrics, self.params, size,
            name=f"{self.name}.workers")
        self.conn_pool = SyncConnectionPool(
            self.sim, self.cpu, self.metrics, self.params, self.cluster,
            name=f"{self.name}.connpool", resilience=self.resilience)
        self.frontend_selector = Selector(
            self.sim, self.cpu, self.metrics, self.params,
            name=f"{self.name}.frontend")
        self.frontend_thread = SimThread(self.cpu, name=f"{self.name}-frontend")

    def start(self) -> None:
        self.sim.process(self._frontend_loop(), name=f"{self.name}-frontend")

    def selectors(self):
        return [self.frontend_selector]

    def accept_client(self) -> Connection:
        conn = Connection(self.sim, self.metrics, self.params)
        channel = self.frontend_selector.open_channel("upstream", context=conn)
        conn.attach("b", ChannelEndpoint(channel))
        return conn

    def _frontend_loop(self):
        thread = self.frontend_thread
        timeout = self.params.netty_select_timeout
        while True:
            batch = yield from self.frontend_selector.select(thread, timeout)
            for channel, message in batch:
                if channel.kind != "upstream":
                    raise RuntimeError(f"unexpected event {channel.kind}")
                if not isinstance(message, HttpRequest):
                    raise TypeError(f"unexpected upstream message: {message!r}")
                yield from self.parse_request(thread, message)
                state = self.new_request_state(message, channel.context)
                for query in self.build_queries(message, context=state):
                    # The "asynchronous" API call: hand the query to a
                    # pool worker and return immediately.
                    yield from self.workers.submit(
                        thread, self._make_task(query, state))

    def _make_task(self, query: Query, state: RequestState):
        def task(worker: SimThread):
            response = yield from self.conn_pool.sync_query(worker, query)
            yield from self.allocate_buffer(worker, response.payload_size)
            yield from self.process_response_cpu(
                worker, response.payload_size, response=response)
            if state.absorb(response.payload_size, self.sim.now, response):
                yield from self.finish_request(worker, state)
        return task
