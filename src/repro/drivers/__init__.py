"""The baseline application-server + driver architectures the paper
compares against: thread-based, Type-1 async (pool of sync-RPC
workers), Type-2b (AIO with on-demand pool), and Type-2a (Netty with
split frontend/backend reactors)."""

from .aio_backend import AioBackendServer
from .base import AppServer, RequestState, default_op_rule
from .conn_pool import SyncConnectionPool
from .netty_backend import NettyBackendServer
from .threadbased import ThreadBasedServer
from .type1 import Type1AsyncServer

__all__ = [
    "AioBackendServer", "AppServer", "RequestState", "default_op_rule",
    "SyncConnectionPool", "NettyBackendServer", "ThreadBasedServer",
    "Type1AsyncServer",
]
