"""Type-2a asynchronous driver: the Netty-based MongoDB backend.

Architecture of Figure 8 in the paper: one frontend reactor thread
manages upstream client connections; a *separate, statically sized*
group of backend reactor threads (default two, the driver's default)
manages the downstream datastore connections, each reactor looping over
event monitoring and event handling with a short poll timeout.

Because the two sides run independently with a fixed thread split, the
workload between them can be imbalanced (Section 4): whichever side is
under-loaded keeps re-entering ``select()`` and finding little or
nothing — the "spurious" selects of Table 3 — while the overloaded side
starves.  Completions cross from backend to frontend through the
frontend selector's wake-up path (Netty's ``eventLoop.execute``).
"""

from __future__ import annotations

from typing import List

from ..messages import HttpRequest, QueryResponse
from ..sim.network import ChannelEndpoint, Connection
from ..sim.syscalls import Selector
from ..sim.threads import SimThread
from .base import AppServer, RequestState

__all__ = ["NettyBackendServer"]


class NettyBackendServer(AppServer):
    """Frontend reactor + N independent backend reactors."""

    kind = "netty"

    def __init__(self, *args, backend_reactors: int = 2, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if backend_reactors < 1:
            raise ValueError("need at least one backend reactor")
        self.backend_reactor_count = backend_reactors
        self.frontend_selector = Selector(
            self.sim, self.cpu, self.metrics, self.params,
            name=f"{self.name}.frontend")
        self.backend_selectors: List[Selector] = [
            Selector(self.sim, self.cpu, self.metrics, self.params,
                     name=f"{self.name}.backend{i}")
            for i in range(backend_reactors)
        ]
        self.frontend_thread = SimThread(self.cpu, name=f"{self.name}-frontend")
        self.backend_threads = [
            SimThread(self.cpu, name=f"{self.name}-backend-{i}")
            for i in range(backend_reactors)
        ]
        self._downstream: List[Connection] = []

    def start(self) -> None:
        # One connection per shard; shard i is registered with backend
        # reactor i mod N (Netty assigns channels to loops round-robin).
        for shard_id in range(self.cluster.n_shards):
            selector = self.backend_selectors[shard_id % self.backend_reactor_count]
            conn = self.cluster.connect_shard(shard_id)
            channel = selector.open_channel("downstream", context=conn)
            conn.attach("a", ChannelEndpoint(channel))
            self._downstream.append(conn)
        self.sim.process(self._frontend_loop(), name=f"{self.name}-frontend")
        for i, thread in enumerate(self.backend_threads):
            self.sim.process(self._backend_loop(i, thread), name=thread.name)

    def selectors(self):
        return [self.frontend_selector] + list(self.backend_selectors)

    def accept_client(self) -> Connection:
        conn = Connection(self.sim, self.metrics, self.params)
        channel = self.frontend_selector.open_channel("upstream", context=conn)
        conn.attach("b", ChannelEndpoint(channel))
        return conn

    # -- frontend --------------------------------------------------------

    def _frontend_loop(self):
        thread = self.frontend_thread
        timeout = self.params.netty_select_timeout
        while True:
            batch = yield from self.frontend_selector.select(thread, timeout)
            for channel, message in batch:
                if channel.kind == "upstream":
                    yield from self._handle_request(thread, channel, message)
                elif channel.kind == "task":
                    yield from self.finish_request(thread, message)
                else:
                    raise RuntimeError(f"unexpected event {channel.kind}")

    def _handle_request(self, thread: SimThread, channel, message):
        if not isinstance(message, HttpRequest):
            raise TypeError(f"unexpected upstream message: {message!r}")
        yield from self.parse_request(thread, message)
        state = self.new_request_state(message, channel.context)
        for query in self.build_queries(message, context=state):
            yield thread.execute(self.params.fanout_send_cost, "app")
            conn, replica = self.route_initial(
                query, self._downstream[query.shard_id])
            yield from conn.send(thread, query, query.wire_size, to_side="b")
            self.arm_subquery(state, query, conn, replica)

    # -- backend reactors -------------------------------------------------

    def _backend_loop(self, index: int, thread: SimThread):
        selector = self.backend_selectors[index]
        timeout = self.params.netty_select_timeout
        while True:
            batch = yield from selector.select(thread, timeout)
            for _channel, message in batch:
                if not isinstance(message, QueryResponse):
                    raise TypeError(f"unexpected downstream message: {message!r}")
                state: RequestState = message.context
                if not self.response_is_fresh(state, message):
                    continue
                yield from self.process_response_cpu(
                    thread, message.payload_size, response=message)
                if state.absorb(message.payload_size, self.sim.now, message):
                    yield from self.frontend_selector.post(thread, state)
