"""The thread-based server: one-thread-per-connection, synchronous RPC.

This is the baseline every figure in the paper compares against
(XXX-sync / "Threadbased").  Each upstream connection gets a dedicated
worker thread that blocks on the connection, issues the fanout queries
one at a time over the synchronous connection pool, and assembles the
reply — so workload concurrency N means N threads contending for the
app server's cores and the driver's pool lock, the multithreading
overhead of Table 1 (35.3% mutex CPU at concurrency 100 in the paper).
"""

from __future__ import annotations

from ..messages import HttpRequest
from ..sim.network import Connection, InboxEndpoint
from ..sim.threads import SimThread
from .base import AppServer
from .conn_pool import SyncConnectionPool

__all__ = ["ThreadBasedServer"]


class ThreadBasedServer(AppServer):
    """One dedicated worker thread per upstream connection."""

    kind = "threadbased"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.pool = SyncConnectionPool(
            self.sim, self.cpu, self.metrics, self.params, self.cluster,
            name=f"{self.name}.connpool", resilience=self.resilience)
        self.worker_threads = 0

    def start(self) -> None:
        """Nothing to launch: workers spawn per accepted connection."""

    def accept_client(self) -> Connection:
        conn = Connection(self.sim, self.metrics, self.params)
        inbox = InboxEndpoint(self.sim, self.cpu, self.params)
        conn.attach("b", inbox)
        self.worker_threads += 1
        thread = SimThread(self.cpu, name=f"{self.name}-conn-{self.worker_threads}")
        self.sim.process(self._conn_loop(thread, conn, inbox), name=thread.name)
        return conn

    def _conn_loop(self, thread: SimThread, conn: Connection,
                   inbox: InboxEndpoint):
        while True:
            request = yield from inbox.recv(thread)
            if not isinstance(request, HttpRequest):
                raise TypeError(f"unexpected upstream message: {request!r}")
            yield from self.parse_request(thread, request)
            state = self.new_request_state(request, conn)
            queries = self.build_queries(request, context=state)
            for query in queries:
                response = yield from self.pool.sync_query(thread, query)
                yield from self.allocate_buffer(thread, response.payload_size)
                yield from self.process_response_cpu(
                    thread, response.payload_size, response=response)
                state.absorb(response.payload_size, self.sim.now, response)
            yield from self.finish_request(thread, state)
