"""Fanout-query-aware priority batch scheduling (Section 5.2).

A DoubleFaceAD reactor collects a *batch* of ready events at each event
monitoring phase.  The batch typically holds fanout responses belonging
to several different client requests, plus new client requests.  The
paper's observation: processing the responses of a request that
*cannot* complete in this batch (some of its fanout responses have not
arrived yet) delays requests that *can* complete — pure head-of-line
blocking.

The scheduler therefore orders a batch as follows (Figure 12):

1. **Completable requests first** — requests whose every outstanding
   fanout response is present in the batch — in ascending order of
   outstanding work (fewest responses first, the SJF rule that
   minimises average waiting time).
2. **New client requests** next (they only generate downstream work;
   ordering them after completables lets finished work drain first).
3. **Incomplete fanout responses last** — their request cannot finish
   in this batch anyway.

Within each tier the original arrival order is kept (stable sort), so
the FIFO baseline and the fanout-aware policy differ only where the
paper's algorithm says they should.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..messages import HttpRequest, QueryResponse

__all__ = ["BatchScheduler", "FifoScheduler", "FanoutAwareScheduler",
           "StableFanoutScheduler", "DeferIncompleteScheduler"]

#: A batch element: (channel, message).
BatchEvent = Tuple[Any, Any]


class BatchScheduler:
    """Interface: reorder one ready-event batch before processing."""

    #: Name used in reports.
    name = "abstract"

    def order(self, batch: List[BatchEvent]) -> List[BatchEvent]:
        raise NotImplementedError


class FifoScheduler(BatchScheduler):
    """Process events in arrival order (the "w/o schedule" baseline)."""

    name = "fifo"

    def order(self, batch: List[BatchEvent]) -> List[BatchEvent]:
        return list(batch)


class FanoutAwareScheduler(BatchScheduler):
    """The paper's priority policy: completable requests first."""

    name = "fanout-aware"

    def __init__(self) -> None:
        #: Events promoted ahead of arrival order (diagnostics).
        self.promoted = 0
        #: Events deferred behind arrival order (diagnostics).
        self.deferred = 0
        self.batches = 0

    @staticmethod
    def _request_state(message: Any) -> Optional[Any]:
        """The request-lifecycle object a response belongs to, if any."""
        if isinstance(message, QueryResponse):
            return message.context
        return None

    def _count_in_batch(self, batch: List[BatchEvent]) -> Dict[int, int]:
        """Per request, how many of its *live* responses sit in this batch.

        Under a resilience policy a request's sub-query may appear more
        than once in a batch (original + retry/hedge copies) or after it
        was already won.  Counting those raw events would declare a
        request "completable" on the strength of duplicates it is going
        to drop, so: responses whose sub-query already completed
        (``tracker.done``) are skipped, and live copies of the same
        ``(request, seq)`` are counted once.  Without a policy attached
        (``state.session`` unset/empty) this degenerates to the plain
        per-request event count.
        """
        in_batch: Dict[int, int] = {}
        seen: set = set()
        for _channel, message in batch:
            state = self._request_state(message)
            if state is None:
                continue
            session = getattr(state, "session", None)
            if session:
                tracker = session.get(message.seq)
                if tracker is not None and tracker.done:
                    continue
                key = (id(state), message.seq)
                if key in seen:
                    continue
                seen.add(key)
            in_batch[id(state)] = in_batch.get(id(state), 0) + 1
        return in_batch

    def order(self, batch: List[BatchEvent]) -> List[BatchEvent]:
        if len(batch) <= 1:
            return list(batch)
        self.batches += 1

        in_batch = self._count_in_batch(batch)

        completable: List[Tuple[int, int, BatchEvent]] = []
        requests: List[BatchEvent] = []
        incomplete: List[BatchEvent] = []
        for position, event in enumerate(batch):
            _channel, message = event
            state = self._request_state(message)
            if state is None:
                if isinstance(message, HttpRequest) or getattr(
                        message, "wire_size", None) is not None:
                    requests.append(event)
                else:
                    # Unknown event kinds keep arrival order among requests.
                    requests.append(event)
                continue
            remaining = getattr(state, "remaining", None)
            if remaining is not None and in_batch.get(id(state), 0) >= remaining:
                # Every outstanding response is here: completable.
                completable.append((remaining, position, event))
            else:
                incomplete.append(event)

        # SJF among completable requests: fewest outstanding responses
        # first; stable on arrival position.
        completable.sort(key=lambda item: (item[0], item[1]))
        ordered = [event for (_r, _p, event) in completable]
        ordered.extend(requests)
        ordered.extend(incomplete)

        # Diagnostics: how far events moved relative to arrival order.
        original_positions = {id(event[1]): i for i, event in enumerate(batch)}
        for new_pos, event in enumerate(ordered):
            old_pos = original_positions[id(event[1])]
            if new_pos < old_pos:
                self.promoted += 1
            elif new_pos > old_pos:
                self.deferred += 1
        return ordered


class StableFanoutScheduler(FanoutAwareScheduler):
    """Ablation variant: completable-first *without* the SJF sort.

    Completable groups keep their arrival order instead of being sorted
    by outstanding work, removing the SJF bias against large-fanout
    requests (see EXPERIMENTS.md's scheduler analysis).
    """

    name = "fanout-aware-stable"

    def order(self, batch: List[BatchEvent]) -> List[BatchEvent]:
        if len(batch) <= 1:
            return list(batch)
        self.batches += 1
        in_batch = self._count_in_batch(batch)
        completable: List[BatchEvent] = []
        requests: List[BatchEvent] = []
        incomplete: List[BatchEvent] = []
        for event in batch:
            _channel, message = event
            state = self._request_state(message)
            if state is None:
                requests.append(event)
            elif in_batch.get(id(state), 0) >= getattr(state, "remaining", 0):
                completable.append(event)
            else:
                incomplete.append(event)
        return completable + requests + incomplete


class DeferIncompleteScheduler(FanoutAwareScheduler):
    """Ablation variant: push incomplete-group responses to the *next*
    batch entirely.

    ``order`` returns only the events to process now; the reactor must
    call :meth:`take_deferred` afterwards and re-queue those events (the
    DoubleFace reactor loop does this when it detects this scheduler).
    When a batch consists solely of incomplete responses they are
    processed anyway, so stragglers cannot starve.
    """

    name = "defer-incomplete"

    def __init__(self) -> None:
        super().__init__()
        self._last_deferred: List[BatchEvent] = []

    def take_deferred(self) -> List[BatchEvent]:
        """Events the last ``order`` call postponed (drains the list)."""
        postponed, self._last_deferred = self._last_deferred, []
        return postponed

    def order(self, batch: List[BatchEvent]) -> List[BatchEvent]:
        if len(batch) <= 1:
            self._last_deferred = []
            return list(batch)
        self.batches += 1
        in_batch = self._count_in_batch(batch)
        now: List[BatchEvent] = []
        defer: List[BatchEvent] = []
        for event in batch:
            _channel, message = event
            state = self._request_state(message)
            if state is not None:
                session = getattr(state, "session", None)
                if session:
                    tracker = session.get(message.seq)
                    if tracker is not None and tracker.done:
                        # Stale duplicate: deferring it would re-queue it
                        # forever; let the handler drop it cheaply now.
                        now.append(event)
                        continue
            if (state is not None
                    and in_batch.get(id(state), 0) < getattr(state, "remaining", 0)):
                defer.append(event)
            else:
                now.append(event)
        if not now:
            # Nothing but incomplete responses: process them to avoid
            # spinning and to bound straggler waiting.
            self._last_deferred = []
            return defer
        self.deferred += len(defer)
        self._last_deferred = defer
        return now
