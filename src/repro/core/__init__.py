"""The paper's primary contribution: the DoubleFaceAD integrated
driver architecture and its fanout-query-aware batch scheduler."""

from .doubleface import DoubleFaceServer, Reactor
from .handlers import BackendHandler, EventHandler, FrontendHandler, TaskHandler
from .scheduling import (BatchScheduler, DeferIncompleteScheduler,
                         FanoutAwareScheduler, FifoScheduler,
                         StableFanoutScheduler)

__all__ = [
    "DoubleFaceServer", "Reactor", "BackendHandler", "EventHandler",
    "FrontendHandler", "TaskHandler", "BatchScheduler",
    "DeferIncompleteScheduler", "FanoutAwareScheduler", "FifoScheduler",
    "StableFanoutScheduler",
]
