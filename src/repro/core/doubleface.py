"""DoubleFaceAD: the integrated application-server + driver architecture.

The paper's contribution (Section 5): one (or, N-copy, a few) reactor
thread(s) manage **both** the upstream client connections and the
downstream datastore connections.  Each reactor loops over

1. *event monitoring* — one blocking ``select()`` over all its
   channels (no poll timeout: nothing ever has to be discovered by
   polling, because nothing crosses threads);
2. *batch scheduling* — the fanout-query-aware priority scheduler
   orders the ready batch (Section 5.2);
3. *event handling* — pluggable frontend/backend handlers run inline
   on the same thread, including final assembly.

Compared to the Type-2a/2b baselines this removes: the on-demand worker
pool (no lock contention, no thread-init cost, Section 3), the
frontend/backend thread split (no imbalanced workload, no spurious
selects, no wake-up syscalls, Section 4), and cross-thread completion
hand-offs.

With ``reactors > 1`` the server follows the N-copy model: upstream
connections are assigned round-robin, and every reactor owns a private
set of downstream connections so a request's whole lifecycle stays on
one thread.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..drivers.base import AppServer
from ..sim.network import ChannelEndpoint, Connection
from ..sim.syscalls import Selector
from ..sim.threads import SimThread
from .handlers import BackendHandler, EventHandler, FrontendHandler, TaskHandler
from .scheduling import BatchScheduler, DeferIncompleteScheduler, FanoutAwareScheduler

__all__ = ["DoubleFaceServer", "Reactor"]


class Reactor:
    """One DoubleFaceAD reactor: a thread, its selector, its connections."""

    __slots__ = ("server", "index", "selector", "thread", "downstream",
                 "inflight", "upstream_count")

    def __init__(self, server: "DoubleFaceServer", index: int) -> None:
        self.server = server
        self.index = index
        self.selector = Selector(
            server.sim, server.cpu, server.metrics, server.params,
            name=f"{server.name}.reactor{index}")
        self.thread = SimThread(server.cpu, name=f"{server.name}-reactor-{index}")
        #: Reactor-private downstream connections, one per shard.
        self.downstream: List[Connection] = []
        #: In-flight request states owned by this reactor (diagnostics).
        self.inflight: Dict[int, object] = {}
        self.upstream_count = 0

    def open_downstream(self) -> None:
        cluster = self.server.cluster
        for shard_id in range(cluster.n_shards):
            conn = cluster.connect_shard(shard_id)
            channel = self.selector.open_channel("downstream", context=conn)
            conn.attach("a", ChannelEndpoint(channel))
            self.downstream.append(conn)

    def post(self, thread: Optional[SimThread], task) -> "object":
        """Coroutine: inject a task event into this reactor's loop."""
        return self.selector.post(thread, task)


class DoubleFaceServer(AppServer):
    """The DoubleFaceAD-based application server (DoubleFaceNetty)."""

    kind = "doubleface"

    def __init__(self, *args, reactors: Optional[int] = None,
                 scheduler: Optional[BatchScheduler] = None,
                 business_logic=None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        count = reactors if reactors is not None else len(self.cpu.cores)
        if count < 1:
            raise ValueError("need at least one reactor")
        self.scheduler = scheduler if scheduler is not None else FanoutAwareScheduler()
        self.reactors: List[Reactor] = [Reactor(self, i) for i in range(count)]
        self._next_reactor = 0
        self.handlers: Dict[str, EventHandler] = {
            "upstream": FrontendHandler(business_logic=business_logic),
            "downstream": BackendHandler(),
            "task": TaskHandler(),
        }

    # -- pluggability -------------------------------------------------------

    def register_handler(self, kind: str, handler: EventHandler) -> None:
        """Swap the handler for channel kind *kind* (the paper's
        maintenance-flexibility argument: frontend business logic and
        backend driver management upgrade independently)."""
        if not isinstance(handler, EventHandler):
            raise TypeError("handler must implement EventHandler")
        self.handlers[kind] = handler

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        for reactor in self.reactors:
            reactor.open_downstream()
            self.sim.process(self._reactor_loop(reactor),
                             name=reactor.thread.name)

    def selectors(self):
        return [reactor.selector for reactor in self.reactors]

    def accept_client(self) -> Connection:
        reactor = self.reactors[self._next_reactor]
        self._next_reactor = (self._next_reactor + 1) % len(self.reactors)
        reactor.upstream_count += 1
        conn = Connection(self.sim, self.metrics, self.params)
        channel = reactor.selector.open_channel("upstream", context=conn)
        conn.attach("b", ChannelEndpoint(channel))
        return conn

    # -- the integrated event loop ------------------------------------------------

    def _reactor_loop(self, reactor: Reactor):
        thread = reactor.thread
        while True:
            # Blocking select: both traffic directions arrive here, so
            # there is never a reason to wake up without work.
            batch = yield from reactor.selector.select(thread, timeout=None)
            ordered = self.scheduler.order(batch)
            if isinstance(self.scheduler, DeferIncompleteScheduler):
                # Deferred events go back into the ready queue; they are
                # re-considered in the next monitoring phase together
                # with whatever has arrived by then.
                for event in self.scheduler.take_deferred():
                    reactor.selector._ready.append(event)
            for channel, message in ordered:
                handler = self.handlers.get(channel.kind)
                if handler is None:
                    raise RuntimeError(f"no handler for channel kind "
                                       f"{channel.kind!r}")
                yield from handler.handle(reactor, channel, message)
