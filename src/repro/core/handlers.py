"""Pluggable event handlers for DoubleFaceAD reactors.

The integrated design "does not necessarily sacrifice software
maintenance flexibility" (Section 5.1): business logic and datastore
driver management are *pluggable event handlers* running on the shared
reactor threads.  A handler is selected by the channel kind of the
ready event (``"upstream"``, ``"downstream"``, ``"task"``); developers
upgrade the frontend business logic or the backend connection
management independently by swapping the corresponding handler.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..drivers.base import RequestState
from ..messages import HttpRequest, QueryResponse

__all__ = ["EventHandler", "FrontendHandler", "BackendHandler", "TaskHandler"]


class EventHandler:
    """Interface: process one ready event on a reactor thread.

    ``handle`` is a coroutine (used with ``yield from``) receiving the
    reactor the event fired on, plus the channel and message.
    """

    def handle(self, reactor, channel, message):
        raise NotImplementedError
        yield  # pragma: no cover - marks this as a generator signature


class FrontendHandler(EventHandler):
    """Default upstream handler: parse, run business logic, fan out.

    ``business_logic`` is the pluggable hook: a coroutine factory
    ``(reactor, request) -> generator`` run after parsing and before the
    fanout dispatch (e.g. to rewrite the query set); None runs the
    standard flow.
    """

    def __init__(self, business_logic: Optional[
            Callable[[Any, HttpRequest], Any]] = None) -> None:
        self.business_logic = business_logic

    def handle(self, reactor, channel, message):
        if not isinstance(message, HttpRequest):
            raise TypeError(f"unexpected upstream message: {message!r}")
        server = reactor.server
        yield from server.parse_request(reactor.thread, message)
        if self.business_logic is not None:
            yield from self.business_logic(reactor, message)
        state = server.new_request_state(message, channel.context)
        state_key = id(state)
        reactor.inflight[state_key] = state
        for query in server.build_queries(message, context=state):
            yield reactor.thread.execute(server.params.fanout_send_cost, "app")
            conn, replica = server.route_initial(
                query, reactor.downstream[query.shard_id])
            yield from conn.send(reactor.thread, query, query.wire_size,
                                 to_side="b")
            server.arm_subquery(state, query, conn, replica)


class BackendHandler(EventHandler):
    """Default downstream handler: process a fanout response; when the
    request is complete, assemble and reply *inline* on the same
    reactor thread — no cross-thread hand-off."""

    def handle(self, reactor, channel, message):
        if not isinstance(message, QueryResponse):
            raise TypeError(f"unexpected downstream message: {message!r}")
        server = reactor.server
        state: RequestState = message.context
        if not server.response_is_fresh(state, message):
            # Hedge loser or post-retry straggler: drop without paying
            # the response-processing CPU.
            return
        yield from server.process_response_cpu(
            reactor.thread, message.payload_size, response=message)
        if state.absorb(message.payload_size, server.sim.now, message):
            reactor.inflight.pop(id(state), None)
            yield from server.finish_request(reactor.thread, state)


class TaskHandler(EventHandler):
    """Handler for events posted into the reactor (``"task"`` kind).

    The message must be a coroutine factory ``(reactor) -> generator``;
    this is the extension point examples use to run periodic or
    administrative work on reactor threads.
    """

    def handle(self, reactor, channel, message):
        if not callable(message):
            raise TypeError(f"task events must be callable, got {message!r}")
        yield from message(reactor)
