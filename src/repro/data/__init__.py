"""Dataset generators: YCSB (synthetic benchmark data) and a synthetic
DBLP co-author corpus matching the paper's real-life evaluation."""

from .dblp import CoAuthorPair, DBLPDataset
from .ycsb import UniformGenerator, YCSBDataset, ZipfianGenerator

__all__ = [
    "CoAuthorPair", "DBLPDataset", "UniformGenerator", "YCSBDataset",
    "ZipfianGenerator",
]
