"""Synthetic DBLP co-author dataset.

The paper's real-life evaluation (Section 6.2) uses the DBLP
bibliography: more than 7 M co-author pairs, each tuple about 30 kB,
evenly distributed over the 20 MongoDB shards (~20 GB per shard).  The
actual dump is not redistributable here, so we generate a synthetic
equivalent preserving everything the evaluation depends on: tuple
count, tuple size, even sharding, and a skewed author-popularity
distribution (co-authorship counts in DBLP follow a heavy-tailed law —
we use a Zipf-like popularity over authors).

Only the descriptor participates in simulation-scale runs;
``materialize`` produces real tuples for tests and examples.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from .ycsb import ZipfianGenerator

__all__ = ["DBLPDataset", "CoAuthorPair"]


@dataclass(frozen=True)
class CoAuthorPair:
    """One co-author tuple: two authors plus their joint-paper blob."""

    author_a: str
    author_b: str
    payload: bytes

    @property
    def key(self) -> str:
        return f"{self.author_a}|{self.author_b}"


@dataclass
class DBLPDataset:
    """Descriptor of the synthetic DBLP co-author dataset."""

    n_pairs: int = 7_000_000
    n_authors: int = 500_000
    tuple_bytes: int = 30 * 1024
    n_shards: int = 20
    #: Zipf skew of author popularity (prolific authors co-author more).
    popularity_theta: float = 0.8

    @property
    def shard_bytes(self) -> int:
        """Approximate bytes per shard (the paper's ~20 GB)."""
        return self.n_pairs * self.tuple_bytes // self.n_shards

    def author_name(self, index: int) -> str:
        if not 0 <= index < self.n_authors:
            raise IndexError(f"author index out of range: {index}")
        return f"author{index:08d}"

    def pair_for(self, index: int) -> Tuple[str, str]:
        """Deterministic (author_a, author_b) for tuple *index*.

        The first author is drawn from a skewed popularity law seeded by
        the index, the second uniformly; both derived by hashing so the
        mapping is stable without materialising 7 M tuples.
        """
        if not 0 <= index < self.n_pairs:
            raise IndexError(f"pair index out of range: {index}")
        digest = hashlib.sha256(f"dblp-pair-{index}".encode()).digest()
        local = random.Random(int.from_bytes(digest[:8], "big"))
        zipf = ZipfianGenerator(self.n_authors, local, theta=self.popularity_theta)
        a = zipf.next_index()
        b = local.randrange(self.n_authors - 1)
        if b >= a:
            b += 1  # distinct authors
        return self.author_name(a), self.author_name(b)

    def key_for(self, index: int) -> str:
        a, b = self.pair_for(index)
        return f"{a}|{b}"

    def key_chooser(self, rng: random.Random):
        """Zero-arg callable choosing tuple keys uniformly (the paper's
        workload reads random co-author pairs)."""
        return lambda: self.key_for(rng.randrange(self.n_pairs))

    def materialize(self, n: int, start: int = 0) -> Iterator[CoAuthorPair]:
        """Yield *n* real tuples with deterministic payloads."""
        end = min(start + n, self.n_pairs)
        for index in range(start, end):
            a, b = self.pair_for(index)
            seed = f"dblp-payload-{index}".encode()
            block = hashlib.sha256(seed).digest()
            payload = (block * (self.tuple_bytes // len(block) + 1))[: self.tuple_bytes]
            yield CoAuthorPair(a, b, payload)

    def op_for_size(self, response_size: int) -> str:
        """DBLP tuples are large single-document fetches: the shard does
        a point lookup but returns a heavy payload."""
        return "get" if response_size <= self.tuple_bytes else "scan"
