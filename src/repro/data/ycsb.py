"""YCSB-style dataset and key-choice distributions.

Reproduces the geometry of the paper's synthetic dataset: each of the
20 shards holds one million 1 kB records, every record a primary key
plus ten 0.1 kB fields (Section 2.2).  Key choice follows YCSB's
workload distributions; we implement the uniform chooser and the
zipfian chooser (YCSB's default "scrambled zipfian" hot-key pattern,
using the Gray/Jim-Gray incremental zipfian algorithm).

For simulation-scale runs only the *descriptor* (sizes, key space) is
used; ``materialize(n)`` produces real records for tests and examples.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from ..datastore.records import RecordSchema, materialize_record

__all__ = ["YCSBDataset", "ZipfianGenerator", "UniformGenerator"]

#: YCSB's default zipfian constant.
ZIPFIAN_CONSTANT = 0.99


class UniformGenerator:
    """Uniform key-index chooser over [0, n)."""

    def __init__(self, n: int, rng: random.Random) -> None:
        if n < 1:
            raise ValueError("key space must be non-empty")
        self.n = n
        self.rng = rng

    def next_index(self) -> int:
        return self.rng.randrange(self.n)


class ZipfianGenerator:
    """YCSB's zipfian distribution over [0, n).

    Implements the rejection-free inversion method from the YCSB source
    (Gray et al., "Quickly generating billion-record synthetic
    databases").  Index 0 is the hottest item; callers that want
    scattered hot keys should scramble (see
    :meth:`YCSBDataset.key_chooser`).
    """

    def __init__(self, n: int, rng: random.Random,
                 theta: float = ZIPFIAN_CONSTANT) -> None:
        if n < 1:
            raise ValueError("key space must be non-empty")
        if not 0 < theta < 1:
            raise ValueError("theta must be in (0, 1)")
        self.n = n
        self.rng = rng
        self.theta = theta
        self.alpha = 1.0 / (1.0 - theta)
        self.zetan = self._zeta(n, theta)
        self.zeta2 = self._zeta(2, theta)
        denominator = 1.0 - self.zeta2 / self.zetan
        if denominator <= 0.0:
            # Degenerate tiny keyspace (n <= 2): eta cancels out.
            self.eta = 1.0
        else:
            self.eta = ((1.0 - math.pow(2.0 / n, 1.0 - theta))
                        / denominator)

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        # Exact for small n; Euler-Maclaurin style approximation above a
        # cutoff keeps construction O(1)-ish for million-key spaces.
        cutoff = 10_000
        if n <= cutoff:
            return sum(1.0 / math.pow(i, theta) for i in range(1, n + 1))
        head = sum(1.0 / math.pow(i, theta) for i in range(1, cutoff + 1))
        # integral of x^-theta from cutoff to n.
        tail = (math.pow(n, 1.0 - theta) - math.pow(cutoff, 1.0 - theta)) / (1.0 - theta)
        return head + tail

    def next_index(self) -> int:
        u = self.rng.random()
        uz = u * self.zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + math.pow(0.5, self.theta):
            return 1
        return int(self.n * math.pow(self.eta * u - self.eta + 1.0, self.alpha))


@dataclass
class YCSBDataset:
    """Descriptor of the paper's YCSB dataset."""

    records_per_shard: int = 1_000_000
    n_shards: int = 20
    schema: RecordSchema = RecordSchema(field_count=10, field_size=100)

    @property
    def total_records(self) -> int:
        return self.records_per_shard * self.n_shards

    @property
    def record_bytes(self) -> int:
        return self.schema.record_bytes

    def key_for(self, index: int) -> str:
        """YCSB-style key name for record *index*."""
        if not 0 <= index < self.total_records:
            raise IndexError(f"record index out of range: {index}")
        return f"user{index:012d}"

    def scramble(self, index: int) -> int:
        """Scatter zipfian-hot indexes across the key space (YCSB's
        ScrambledZipfian behaviour)."""
        digest = hashlib.md5(str(index).encode()).digest()
        return int.from_bytes(digest[:8], "big") % self.total_records

    def key_chooser(self, rng: random.Random, distribution: str = "zipfian"):
        """Return a zero-arg callable producing keys."""
        if distribution == "zipfian":
            gen = ZipfianGenerator(self.total_records, rng)
            return lambda: self.key_for(self.scramble(gen.next_index()))
        if distribution == "uniform":
            gen = UniformGenerator(self.total_records, rng)
            return lambda: self.key_for(gen.next_index())
        raise ValueError(f"unknown distribution {distribution!r}")

    def materialize(self, n: int, start: int = 0) -> Iterator[Tuple[str, bytes]]:
        """Yield *n* real (key, value) pairs for loading small stores."""
        end = min(start + n, self.total_records)
        for index in range(start, end):
            key = self.key_for(index)
            fields = materialize_record(self.schema, key)
            yield key, b"".join(fields.values())

    def op_for_size(self, response_size: int) -> str:
        """Paper rule: large responses come from scans, small from
        point lookups."""
        return "scan" if response_size > self.record_bytes else "get"
