"""Seed-driven fault schedules for the simulated datastore tier.

A :class:`FaultSchedule` is built once per run from the run's
:class:`~repro.sim.rng.RngStreams` and queried from three hook points:

- :meth:`FaultSchedule.service_multiplier` /
  :meth:`FaultSchedule.is_down` — by each
  :class:`~repro.datastore.server.ShardServer` serve loop;
- :meth:`FaultSchedule.extra_latency` /
  :meth:`FaultSchedule.drop_message` — by
  :meth:`repro.sim.network.Connection.transmit` on app↔shard links.

Determinism: every on/off timeline is drawn interval-by-interval from
its own named stream (``faults.slow.<shard>``, ``faults.crash.<shard>``,
``faults.rack.<rack>``, ``faults.spikes``), so interval *i* is always
the *i*-th draw from that stream — the timeline is a pure function of
``(seed, stream name)`` and query times never influence it.  Which
shards are targeted comes from ``faults.targets``; which racks from
``faults.rack_targets``.  Message-loss draws come from ``faults.loss``
in send order, which the single-threaded simulator makes deterministic.
Because named streams are independent, an inactive ``FaultConfig``
(the default ``faults=None``) leaves every existing stream's draw
sequence untouched — and enabling one fault family never shifts
another family's timeline.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..datastore.sharding import rack_of
from ..sim.rng import RngStreams

__all__ = ["FaultConfig", "FaultSchedule"]


@dataclass(frozen=True)
class FaultConfig:
    """Which faults to inject, and how hard.

    All durations are simulated seconds.  Every fault family is off by
    default; a default-constructed config injects nothing.
    """

    #: Number of shards subject to slowdown windows.
    slow_shards: int = 0
    #: Service-time multiplier inside a slowdown window.
    slow_factor: float = 20.0
    #: Mean slowdown-window length (exponentially distributed).
    slow_mean_on: float = 0.25
    #: Mean healthy gap between slowdown windows.
    slow_mean_off: float = 0.75

    #: Number of shards subject to crash/recovery cycling.
    crash_shards: int = 0
    #: Mean up-time between crashes (MTBF).
    crash_mtbf: float = 2.0
    #: Mean down-time per crash (MTTR).  A down shard silently drops
    #: arriving queries, like a dead TCP peer.
    crash_mttr: float = 0.25

    #: Network latency spikes per second (0 disables spikes).
    spike_rate: float = 0.0
    #: Extra one-way latency while a spike is active.
    spike_extra: float = 0.0
    #: Mean spike duration.
    spike_duration: float = 0.01

    #: Number of racks subject to correlated rack-wide slowdowns.  A
    #: rack slowdown window degrades *every* replica placed in the rack
    #: at once (see :func:`repro.datastore.sharding.rack_of`), modelling
    #: a saturated ToR switch or a shared power/cooling event — the
    #: correlated-failure case where naive failover can land on an
    #: equally slow sibling.
    rack_slow_racks: int = 0
    #: Service-time multiplier inside a rack slowdown window.
    rack_slow_factor: float = 20.0
    #: Mean rack slowdown-window length (exponentially distributed).
    rack_slow_mean_on: float = 0.25
    #: Mean healthy gap between rack slowdown windows.
    rack_slow_mean_off: float = 0.75

    #: Probability that any single app<->shard message is lost.
    loss_prob: float = 0.0

    #: When False (default), faults hit only replica 0 of each shard, so
    #: failover targets stay healthy; True degrades every replica.
    all_replicas: bool = False

    def __post_init__(self) -> None:
        if self.slow_shards < 0 or self.crash_shards < 0:
            raise ValueError("fault shard counts must be >= 0")
        if self.slow_factor < 1.0:
            raise ValueError("slow_factor must be >= 1")
        if self.slow_shards and (self.slow_mean_on <= 0
                                 or self.slow_mean_off <= 0):
            raise ValueError("slowdown window means must be positive")
        if self.crash_shards and (self.crash_mtbf <= 0
                                  or self.crash_mttr <= 0):
            raise ValueError("crash MTBF/MTTR must be positive")
        if self.spike_rate < 0 or self.spike_extra < 0:
            raise ValueError("spike rate/extra must be >= 0")
        if self.spike_rate > 0 and self.spike_duration <= 0:
            raise ValueError("spike_duration must be positive")
        if self.rack_slow_racks < 0:
            raise ValueError("rack_slow_racks must be >= 0")
        if self.rack_slow_factor < 1.0:
            raise ValueError("rack_slow_factor must be >= 1")
        if self.rack_slow_racks and (self.rack_slow_mean_on <= 0
                                     or self.rack_slow_mean_off <= 0):
            raise ValueError("rack slowdown window means must be positive")
        if not 0.0 <= self.loss_prob < 1.0:
            raise ValueError("loss_prob must be in [0, 1)")

    @property
    def active(self) -> bool:
        """True when at least one fault family is enabled."""
        return bool(self.slow_shards or self.crash_shards
                    or self.rack_slow_racks
                    or (self.spike_rate > 0 and self.spike_extra > 0)
                    or self.loss_prob > 0)


class _WindowTrack:
    """An alternating off/on timeline with exponential interval lengths.

    ``active(now)`` must be queried at nondecreasing times (the
    simulator clock is monotone), letting the cursor advance lazily in
    O(1) amortised per query.
    """

    __slots__ = ("_rng", "_mean_on", "_mean_off", "_on", "_until",
                 "_transitions")

    def __init__(self, rng: random.Random, mean_on: float,
                 mean_off: float) -> None:
        self._rng = rng
        self._mean_on = mean_on
        self._mean_off = mean_off
        self._on = False
        # Start healthy for a random fraction of a gap, so window phases
        # differ across targeted shards.
        self._until = rng.expovariate(1.0 / mean_off)
        #: Realised toggle times, appended as the cursor advances past
        #: them.  Transition *i* flips the state for the (i+1)-th time
        #: (initial state is off), so parity answers past-time queries
        #: without re-drawing anything — the observability layer reads
        #: these to reconstruct fault windows after the fact.
        self._transitions: List[float] = []

    def active(self, now: float) -> bool:
        while now >= self._until:
            self._transitions.append(self._until)
            self._on = not self._on
            mean = self._mean_on if self._on else self._mean_off
            self._until += self._rng.expovariate(1.0 / mean)
        return self._on

    def state_at(self, t: float) -> bool:
        """State at a *past* time ``t`` (must satisfy ``t < horizon``,
        i.e. :meth:`active` was already queried at or beyond *t*): the
        parity of realised transitions up to *t*."""
        return bisect_right(self._transitions, t) % 2 == 1

    def windows(self, end: float) -> List[tuple]:
        """Realised on-windows, clamped to ``[0, end]``.

        Pairs consecutive transitions (off→on, on→off); a window still
        open at the horizon closes at *end*.  Call :meth:`active`
        (or :meth:`FaultSchedule.advance`) at *end* first so the
        timeline is realised that far.
        """
        transitions = self._transitions
        windows = []
        for i in range(0, len(transitions), 2):
            start = transitions[i]
            if start >= end:
                break
            close = transitions[i + 1] if i + 1 < len(transitions) else end
            windows.append((start, min(close, end)))
        return windows


class FaultSchedule:
    """The realised fault timeline for one run."""

    def __init__(self, config: FaultConfig, rng_streams: RngStreams,
                 n_shards: int, racks: int = 1) -> None:
        if racks < 1:
            raise ValueError("need at least one rack")
        self.config = config
        self.n_shards = n_shards
        self.racks = racks
        pick = rng_streams.stream("faults.targets")
        self.slow_ids: List[int] = sorted(pick.sample(
            range(n_shards), min(config.slow_shards, n_shards)))
        self.crash_ids: List[int] = sorted(pick.sample(
            range(n_shards), min(config.crash_shards, n_shards)))
        self._slow: Dict[int, _WindowTrack] = {
            shard_id: _WindowTrack(
                rng_streams.stream(f"faults.slow.{shard_id}"),
                config.slow_mean_on, config.slow_mean_off)
            for shard_id in self.slow_ids}
        self._crash: Dict[int, _WindowTrack] = {
            shard_id: _WindowTrack(
                rng_streams.stream(f"faults.crash.{shard_id}"),
                config.crash_mttr, config.crash_mtbf)
            for shard_id in self.crash_ids}
        # Rack targets come from their own stream so enabling rack
        # faults never shifts which shards the slow/crash families hit.
        rack_pick = rng_streams.stream("faults.rack_targets")
        self.rack_ids: List[int] = sorted(rack_pick.sample(
            range(racks), min(config.rack_slow_racks, racks)))
        self._rack: Dict[int, _WindowTrack] = {
            rack_id: _WindowTrack(
                rng_streams.stream(f"faults.rack.{rack_id}"),
                config.rack_slow_mean_on, config.rack_slow_mean_off)
            for rack_id in self.rack_ids}
        self._spike: Optional[_WindowTrack] = None
        if config.spike_rate > 0 and config.spike_extra > 0:
            self._spike = _WindowTrack(
                rng_streams.stream("faults.spikes"),
                config.spike_duration, 1.0 / config.spike_rate)
        self._loss_rng: Optional[random.Random] = (
            rng_streams.stream("faults.loss")
            if config.loss_prob > 0 else None)

    def _applies(self, replica: int) -> bool:
        return replica == 0 or self.config.all_replicas

    # -- shard-side hooks ---------------------------------------------------

    def service_multiplier(self, shard_id: int, replica: int,
                           now: float) -> float:
        """Service-time multiplier for a query served at *now*.

        Combines the per-shard slowdown family (gated by the
        ``all_replicas`` replica filter) with the rack family (which by
        definition hits every replica placed in the rack); overlapping
        windows take the worse of the two factors.
        """
        multiplier = 1.0
        if self._applies(replica):
            track = self._slow.get(shard_id)
            if track is not None and track.active(now):
                multiplier = self.config.slow_factor
        if self._rack and self.rack_active(shard_id, replica, now):
            multiplier = max(multiplier, self.config.rack_slow_factor)
        return multiplier

    def rack_active(self, shard_id: int, replica: int, now: float) -> bool:
        """True while the rack holding (*shard_id*, *replica*) is inside
        a rack-wide slowdown window."""
        if not self._rack:
            return False
        track = self._rack.get(rack_of(shard_id, replica, self.racks))
        return track is not None and track.active(now)

    def is_down(self, shard_id: int, replica: int, now: float) -> bool:
        """True while the shard replica is crashed (queries are dropped)."""
        if not self._applies(replica):
            return False
        track = self._crash.get(shard_id)
        return track is not None and track.active(now)

    # -- network-side hooks -------------------------------------------------

    def extra_latency(self, now: float) -> float:
        """Added one-way latency at *now* (latency spike windows)."""
        if self._spike is not None and self._spike.active(now):
            return self.config.spike_extra
        return 0.0

    def drop_message(self) -> bool:
        """Decide (one Bernoulli draw) whether to lose this message."""
        return (self._loss_rng is not None
                and self._loss_rng.random() < self.config.loss_prob)

    # -- observability hooks ------------------------------------------------

    def _window_tracks(self):
        """(family, tag, track) triples for every windowed timeline."""
        for shard_id, track in self._slow.items():
            yield "slow", f"shard{shard_id}", track
        for shard_id, track in self._crash.items():
            yield "crash", f"shard{shard_id}", track
        for rack_id, track in self._rack.items():
            yield "rack", f"rack{rack_id}", track
        if self._spike is not None:
            yield "spike", "net", self._spike

    def advance(self, now: float) -> None:
        """Realise every windowed timeline up to *now*.

        Purely observational: each track draws interval lengths from
        its own private named stream, so advancing a timeline early
        never changes what any later ``active(now)`` query (or any
        other stream) returns.  Called by the tracing/telemetry layer
        before :meth:`families_at` / :meth:`realized_windows`.
        """
        for _family, _tag, track in self._window_tracks():
            track.active(now)

    def families_at(self, t: float) -> Tuple[str, ...]:
        """Fault families with a window active at past time *t*
        (``crash``/``rack``/``slow``/``spike``, sorted).  Call
        :meth:`advance` to at least *t* first."""
        families = []
        for family in ("crash", "rack", "slow", "spike"):
            for fam, _tag, track in self._window_tracks():
                if fam == family and track.state_at(t):
                    families.append(family)
                    break
        return tuple(families)

    def realized_windows(self, end: float
                         ) -> List[Tuple[str, float, float]]:
        """Every realised fault window as ``(name, start, close)``,
        clamped to ``[0, end]`` — e.g. ``("fault:slow:shard3", ...)``.
        Calls :meth:`advance` itself, so the timelines are realised
        through *end* on return."""
        self.advance(end)
        windows = []
        for family, tag, track in self._window_tracks():
            for start, close in track.windows(end):
                windows.append((f"fault:{family}:{tag}", start, close))
        return windows
