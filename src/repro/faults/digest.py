"""Per-(shard, replica) attempt-latency digests for attribution hedging.

The adaptive hedge in :mod:`repro.faults.resilience` historically kept
one global sliding window shared by every shard, so a single browned-out
shard dragged the learned percentile for the whole cluster, and
heterogeneous shards (e.g. rack-remote primaries behind an extra
cross-rack RTT) were all served one compromise delay.  The
:class:`AttemptDigest` replaces that with a fixed-size latency ring per
(shard, replica) pair, fed with *per-attempt* latencies — the winning
attempt's wire send to arrival — so the policy can answer "how long does
an attempt against *this* shard (via *this* replica) usually take?" at
arm time.

The digest is deliberately tracer-independent: it is plain float
arithmetic on values the resilience policy already sees, costs O(1) per
completion, draws no randomness, and therefore keeps ``--jobs N``
float-identical to serial.  Tracing, when enabled, only *refines* the
digest's output (see ``ResiliencePolicy._hedge_delay``).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

__all__ = ["AttemptDigest", "nearest_rank"]


def nearest_rank(n: int, percentile: float) -> int:
    """Index of the nearest-rank *percentile* in a sorted ``n``-sample
    list: ``ceil(n * p / 100) - 1``, clamped into ``[0, n - 1]``.

    (The old ``int(n * p / 100)`` sat one rank above the requested
    percentile — p50 over two samples returned the max.)
    """
    if n <= 0:
        raise ValueError("need n >= 1 samples")
    rank = math.ceil(n * percentile / 100.0) - 1
    if rank < 0:
        return 0
    return min(n - 1, rank)


class _Ring:
    """Fixed-capacity overwrite ring of floats with a lifetime count."""

    __slots__ = ("values", "pos", "count")

    def __init__(self) -> None:
        self.values: List[float] = []
        self.pos = 0
        self.count = 0

    def add(self, value: float, capacity: int) -> None:
        values = self.values
        if len(values) < capacity:
            values.append(value)
        else:
            values[self.pos] = value
            self.pos = (self.pos + 1) % capacity
        self.count += 1


class AttemptDigest:
    """Sliding per-(shard, replica) attempt-latency percentiles.

    ``window`` bounds each pair's ring, so memory is
    O(shards x replicas x window) floats at worst and zero until a pair
    actually completes an attempt.
    """

    def __init__(self, window: int = 128) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self._rings: Dict[Tuple[int, int], _Ring] = {}
        #: shard -> rings of that shard, for merged-shard fallbacks
        #: without scanning the full key set.
        self._by_shard: Dict[int, List[_Ring]] = {}
        self.observations = 0

    def observe(self, shard: int, replica: int, latency: float) -> None:
        key = (shard, replica)
        ring = self._rings.get(key)
        if ring is None:
            ring = self._rings[key] = _Ring()
            self._by_shard.setdefault(shard, []).append(ring)
        ring.add(latency, self.window)
        self.observations += 1

    # -- queries ------------------------------------------------------------

    def percentile(self, shard: int, replica: int, p: float,
                   min_samples: int) -> Optional[float]:
        """Learned latency for an attempt against (*shard*, *replica*).

        Prefers the pair's own ring; falls back to the shard's merged
        rings while the pair is cold; returns None when the shard has
        fewer than *min_samples* total observations (caller falls back
        to its global window).
        """
        ring = self._rings.get((shard, replica))
        if ring is not None and ring.count >= min_samples:
            values = sorted(ring.values)
            return values[nearest_rank(len(values), p)]
        return self.shard_percentile(shard, p, min_samples)

    def shard_percentile(self, shard: int, p: float,
                         min_samples: int) -> Optional[float]:
        """Percentile over *shard*'s rings merged across replicas."""
        rings = self._by_shard.get(shard)
        if not rings:
            return None
        merged: List[float] = []
        total = 0
        for ring in rings:
            merged.extend(ring.values)
            total += ring.count
        if total < min_samples or not merged:
            return None
        merged.sort()
        return merged[nearest_rank(len(merged), p)]

    def learned_delays(self, p: float,
                       min_samples: int) -> Dict[int, float]:
        """Converged per-shard delays, for reporting: shard -> merged
        percentile, shards sorted, cold shards omitted."""
        out: Dict[int, float] = {}
        for shard in sorted(self._by_shard):
            value = self.shard_percentile(shard, p, min_samples)
            if value is not None:
                out[shard] = value
        return out
