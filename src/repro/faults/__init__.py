"""Deterministic fault injection and driver resilience.

The fault side (:mod:`repro.faults.schedule`) perturbs the simulated
world — shard slowdown windows, shard crash/recovery intervals, network
latency spikes, message loss — from dedicated
:class:`~repro.sim.rng.RngStreams` streams, so a faulty run is exactly
as reproducible as a healthy one and ``--jobs N`` stays float-identical
to serial.

The resilience side (:mod:`repro.faults.resilience`) is what a
production driver layers on top: per-sub-query deadlines, capped
exponential-backoff retries, hedged requests, and replica failover.  It
plugs into :class:`~repro.drivers.base.AppServer`, so every server
architecture under study shares one policy implementation.
"""

from .schedule import FaultConfig, FaultSchedule
from .digest import AttemptDigest, nearest_rank
from .resilience import HEDGE_ATTEMPT, ResilienceConfig, ResiliencePolicy

__all__ = ["FaultConfig", "FaultSchedule", "ResilienceConfig",
           "ResiliencePolicy", "HEDGE_ATTEMPT", "AttemptDigest",
           "nearest_rank"]
