"""Driver-side resilience: deadlines, retries, hedging, failover.

One :class:`ResiliencePolicy` per run, shared by every component that
sends fanout queries (:class:`~repro.drivers.base.AppServer` reactors
and the :class:`~repro.drivers.conn_pool.SyncConnectionPool`).  The
contract:

- :meth:`ResiliencePolicy.attach` gives a
  :class:`~repro.drivers.base.RequestState` a per-sub-query session map.
- :meth:`ResiliencePolicy.arm` is called right after a sub-query's
  initial send; it schedules the deadline and hedge watchdogs as bare
  ``call_later`` kernel entries (no thread is blocked waiting).
- :meth:`ResiliencePolicy.on_response` is called for every response
  surfacing from a shard connection; the **first** response per
  sub-query wins, duplicates (hedge losers, post-retry stragglers,
  post-failure stragglers) report stale and are dropped by the caller
  before any processing CPU is charged.

A sub-query armed with a deadline is *guaranteed* to produce exactly
one winning response: either a real one arrives, or after
``max_retries`` resends the policy synthesises a failed
:class:`~repro.messages.QueryResponse` (``failed=True``, empty payload)
and delivers it through the same endpoint real responses use.  The
request completes degraded instead of wedging its closed-loop user.

Retried and hedged sub-queries stay *outstanding* until their winning
response is absorbed — ``RequestState.remaining`` only ever decrements
on a win — so the DoubleFaceAD batch scheduler's fewest-remaining-first
ordering keeps working unmodified semantics under faults.

Failover targets come from the cluster's shared
:class:`~repro.datastore.sharding.ReplicaSelector`: each retry/hedge
rotates away from the replica it last tried, so concurrent hedges
spread over the replica set instead of stampeding replica 1 (the old
hard-coded behaviour).  On the winning response the tracker is dropped
from the session map (long-lived requests no longer accumulate dead
trackers); the per-request ``won`` set keeps late duplicates
detectable.

Determinism: backoff jitter is the only randomness, drawn from the
dedicated ``resilience.jitter`` stream in watchdog-firing order, which
the single-threaded simulator fixes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional

from ..datastore.sharding import ReplicaSelector
from ..messages import Query, QueryResponse
from ..sim.kernel import Simulator
from ..sim.metrics import Metrics
from ..sim.rng import RngStreams
from ..trace import FLAG_SYNTHESIZED, K_FAILED, K_HEDGE, K_RETRY
from .digest import AttemptDigest, nearest_rank

__all__ = ["ResilienceConfig", "ResiliencePolicy", "HEDGE_ATTEMPT"]

#: ``Query.attempt`` tag for hedged sends (retries use 1..max_retries),
#: so hedge wins are distinguishable from retry wins in the metrics.
HEDGE_ATTEMPT = -1


@dataclass(frozen=True)
class ResilienceConfig:
    """How the driver reacts to slow or lost sub-queries."""

    #: Per-sub-query deadline; 0 disables deadlines (and thus retries).
    subquery_deadline: float = 0.0
    #: Resends after the first deadline miss before giving up.
    max_retries: int = 0
    #: First backoff delay; doubles per retry up to ``backoff_cap``.
    backoff_base: float = 0.5e-3
    backoff_cap: float = 8e-3
    #: Symmetric jitter fraction applied to each backoff delay
    #: (0.2 = +/-20%), drawn from the ``resilience.jitter`` stream.
    backoff_jitter: float = 0.2

    #: Fixed hedge delay: send a duplicate to another replica this long
    #: after the original.  0 disables the fixed hedge.
    hedge_delay: float = 0.0
    #: Adaptive hedge: hedge at this percentile of observed sub-query
    #: latency (e.g. 95.0).  0 disables; ignored when ``hedge_delay``
    #: is set.  No hedges fire until ``hedge_min_samples`` completions.
    hedge_percentile: float = 0.0
    hedge_min_samples: int = 50

    #: Where the adaptive hedge delay comes from.  ``"percentile"``
    #: (default) keeps one global sliding window shared by every shard;
    #: ``"attribution"`` consults a per-(shard, replica)
    #: :class:`~repro.faults.digest.AttemptDigest` of per-attempt
    #: latencies, so each shard hedges at its *own* percentile (and,
    #: when tracing is on, the live critical-path breakdown trims the
    #: network + selector-wait share off the learned delay).  Requires
    #: ``hedge_percentile > 0``; ignored when ``hedge_delay`` is set.
    hedge_policy: str = "percentile"
    #: Per-(shard, replica) ring capacity for the attribution digest.
    digest_window: int = 128
    #: Minimum observations a shard needs before its digest overrides
    #: the global window.
    digest_min_samples: int = 32

    #: Route retries and hedges to the next replica (requires
    #: ``replicas_per_shard > 1`` to have any effect).
    failover: bool = True

    def __post_init__(self) -> None:
        if self.subquery_deadline < 0:
            raise ValueError("subquery_deadline must be >= 0")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base <= 0 or self.backoff_cap < self.backoff_base:
            raise ValueError("need 0 < backoff_base <= backoff_cap")
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise ValueError("backoff_jitter must be in [0, 1)")
        if self.hedge_delay < 0:
            raise ValueError("hedge_delay must be >= 0")
        if not 0.0 <= self.hedge_percentile <= 100.0:
            raise ValueError("hedge_percentile must be in [0, 100]")
        if self.hedge_min_samples < 1:
            raise ValueError("hedge_min_samples must be >= 1")
        if self.hedge_policy not in ("percentile", "attribution"):
            raise ValueError("hedge_policy must be 'percentile' or"
                             " 'attribution'")
        if self.hedge_policy == "attribution" and self.hedge_percentile <= 0:
            raise ValueError("hedge_policy='attribution' requires"
                             " hedge_percentile > 0")
        if self.digest_window < 1:
            raise ValueError("digest_window must be >= 1")
        if self.digest_min_samples < 1:
            raise ValueError("digest_min_samples must be >= 1")

    @property
    def active(self) -> bool:
        return (self.subquery_deadline > 0 or self.hedge_delay > 0
                or self.hedge_percentile > 0)


class _SubTracker:
    """Lifecycle of one armed sub-query (all attempts share it)."""

    __slots__ = ("query", "state", "conn", "attempts", "done", "sent_at",
                 "hedged", "home_replica", "replica")

    def __init__(self, query: Query, state: Any, conn: Any,
                 sent_at: float, replica: int) -> None:
        self.query = query
        self.state = state
        self.conn = conn
        self.attempts = 1          # sends so far, including the original
        self.done = False
        self.sent_at = sent_at
        self.hedged = False
        #: Replica the initial send went to (``conn`` points there).
        self.home_replica = replica
        #: Replica of the most recent send — what a retry/hedge avoids.
        self.replica = replica


class ResiliencePolicy:
    """Shared deadline/retry/hedge/failover engine for one run."""

    #: Sliding window size for the adaptive hedge-delay percentile.
    WINDOW = 512
    #: Recompute the cached percentile every this many completions.
    REFRESH = 64

    def __init__(self, sim: Simulator, metrics: Metrics,
                 config: ResilienceConfig, rng_streams: RngStreams,
                 cluster: Any) -> None:
        self.sim = sim
        self.metrics = metrics
        self.config = config
        self.cluster = cluster
        self.replicas = getattr(cluster, "replicas_per_shard", 1)
        #: Replica selector shared with the drivers' initial sends, so
        #: hedges/retries see the same in-flight counts the router does.
        #: Clusters always carry one; the fallback keeps bare test stubs
        #: working and rotates hedge targets instead of stampeding
        #: replica 1.
        selector = getattr(cluster, "replica_selector", None)
        if selector is None:
            selector = ReplicaSelector("round_robin", self.replicas)
        self.selector = selector
        self._rng: random.Random = rng_streams.stream("resilience.jitter")
        self._window: List[float] = []
        self._window_pos = 0
        self._completions = 0
        self._hedge_cached: float = -1.0  # <0 = needs recompute
        #: Per-(shard, replica) attempt-latency digest; only exists
        #: under ``hedge_policy="attribution"`` so the default hot path
        #: pays nothing.
        self._digest: Optional[AttemptDigest] = (
            AttemptDigest(config.digest_window)
            if config.hedge_policy == "attribution" else None)
        #: Attribution delay cache, (shard, replica) -> delay; dropped
        #: wholesale every REFRESH completions alongside the global one.
        self._hedge_by_key: Dict[Any, float] = {}
        #: Lazily opened replica connections, keyed by
        #: (primary connection id, shard, replica).  A replica
        #: connection shares the primary's receive endpoint, so failover
        #: responses surface exactly where primary responses do.
        self._replica_conns: Dict[Any, Any] = {}

    # -- wiring -------------------------------------------------------------

    def attach(self, state: Any) -> None:
        """Give *state* a sub-query session map (seq -> tracker) and a
        won-set remembering which seqs already produced a winner."""
        state.session = {}
        state.won = set()

    def arm(self, state: Any, query: Query, conn: Any,
            replica: int = 0) -> None:
        """Register *query*, just sent on *conn* (to *replica*), for
        supervision."""
        deadline = self.config.subquery_deadline
        hedge = self._hedge_delay(query.shard_id, replica)
        if deadline <= 0 and hedge <= 0:
            return
        if 0 < deadline <= hedge:
            # A learned delay at/past the deadline used to *silently
            # disable* hedging (exactly when the old feedback loop had
            # ratcheted it there).  Clamp so the hedge still fires with
            # a deadline's-worth of headroom, and count the clamp so
            # the condition is observable.
            hedge = 0.5 * deadline
            self.metrics.add("resilience.hedge_clamped")
        tracker = _SubTracker(query, state, conn, self.sim.now, replica)
        state.session[query.seq] = tracker
        if deadline > 0:
            self.sim.call_later(deadline, self._deadline_cb, tracker)
        if hedge > 0:
            self.sim.call_later(hedge, self._hedge_cb, tracker)

    def on_response(self, state: Any, response: QueryResponse) -> bool:
        """Account *response*; False = stale duplicate, drop it."""
        session = state.session
        if session is None:
            return True
        tracker = session.get(response.seq)
        if tracker is None:
            if response.seq in state.won:
                # Hedge loser / post-retry straggler arriving after its
                # winner's tracker was dropped from the session map.
                self.metrics.add("resilience.duplicates")
                return False
            # Sub-query was never armed (no deadline, hedging not yet
            # warmed up): exactly one response exists.
            return True
        # The win: free the tracker (the session map would otherwise
        # grow for the life of the request) but remember the seq so
        # stragglers still read as stale.
        tracker.done = True
        del session[response.seq]
        state.won.add(response.seq)
        if response.failed:
            # Synthesised timeout, not a completion: feeding its
            # "latency" (deadline x retries) into the adaptive-hedge
            # window would inflate the percentile and stop hedges from
            # firing exactly when they are needed most.
            state.failed += 1
        else:
            # Per-*attempt* latency: the winning attempt's wire send
            # (``Connection.transmit`` restamps ``Query.sent_at`` for
            # every resend; the shard echoes it) to arrival.  Measuring
            # from the tracker's *original* send instead folded the
            # hedge delay / retry backoff into the observation, so the
            # adaptive window learned from its own output and ratcheted
            # the delay upward exactly when hedging mattered.  Stubs
            # that never stamp the wire fall back to the arm time.
            sent = response.sent_at
            if sent <= 0.0:
                sent = tracker.sent_at
            latency = self.sim.now - sent
            self._observe(latency)
            if self._digest is not None:
                self._digest.observe(response.shard_id, response.replica,
                                     latency)
            if response.attempt == HEDGE_ATTEMPT:
                self.metrics.add("resilience.hedge_wins")
            elif response.attempt > 0:
                self.metrics.add("resilience.retry_wins")
        return True

    # -- watchdogs (bare call_later callbacks; no simulated thread) --------

    def _deadline_cb(self, tracker: _SubTracker) -> None:
        if tracker.done:
            return
        self.metrics.add("resilience.deadline_misses")
        cfg = self.config
        if tracker.attempts <= cfg.max_retries:
            delay = min(cfg.backoff_cap,
                        cfg.backoff_base * (2.0 ** (tracker.attempts - 1)))
            if cfg.backoff_jitter > 0:
                delay *= 1.0 + cfg.backoff_jitter * (
                    2.0 * self._rng.random() - 1.0)
            self.sim.call_later(delay, self._retry_cb, tracker)
        else:
            self._fail(tracker)

    def _retry_cb(self, tracker: _SubTracker) -> None:
        if tracker.done:
            return
        tracker.attempts += 1
        self.metrics.add("resilience.retries")
        attempt = tracker.attempts - 1
        replica = self._next_replica(tracker)
        if self.sim.tracer is not None:
            trace = getattr(tracker.state, "trace", None)
            if trace is not None:
                trace.point(K_RETRY, self.sim.now, seq=tracker.query.seq,
                            attempt=attempt,
                            shard=tracker.query.shard_id, replica=replica)
        self._transmit(tracker, replace(tracker.query, attempt=attempt),
                       replica)
        self.sim.call_later(self.config.subquery_deadline,
                            self._deadline_cb, tracker)

    def _hedge_cb(self, tracker: _SubTracker) -> None:
        if tracker.done or tracker.hedged:
            return
        tracker.hedged = True
        self.metrics.add("resilience.hedges")
        replica = self._next_replica(tracker)
        if self.sim.tracer is not None:
            trace = getattr(tracker.state, "trace", None)
            if trace is not None:
                trace.point(K_HEDGE, self.sim.now, seq=tracker.query.seq,
                            attempt=HEDGE_ATTEMPT,
                            shard=tracker.query.shard_id, replica=replica)
        self._transmit(tracker,
                       replace(tracker.query, attempt=HEDGE_ATTEMPT),
                       replica)

    def _fail(self, tracker: _SubTracker) -> None:
        """Out of retries: synthesise a failed response so the request
        completes (degraded) instead of wedging its user."""
        self.metrics.add("resilience.failed_subqueries")
        query = tracker.query
        if self.sim.tracer is not None:
            trace = getattr(tracker.state, "trace", None)
            if trace is not None:
                trace.point(K_FAILED, self.sim.now, seq=query.seq,
                            attempt=tracker.attempts - 1,
                            shard=query.shard_id, replica=tracker.replica,
                            flags=FLAG_SYNTHESIZED)
        response = QueryResponse(
            request_id=query.request_id, shard_id=query.shard_id,
            payload_size=0, seq=query.seq, context=tracker.state,
            failed=True)
        # Deliver through the same endpoint real responses use, so every
        # architecture's normal response path handles it.
        tracker.conn.endpoint_a.deliver(response)

    # -- resends ------------------------------------------------------------

    def _next_replica(self, tracker: _SubTracker) -> int:
        """Pick the replica for a retry/hedge of *tracker*'s sub-query.

        With failover enabled the shared selector rotates away from the
        *last* replica tried (so concurrent hedges spread over the
        replica set instead of stampeding one sibling); without it the
        resend goes back to the same replica.
        """
        if not self.config.failover:
            return tracker.replica
        replica = self.selector.alternate(tracker.query.shard_id,
                                          tracker.replica)
        if replica != tracker.replica:
            self.metrics.add("resilience.failovers")
        return replica

    def _transmit(self, tracker: _SubTracker, query: Query,
                  replica: int) -> None:
        conn = tracker.conn
        if replica != tracker.home_replica:
            key = (conn.cid, query.shard_id, replica)
            rconn = self._replica_conns.get(key)
            if rconn is None:
                rconn = self.cluster.connect_shard(query.shard_id, replica)
                rconn.attach("a", conn.endpoint_a)
                self._replica_conns[key] = rconn
            conn = rconn
        tracker.replica = replica
        conn.transmit(query, query.wire_size, to_side="b")

    # -- adaptive hedging ---------------------------------------------------

    def _observe(self, latency: float) -> None:
        window = self._window
        if len(window) < self.WINDOW:
            window.append(latency)
        else:
            window[self._window_pos] = latency
            self._window_pos = (self._window_pos + 1) % self.WINDOW
        self._completions += 1
        if self._completions % self.REFRESH == 0:
            self._hedge_cached = -1.0
            if self._hedge_by_key:
                self._hedge_by_key.clear()

    def _global_percentile(self) -> float:
        """Nearest-rank percentile over the global sliding window."""
        values = sorted(self._window)
        return values[nearest_rank(len(values),
                                   self.config.hedge_percentile)]

    def _hedge_delay(self, shard: int = -1, replica: int = 0) -> float:
        cfg = self.config
        if cfg.hedge_delay > 0:
            return cfg.hedge_delay
        if cfg.hedge_percentile <= 0:
            return 0.0
        if self._completions < cfg.hedge_min_samples:
            return 0.0
        if self._digest is None or shard < 0:
            if self._hedge_cached < 0:
                self._hedge_cached = self._global_percentile()
            return self._hedge_cached
        key = (shard, replica)
        cached = self._hedge_by_key.get(key)
        if cached is None:
            learned = self._digest.percentile(
                shard, replica, cfg.hedge_percentile,
                cfg.digest_min_samples)
            if learned is None:
                # Shard still cold: the global window is the best
                # available prior.
                learned = self._global_percentile()
            cached = self._hedge_by_key[key] = self._trace_refine(learned)
        return cached

    def _trace_refine(self, delay: float) -> float:
        """Trim the live critical-path network + selector-wait share
        off a learned *delay*, when a tracer is running.

        Per-attempt latency includes the wire RTT and the send-side
        selector wait; service-side slowness is what a hedge to a
        sibling replica can actually beat (a slow *rack* should resolve
        via EWMA replica routing instead).  The mean sampled share of
        those categories is a deterministic function of the event
        history, so jobs=N stays float-identical.  Floored at half the
        learned delay so a network-dominated breakdown can tighten the
        hedge but never zero it.  This is the one sanctioned exception
        to "tracing is observation-only", and only under
        ``hedge_policy="attribution"`` with ``--trace``.
        """
        tracer = self.sim.tracer
        if tracer is None:
            return delay
        count = 0
        overhead = 0.0
        for agg in tracer.classes().values():
            count += agg.count
            sums = agg.sums
            overhead += sums["network"] + sums["selector_wait"]
        if count == 0:
            return delay
        refined = delay - overhead / count
        floor = 0.5 * delay
        return refined if refined > floor else floor

    # -- reporting ----------------------------------------------------------

    def learned_delays(self) -> Dict[int, float]:
        """Converged per-shard hedge delays (raw digest percentiles,
        before any trace refinement), for ``ExperimentResult`` export;
        empty unless ``hedge_policy="attribution"``."""
        if self._digest is None:
            return {}
        cfg = self.config
        return self._digest.learned_delays(cfg.hedge_percentile,
                                           cfg.digest_min_samples)

    COUNTERS = ("retries", "retry_wins", "hedges", "hedge_wins",
                "hedge_clamped", "deadline_misses", "failovers",
                "failed_subqueries", "duplicates")
