"""Experiment harness: configs, the runner, report rendering, and one
module-level function per paper exhibit."""

from .config import DATASTORE_KINDS, SERVER_KINDS, ExperimentConfig, ExperimentResult
from .figures import EXHIBITS, ExhibitResult, run_exhibit
from .parallel import resolve_jobs, run_experiments
from .report import normalize, render_series, render_table
from .runner import PERCENTILES, build_params, run_experiment

__all__ = [
    "DATASTORE_KINDS", "SERVER_KINDS", "ExperimentConfig",
    "ExperimentResult", "EXHIBITS", "ExhibitResult", "run_exhibit",
    "normalize", "render_series", "render_table", "PERCENTILES",
    "build_params", "run_experiment", "run_experiments", "resolve_jobs",
]
