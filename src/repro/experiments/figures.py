"""One function per paper exhibit (figure or table).

Every exhibit *declares* its experiment grid as a flat list of
(key, :class:`ExperimentConfig`) points, fans the configs out through
:func:`repro.experiments.parallel.run_experiments` (``jobs`` workers;
``jobs=1`` is the serial fallback with identical results), and then
assembles an :class:`ExhibitResult` holding both the rendered text (the
same rows/series the paper reports) and the raw data (asserted on by
the benchmark suite).  Results come back in submission order, so the
assembly step never depends on completion timing.

``quick=True`` (the default, used by the pytest-benchmark harness)
shrinks measurement windows and grids so the whole suite completes in
minutes; ``quick=False`` (the CLI's ``--full``) uses the full grids.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..faults import FaultConfig, ResilienceConfig
from ..obs import DEFAULT_OBS_PERIOD, prometheus_snapshot
from ..sim.params import KB
from .config import ExperimentConfig
from .parallel import BatchExecutor, resolve_jobs, run_experiments
from .report import (normalize, render_breakdown, render_flame,
                     render_series, render_table)

__all__ = ["ExhibitResult", "EXHIBITS", "run_exhibit", "run_exhibits",
           "fig04", "fig05", "fig07", "fig09", "fig13", "fig14",
           "fig15", "fig16", "fig17", "tab1", "tab2", "tab3",
           "fault_tail", "hedging", "fault_open", "ewma_route",
           "adaptive_hedge"]

#: When set (by :func:`run_exhibits`), every exhibit's point batch is
#: routed through this shared executor instead of a private pool, so
#: points from concurrently running exhibits interleave in one global
#: work queue.  Set before the exhibit threads start and cleared after
#: they join, never mutated while they run.
_BATCH_RUNNER: Optional[Callable[[List[ExperimentConfig]], List[Any]]] = None

#: Worker→parent result transport for standalone exhibit runs, set by
#: :func:`run_exhibit` around the exhibit call (same discipline as
#: ``_BATCH_RUNNER``: set, run, restore).  ``None`` = auto (shm where
#: available).  Interleaved runs carry the transport inside their
#: shared ``BatchExecutor`` instead.
_TRANSPORT: Optional[str] = None

#: When set (by :func:`run_exhibit` with ``trace=True``), every point
#: an exhibit declares runs with span tracing forced on
#: (``{"sample": rate, "exemplars": n, "summaries": {}, "flames": {},
#: "phases": {}}``), and each point's trace summary, flame
#: aggregation, and phase windows are stashed under a deterministic
#: ``label#index (key)`` name for the breakdown/flame tables and the
#: Chrome export.  Same set/run/restore discipline as ``_TRANSPORT``.
_TRACE: Optional[Dict[str, Any]] = None

#: When set (by :func:`run_exhibit` with ``obs=True``), every point
#: runs with the telemetry ticker on (``{"period": s, "snapshots":
#: {}}``) and each point's Prometheus snapshot is stashed under the
#: same deterministic name vocabulary as the trace summaries.
_OBS: Optional[Dict[str, Any]] = None


@dataclass
class ExhibitResult:
    """Output of one exhibit run."""

    exhibit: str
    title: str
    text: str
    data: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


def _run_points(points: List[Tuple[Any, ExperimentConfig]],
                jobs: Optional[int]) -> List[Tuple[Any, Any]]:
    """Run a declared point list; (key, result) pairs in declared order."""
    trace = _TRACE
    if trace is not None:
        points = [(key, replace(config, trace=True,
                                trace_sample=trace["sample"],
                                trace_exemplars=trace["exemplars"]))
                  for key, config in points]
    obs = _OBS
    if obs is not None:
        points = [(key, replace(config, obs=True,
                                obs_period=obs["period"]))
                  for key, config in points]
    runner = _BATCH_RUNNER
    if runner is not None:
        results = runner([config for _key, config in points])
    else:
        results = run_experiments([config for _key, config in points],
                                  jobs=jobs, transport=_TRANSPORT)
    pairs = [(key, result)
             for (key, _config), result in zip(points, results)]
    if trace is not None:
        summaries = trace["summaries"]
        for (key, config), (_key, result) in zip(points, pairs):
            if result.trace_summary is not None:
                name = f"{config.label}#{len(summaries):03d} ({key})"
                summaries[name] = result.trace_summary
                trace["flames"][name] = result.flame
                trace["phases"][name] = result.phases
    if obs is not None:
        snapshots = obs["snapshots"]
        for (key, config), (_key, result) in zip(points, pairs):
            name = f"{config.label}#{len(snapshots):03d} ({key})"
            snapshots[name] = prometheus_snapshot(result, label=name)
    return pairs


def _concurrency_grid(quick: bool) -> List[int]:
    return [1, 16, 64, 256] if quick else [1, 4, 16, 64, 256, 1024]


def _closed(server: str, datastore: str, conc: int, fanout: int,
            size: int, seed: int, quick: bool, **kw) -> ExperimentConfig:
    # Larger payloads and higher concurrency need longer windows for the
    # queues to reach steady state.
    slow = size >= 4 * KB
    warmup = (1.5 if slow else 0.3) + (1.0 if conc >= 256 else 0.0)
    duration = (3.0 if slow else 0.8) if quick else (8.0 if slow else 2.5)
    # Closed-loop exhibits only chart throughput/percentiles: keep the
    # pickled result payload small.
    kw.setdefault("keep_selector_stats", False)
    return ExperimentConfig(
        server=server, datastore=datastore, concurrency=conc, fanout=fanout,
        response_size=size, warmup=warmup, duration=duration, seed=seed, **kw)


# ---------------------------------------------------------------------------
# Figure 4 — thread-based vs asynchronous drivers per datastore family
# ---------------------------------------------------------------------------

def fig04(quick: bool = True, seed: int = 42,
          jobs: Optional[int] = 1) -> ExhibitResult:
    """Throughput vs. workload concurrency for DynamoDB, HBase, and
    MongoDB with thread-based vs. asynchronous drivers (fanout 5,
    0.1 kB responses)."""
    grid = _concurrency_grid(quick)
    # The async DynamoDB/HBase drivers are Type-1; MongoDB's default
    # async driver is the Type-2b AIO backend.
    families = [("dynamodb", "type1"), ("hbase", "type1"),
                ("mongodb", "aio")]
    points: List[Tuple[Any, ExperimentConfig]] = []
    for datastore, async_kind in families:
        for conc in grid:
            for label, kind in ((f"{datastore}-async", async_kind),
                                (f"{datastore}-thread", "threadbased")):
                points.append(((datastore, label), _closed(
                    kind, datastore, conc, fanout=5, size=100, seed=seed,
                    quick=quick)))
    data: Dict[str, Dict[str, List[float]]] = {
        datastore: {f"{datastore}-async": [], f"{datastore}-thread": []}
        for datastore, _async_kind in families}
    for (datastore, label), result in _run_points(points, jobs):
        data[datastore][label].append(result.throughput)
    sections = [render_series(
        f"Figure 4 ({datastore}): throughput [req/s] vs concurrency",
        "conc", grid, data[datastore]) for datastore, _ in families]
    return ExhibitResult("fig04", "Thread-based vs asynchronous drivers",
                         "\n\n".join(sections),
                         {"concurrency": grid, **data})


# ---------------------------------------------------------------------------
# Figure 5 — MongoDB driver comparison across response sizes
# ---------------------------------------------------------------------------

def fig05(quick: bool = True, seed: int = 42,
          jobs: Optional[int] = 1) -> ExhibitResult:
    """AIOBackend vs NettyBackend vs Threadbased for MongoDB across
    response sizes 20 kB / 1 kB / 0.1 kB (fanout 5)."""
    grid = _concurrency_grid(quick)
    sizes = [(20 * KB, "20kB"), (1 * KB, "1kB"), (100, "0.1kB")]
    servers = (("AIOBackend", "aio"), ("NettyBackend", "netty"),
               ("Threadbased", "threadbased"))
    points: List[Tuple[Any, ExperimentConfig]] = []
    for size, size_label in sizes:
        for label, kind in servers:
            for conc in grid:
                points.append(((size_label, label), _closed(
                    kind, "mongodb", conc, fanout=5, size=size, seed=seed,
                    quick=quick)))
    data: Dict[str, Dict[str, List[float]]] = {
        size_label: {label: [] for label, _kind in servers}
        for _size, size_label in sizes}
    for (size_label, label), result in _run_points(points, jobs):
        data[size_label][label].append(result.throughput)
    sections = [render_series(
        f"Figure 5 ({size_label} responses): throughput [req/s]",
        "conc", grid, data[size_label]) for _size, size_label in sizes]
    return ExhibitResult("fig05", "MongoDB drivers across response sizes",
                         "\n\n".join(sections),
                         {"concurrency": grid, **data})


# ---------------------------------------------------------------------------
# Table 1 — perf breakdown at 20 kB
# ---------------------------------------------------------------------------

def tab1(quick: bool = True, seed: int = 42,
         jobs: Optional[int] = 1) -> ExhibitResult:
    """Context switches, running threads, lock and thread-init CPU for
    AIOBackend / NettyBackend / Threadbased (conc 100, fanout 5, 20 kB)."""
    duration = 4.0 if quick else 10.0
    points = [(label, ExperimentConfig(
        server=kind, concurrency=100, fanout=5, response_size=20 * KB,
        warmup=2.0, duration=duration, seed=seed,
        keep_selector_stats=False))
        for label, kind in (("AIOBackend", "aio"), ("NettyBackend", "netty"),
                            ("Threadbased", "threadbased"))]
    results = dict(_run_points(points, jobs))
    headers = ["metric"] + list(results.keys())
    rows = [
        ["Throughput [req/s]"] + [round(r.throughput) for r in results.values()],
        ["Concurrent running threads"] + [round(r.avg_running_threads, 1)
                                          for r in results.values()],
        ["Context switches [/s]"] + [round(r.ctx_switches_per_sec)
                                     for r in results.values()],
        ["Locking (mutex) CPU [%]"] + [round(100 * r.cpu_shares["lock"], 1)
                                       for r in results.values()],
        ["Thread initiation CPU [%]"] + [
            round(100 * r.cpu_shares["thread_init"], 1)
            for r in results.values()],
        ["ctx-switch CPU [%]"] + [round(100 * r.cpu_shares["ctx_switch"], 1)
                                  for r in results.values()],
    ]
    text = render_table(
        "Table 1: multithreading overhead (conc 100, fanout 5, 20kB)",
        headers, rows)
    return ExhibitResult("tab1", "Multithreading overhead breakdown", text,
                         {label: {
                             "throughput": r.throughput,
                             "running_threads": r.avg_running_threads,
                             "ctx_per_sec": r.ctx_switches_per_sec,
                             "lock_share": r.cpu_shares["lock"],
                             "thread_init_share": r.cpu_shares["thread_init"],
                         } for label, r in results.items()})


# ---------------------------------------------------------------------------
# Figure 7 — AIO vs Netty normalized throughput across fanout (20 kB)
# ---------------------------------------------------------------------------

def fig07(quick: bool = True, seed: int = 42,
          jobs: Optional[int] = 1) -> ExhibitResult:
    """Normalized throughput (NettyBackend = 1.0) vs fanout factor at
    20 kB responses, concurrency 100."""
    fanouts = [1, 5, 20]
    duration = 3.0 if quick else 8.0
    points: List[Tuple[Any, ExperimentConfig]] = []
    for fanout in fanouts:
        for label, kind in (("NettyBackend", "netty"), ("AIOBackend", "aio")):
            points.append((label, ExperimentConfig(
                server=kind, concurrency=100, fanout=fanout,
                response_size=20 * KB, warmup=2.0, duration=duration,
                seed=seed, keep_selector_stats=False)))
    series: Dict[str, List[float]] = {"NettyBackend": [], "AIOBackend": []}
    for label, result in _run_points(points, jobs):
        series[label].append(result.throughput)
    norm = normalize(series, "NettyBackend")
    text = render_series(
        "Figure 7: normalized throughput vs fanout (20kB, conc 100)",
        "fanout", fanouts, norm)
    return ExhibitResult("fig07", "AIO degradation with fanout", text,
                         {"fanout": fanouts, "throughput": series,
                          "normalized": norm})


# ---------------------------------------------------------------------------
# Table 2 — select() overhead at 0.1 kB
# ---------------------------------------------------------------------------

def tab2(quick: bool = True, seed: int = 42,
         jobs: Optional[int] = 1) -> ExhibitResult:
    """select() counts and CPU share, AIOBackend vs NettyBackend
    (conc 100, fanout 5, 0.1 kB).  The paper reports a 30 s runtime; we
    report per-30s-equivalent counts."""
    duration = 1.5 if quick else 5.0
    points = [(label, ExperimentConfig(
        server=kind, concurrency=100, fanout=5, response_size=100,
        warmup=0.5, duration=duration, seed=seed,
        keep_selector_stats=False))
        for label, kind in (("AIOBackend", "aio"), ("NettyBackend", "netty"))]
    results = dict(_run_points(points, jobs))
    headers = ["metric"] + list(results.keys())
    rows = [
        ["Throughput [req/s]"] + [round(r.throughput)
                                  for r in results.values()],
        ["# of select() [30s runtime]"] + [
            round(r.selects_per_sec * 30.0)
            for r in results.values()],
        ["select() CPU share [%]"] + [
            round(100 * r.select_cpu_share
                  * r.cpu_utilization, 1)
            for r in results.values()],
    ]
    text = render_table(
        "Table 2: select() overhead (conc 100, fanout 5, 0.1kB)",
        headers, rows)
    return ExhibitResult("tab2", "select() overhead", text,
                         {label: {
                             "throughput": r.throughput,
                             "selects_30s": r.selects_per_sec * 30.0,
                             "select_cpu_share": r.select_cpu_share,
                         } for label, r in results.items()},)


# ---------------------------------------------------------------------------
# Table 3 — Netty backend-reactor-count sensitivity
# ---------------------------------------------------------------------------

def tab3(quick: bool = True, seed: int = 42,
         jobs: Optional[int] = 1) -> ExhibitResult:
    """NettyBackend with 1 / 2 / 4 backend reactors: throughput and
    per-side select() efficiency (conc 100, fanout 5, 0.1 kB)."""
    duration = 1.5 if quick else 5.0
    cases = [("OneCase", 1), ("TwoCase", 2), ("FourCase", 4)]
    points = [(label, ExperimentConfig(
        server="netty", backend_reactors=n, concurrency=100, fanout=5,
        response_size=100, warmup=0.5, duration=duration, seed=seed))
        for label, n in cases]
    results = dict(_run_points(points, jobs))
    scale = 30.0 / duration

    def split(r):
        front = [s for s in r.selector_stats if "frontend" in s["name"]]
        back = [s for s in r.selector_stats if "backend" in s["name"]]
        f_sel = sum(s["selects"] for s in front)
        b_sel = sum(s["selects"] for s in back)
        f_ev = sum(s["events"] for s in front)
        b_ev = sum(s["events"] for s in back)
        return f_sel, b_sel, f_ev, b_ev

    headers = ["metric"] + [label for label, _n in cases]
    splits = {label: split(r) for label, r in results.items()}
    rows = [
        ["Throughput [req/s]"] + [round(r.throughput)
                                  for r in results.values()],
        ["total # select() [30s]"] + [
            round((splits[l][0] + splits[l][1]) * scale) for l, _ in cases],
        ["frontend select() [30s]"] + [round(splits[l][0] * scale)
                                       for l, _ in cases],
        ["backend select() [30s]"] + [round(splits[l][1] * scale)
                                      for l, _ in cases],
        ["events/select (frontend)"] + [
            round(splits[l][2] / splits[l][0], 1) if splits[l][0] else 0
            for l, _ in cases],
        ["events/select (backend)"] + [
            round(splits[l][3] / splits[l][1], 1) if splits[l][1] else 0
            for l, _ in cases],
    ]
    text = render_table(
        "Table 3: Netty backend reactor count (conc 100, fanout 5, 0.1kB)",
        headers, rows)
    return ExhibitResult("tab3", "Imbalanced reactor allocation", text,
                         {label: {
                             "throughput": r.throughput,
                             "frontend_selects": splits[label][0],
                             "backend_selects": splits[label][1],
                             "frontend_events": splits[label][2],
                             "backend_events": splits[label][3],
                         } for label, r in results.items()})


# ---------------------------------------------------------------------------
# Figure 9 — running-thread timelines
# ---------------------------------------------------------------------------

def fig09(quick: bool = True, seed: int = 42,
          jobs: Optional[int] = 1) -> ExhibitResult:
    """Concurrently-running-thread timeline, NettyBackend vs AIOBackend
    (conc 100, fanout 5, 20 kB)."""
    duration = 4.0 if quick else 10.0
    sample = 0.1
    points = [(label, ExperimentConfig(
        server=kind, concurrency=100, fanout=5, response_size=20 * KB,
        warmup=2.0, duration=duration, seed=seed,
        thread_sample_period=sample, keep_selector_stats=False))
        for label, kind in (("NettyBackend", "netty"), ("AIOBackend", "aio"))]
    samples = {}
    stats = {}
    for label, result in _run_points(points, jobs):
        samples[label] = result.thread_samples
        values = [v for (_t, v) in result.thread_samples]
        stats[label] = {
            "mean": sum(values) / len(values) if values else 0.0,
            "min": min(values) if values else 0.0,
            "max": max(values) if values else 0.0,
            "spread": (max(values) - min(values)) if values else 0.0,
        }
    xs = [round(t, 2) for (t, _v) in samples["NettyBackend"]]
    series = {label: [v for (_t, v) in pts] for label, pts in samples.items()}
    text = render_series(
        "Figure 9: concurrently running threads over time (20kB, conc 100)",
        "t[s]", xs, series)
    summary = render_table(
        "Figure 9 summary", ["server", "mean", "min", "max", "spread"],
        [[label, round(s["mean"], 1), s["min"], s["max"], s["spread"]]
         for label, s in stats.items()])
    return ExhibitResult("fig09", "Running-thread dynamics",
                         text + "\n\n" + summary,
                         {"samples": samples, "stats": stats})


# ---------------------------------------------------------------------------
# Figure 13 — DoubleFaceNetty vs baselines across fanout and size
# ---------------------------------------------------------------------------

def fig13(quick: bool = True, seed: int = 42,
          jobs: Optional[int] = 1) -> ExhibitResult:
    """Normalized throughput (DoubleFaceNetty = 1.0) across fanout
    factors 1/5/10/20 at 0.1 kB and 20 kB, concurrency 20."""
    fanouts = [1, 5, 20] if quick else [1, 5, 10, 20]
    servers = (("DoubleFaceNetty", "doubleface"), ("NettyBackend", "netty"),
               ("AIOBackend", "aio"))
    sizes = ((100, "0.1kB"), (20 * KB, "20kB"))
    points: List[Tuple[Any, ExperimentConfig]] = []
    for size, size_label in sizes:
        slow = size >= 4 * KB
        duration = (3.0 if quick else 8.0) if slow else (1.5 if quick else 4.0)
        warmup = 1.5 if slow else 0.5
        for label, kind in servers:
            for fanout in fanouts:
                points.append(((size_label, label), ExperimentConfig(
                    server=kind, concurrency=20, fanout=fanout,
                    response_size=size, warmup=warmup, duration=duration,
                    seed=seed, keep_selector_stats=False)))
    throughput: Dict[str, Dict[str, List[float]]] = {
        size_label: {label: [] for label, _kind in servers}
        for _size, size_label in sizes}
    for (size_label, label), result in _run_points(points, jobs):
        throughput[size_label][label].append(result.throughput)
    sections = []
    data = {}
    for _size, size_label in sizes:
        series = throughput[size_label]
        norm = normalize(series, "DoubleFaceNetty")
        data[size_label] = {"throughput": series, "normalized": norm}
        sections.append(render_series(
            f"Figure 13 ({size_label}): normalized throughput "
            "(DoubleFaceNetty = 1.0)", "fanout", fanouts, norm))
    return ExhibitResult("fig13", "DoubleFaceAD throughput comparison",
                         "\n\n".join(sections),
                         {"fanout": fanouts, **data})


# ---------------------------------------------------------------------------
# Figure 14 — CPU utilisation under RUBBoS-style open workload
# ---------------------------------------------------------------------------

def fig14(quick: bool = True, seed: int = 42,
          jobs: Optional[int] = 1) -> ExhibitResult:
    """CPU utilisation vs. number of emulated users (fanout 20), for
    0.1 kB and 20 kB responses."""
    servers = (("DoubleFaceNetty", "doubleface"), ("NettyBackend", "netty"),
               ("AIOBackend", "aio"))
    cases = [
        # (size, label, users grid, think time, request business CPU)
        (100, "0.1kB", [100, 200, 300, 350], 0.32, 0.5e-3),
        (20 * KB, "20kB", [100, 200, 300], 6.5, 0.5e-3),
    ]
    duration = 6.0 if quick else 20.0
    grids: Dict[str, List[int]] = {}
    points: List[Tuple[Any, ExperimentConfig]] = []
    for size, size_label, users_grid, think, request_cpu in cases:
        if quick:
            users_grid = users_grid[1::2] if size_label == "0.1kB" else users_grid[::2]
        grids[size_label] = users_grid
        for label, kind in servers:
            for users in users_grid:
                points.append(((size_label, label), ExperimentConfig(
                    server=kind, workload="open", users=users,
                    think_time=think, fanout=20, response_size=size,
                    warmup=2.0, duration=duration, seed=seed,
                    keep_selector_stats=False,
                    params={"request_cpu": request_cpu})))
    cpu_util: Dict[str, Dict[str, List[float]]] = {
        size_label: {label: [] for label, _kind in servers}
        for _size, size_label, *_rest in cases}
    for (size_label, label), result in _run_points(points, jobs):
        cpu_util[size_label][label].append(
            round(100 * result.cpu_utilization, 1))
    sections = []
    data = {}
    for _size, size_label, *_rest in cases:
        data[size_label] = {"users": grids[size_label],
                            "cpu_util": cpu_util[size_label]}
        sections.append(render_series(
            f"Figure 14 ({size_label}): CPU utilisation [%] vs users "
            "(fanout 20)", "users", grids[size_label], cpu_util[size_label]))
    return ExhibitResult("fig14", "CPU overhead comparison",
                         "\n\n".join(sections), data)


# ---------------------------------------------------------------------------
# Figures 15/16/17 — percentile response time with the scheduler
# ---------------------------------------------------------------------------

#: Percentiles reported for the tail-latency exhibits.
TAIL_PERCENTILES = [50.0, 80.0, 90.0, 95.0, 99.0]

#: The four servers compared in Figures 15-17.
TAIL_SERVERS = (("w schedule", "doubleface"),
                ("w/o schedule", "doubleface-fifo"),
                ("AIOBackend", "aio"),
                ("NettyBackend", "netty"))


def _tail_exhibit(exhibit: str, title: str, lfan: int, sfan: int,
                  size: int, large_shards: bool, quick: bool, seed: int,
                  users: int = 600, think: float = 5.2,
                  request_cpu: float = 0.3e-3,
                  request_cpu_cv: float = 0.5,
                  response_cpu: float = 1.2e-3,
                  assemble_cpu: float = 0.3e-3,
                  jobs: Optional[int] = 1) -> ExhibitResult:
    duration = 15.0 if quick else 40.0
    # RUBBoS-style pages do real per-sub-result business work (fragment
    # handling dominates), datastore service times are heavy-tailed
    # (service_cv=2.5: the shard "variety" that motivates the paper's
    # scheduler), and the app server is reported in its single-core
    # configuration, where reactor-thread contention — the effect under
    # study — is sharpest.
    points = [(label, ExperimentConfig(
        server=kind, workload="open", users=users, think_time=think,
        lfan=lfan, sfan=sfan, response_size=size, reactors=1,
        large_shards=large_shards, warmup=4.0, duration=duration,
        seed=seed, keep_selector_stats=False,
        # Full tail windows record millions of latency samples; the
        # P-squared sketch bounds memory.  Quick runs stay exact so the
        # regression tests pin exact-mode numbers.
        latency_sketch=not quick,
        params={"app_cores": 1,
                           "request_cpu": request_cpu,
                           "request_cpu_cv": request_cpu_cv,
                           "response_base_cost": response_cpu,
                           "assemble_base_cost": assemble_cpu,
                           "service_cv": 2.5}))
        for label, kind in TAIL_SERVERS]
    results = dict(_run_points(points, jobs))
    series = {label: [1e3 * r.percentiles[q] for q in TAIL_PERCENTILES]
              for label, r in results.items()}
    text = render_series(
        f"{title}: percentile response time [ms]",
        "pctl", TAIL_PERCENTILES, series)
    summary = render_table(
        f"{title}: summary", ["server", "tput [req/s]", "p99 [ms]",
                              "CPU [%]"],
        [[label, round(r.throughput), round(1e3 * r.percentiles[99.0], 1),
          round(100 * r.cpu_utilization)] for label, r in results.items()])
    return ExhibitResult(
        exhibit, title, text + "\n\n" + summary,
        {label: {"p99": r.percentiles[99.0],
                 "p95": r.percentiles[95.0],
                 "p50": r.percentiles[50.0],
                 "throughput": r.throughput,
                 "cpu": r.cpu_utilization}
         for label, r in results.items()})


def fig15(quick: bool = True, seed: int = 42,
          jobs: Optional[int] = 1) -> ExhibitResult:
    """Percentile response time on YCSB with the fanout-aware scheduler:
    (a) Lfan/Sfan = 5/3 and (b) 7/1."""
    a = _tail_exhibit("fig15a", "Figure 15(a) Lfan/Sfan=5/3", 5, 3, 100,
                      False, quick, seed, jobs=jobs)
    b = _tail_exhibit("fig15b", "Figure 15(b) Lfan/Sfan=7/1", 7, 1, 100,
                      False, quick, seed, jobs=jobs)
    return ExhibitResult("fig15", "Scheduler tail-latency gains",
                         a.text + "\n\n" + b.text,
                         {"a": a.data, "b": b.data})


def fig16(quick: bool = True, seed: int = 42,
          jobs: Optional[int] = 1) -> ExhibitResult:
    """Figure 15(a)'s experiment with 10 GB shards (slower datastore
    service times)."""
    return _tail_exhibit("fig16", "Figure 16: large (10GB) shards",
                         5, 3, 100, True, quick, seed, jobs=jobs)


def fig17(quick: bool = True, seed: int = 42,
          jobs: Optional[int] = 1) -> ExhibitResult:
    """Percentile response time on the DBLP dataset (30 kB tuples)."""
    # DBLP tuples are 30 kB: payload decoding itself is the heavy
    # per-response work, no extra business cost is layered on.
    return _tail_exhibit("fig17", "Figure 17: DBLP dataset", 5, 3,
                         30 * KB, False, quick, seed,
                         users=600, think=8.4, request_cpu=0.3e-3,
                         response_cpu=12.0e-6, assemble_cpu=0.3e-3,
                         jobs=jobs)


# ---------------------------------------------------------------------------
# Fault exhibits — tail latency under failure (repro.faults)
# ---------------------------------------------------------------------------

#: The slow-shard fault both fault exhibits inject: two shards serve
#: 100x slower during "brown-out" windows covering ~30% of the run, so
#: a fanout-5 request over 20 shards hits an active slow shard often
#: enough to wreck p99 (~10x p50) while barely moving p50.
FAULT_SLOW_SHARDS = FaultConfig(
    slow_shards=2, slow_factor=100.0, slow_mean_on=0.3, slow_mean_off=0.7)

#: Per-sub-query deadline / retry budget shared by the resilient
#: policies below (calibrated well above the healthy sub-query tail,
#: well below the 30x brown-out service time).
_FAULT_DEADLINE = 5e-3
_FAULT_RETRY = dict(subquery_deadline=_FAULT_DEADLINE, max_retries=3,
                    backoff_base=0.5e-3, backoff_cap=2e-3)

#: Servers compared under failure.
FAULT_SERVERS = (("DoubleFaceNetty", "doubleface"),
                 ("NettyBackend", "netty"),
                 ("AIOBackend", "aio"))


def _fault_point(kind: str, resilience: Optional[ResilienceConfig],
                 quick: bool, seed: int, **kw) -> ExperimentConfig:
    return ExperimentConfig(
        server=kind, concurrency=20, fanout=5, response_size=100,
        warmup=0.5, duration=1.5 if quick else 6.0, seed=seed,
        faults=FAULT_SLOW_SHARDS, resilience=resilience,
        replicas_per_shard=2, keep_selector_stats=False, **kw)


def _fault_summary(result) -> Dict[str, float]:
    counters = result.fault_counters
    return {
        "p50": result.percentiles[50.0],
        "p99": result.percentiles[99.0],
        "throughput": result.throughput,
        "retries": counters.get("resilience.retries", 0.0),
        "hedges": counters.get("resilience.hedges", 0.0),
        "hedge_wins": counters.get("resilience.hedge_wins", 0.0),
        "retry_wins": counters.get("resilience.retry_wins", 0.0),
        "deadline_misses": counters.get("resilience.deadline_misses", 0.0),
        "failovers": counters.get("resilience.failovers", 0.0),
        "failed_subqueries": counters.get(
            "resilience.failed_subqueries", 0.0),
        "degraded": counters.get("server.completed.degraded", 0.0),
    }


def fault_tail(quick: bool = True, seed: int = 42,
               jobs: Optional[int] = 1) -> ExhibitResult:
    """Tail latency under a slow-shard fault, with and without driver
    resilience.

    Three architectures x three policies (no resilience / deadline+retry
    with replica failover / the same plus an adaptive p95 hedge) under
    :data:`FAULT_SLOW_SHARDS` with two replicas per shard.  The headline
    result the benchmark suite pins: hedging+retry recovers >= 2x of the
    no-resilience p99.
    """
    policies = (
        ("no-resilience", None),
        ("retry", ResilienceConfig(**_FAULT_RETRY)),
        ("hedge+retry", ResilienceConfig(
            hedge_percentile=95.0, hedge_min_samples=50, **_FAULT_RETRY)),
    )
    points: List[Tuple[Any, ExperimentConfig]] = [
        ((server_label, policy_label),
         _fault_point(kind, policy, quick, seed))
        for server_label, kind in FAULT_SERVERS
        for policy_label, policy in policies]
    data: Dict[str, Dict[str, Dict[str, float]]] = {
        server_label: {} for server_label, _kind in FAULT_SERVERS}
    for (server_label, policy_label), result in _run_points(points, jobs):
        data[server_label][policy_label] = _fault_summary(result)
    policy_labels = [label for label, _p in policies]
    sections = []
    for server_label, _kind in FAULT_SERVERS:
        rows = [[label,
                 round(1e3 * data[server_label][label]["p50"], 2),
                 round(1e3 * data[server_label][label]["p99"], 2),
                 round(data[server_label][label]["throughput"]),
                 round(data[server_label][label]["retries"]),
                 round(data[server_label][label]["hedges"]),
                 round(data[server_label][label]["failed_subqueries"])]
                for label in policy_labels]
        sections.append(render_table(
            f"Fault tail ({server_label}): slow-shard brown-out, "
            "2 replicas/shard",
            ["policy", "p50 [ms]", "p99 [ms]", "tput [req/s]",
             "retries", "hedges", "failed"], rows))
    return ExhibitResult("fault_tail",
                         "Tail latency under a slow-shard fault",
                         "\n\n".join(sections), data)


def hedging(quick: bool = True, seed: int = 42,
            jobs: Optional[int] = 1) -> ExhibitResult:
    """Hedging-policy sweep on DoubleFaceNetty under the slow-shard
    fault: no hedge, fixed hedge delays, and the adaptive p95 hedge,
    all on top of the same deadline+retry safety net."""
    policies = (
        ("no-hedge", ResilienceConfig(**_FAULT_RETRY)),
        ("hedge-2ms", ResilienceConfig(hedge_delay=2e-3, **_FAULT_RETRY)),
        ("hedge-4ms", ResilienceConfig(hedge_delay=4e-3, **_FAULT_RETRY)),
        ("hedge-p95", ResilienceConfig(
            hedge_percentile=95.0, hedge_min_samples=50, **_FAULT_RETRY)),
    )
    points: List[Tuple[Any, ExperimentConfig]] = [
        (label, _fault_point("doubleface", policy, quick, seed))
        for label, policy in policies]
    data: Dict[str, Dict[str, float]] = {}
    for label, result in _run_points(points, jobs):
        data[label] = _fault_summary(result)
    rows = [[label,
             round(1e3 * data[label]["p50"], 2),
             round(1e3 * data[label]["p99"], 2),
             round(data[label]["throughput"]),
             round(data[label]["hedges"]),
             round(data[label]["hedge_wins"]),
             round(data[label]["retries"])]
            for label, _policy in policies]
    text = render_table(
        "Hedging policies (DoubleFaceNetty, slow-shard brown-out)",
        ["policy", "p50 [ms]", "p99 [ms]", "tput [req/s]", "hedges",
         "hedge wins", "retries"], rows)
    return ExhibitResult("hedging", "Hedged-request policy sweep", text,
                         data)


#: The correlated fault the open-workload exhibit injects: one of two
#: racks flips through short rack-wide brown-out windows (~50% duty,
#: 150 ms mean) where every replica it hosts serves 100x slower.  Under
#: the round-robin rack placement a 2-replica shard always spans both
#: racks, so for every shard exactly one replica stays healthy —
#: routing policy, not luck, decides whether the driver finds it.
FAULT_RACK = FaultConfig(
    rack_slow_racks=1, rack_slow_factor=100.0,
    rack_slow_mean_on=0.15, rack_slow_mean_off=0.15)

#: Racks / replicas the open-workload fault exhibit builds.
FAULT_OPEN_RACKS = 2

#: All five architectures face the rack fault.
FAULT_OPEN_SERVERS = (("DoubleFaceNetty", "doubleface"),
                      ("NettyBackend", "netty"),
                      ("AIOBackend", "aio"),
                      ("Type1Async", "type1"),
                      ("ThreadBased", "threadbased"))


def fault_open(quick: bool = True, seed: int = 42,
               jobs: Optional[int] = 1) -> ExhibitResult:
    """Open (RUBBoS-style Poisson) workload under a rack-wide fault.

    Every architecture runs three driver policies under
    :data:`FAULT_RACK` with two replicas per shard spanning two racks:

    - ``primary`` — primary-only routing, no resilience (the seed
      repo's behaviour);
    - ``primary+retry`` — primary-only routing with deadline+retry
      failover;
    - ``replica+hedge`` — least-outstanding replica routing plus the
      adaptive p95 hedge on top of the same retry budget.

    The headline the benchmark suite pins: ``replica+hedge`` beats
    ``primary`` on p99 by a fixed margin on every architecture, because
    least-outstanding routing drains load away from the browned-out
    rack *before* the deadline machinery has to fire.
    """
    policies = (
        ("primary", "primary", None),
        ("primary+retry", "primary", ResilienceConfig(**_FAULT_RETRY)),
        ("replica+hedge", "least_outstanding", ResilienceConfig(
            hedge_percentile=95.0, hedge_min_samples=50, **_FAULT_RETRY)),
    )
    points: List[Tuple[Any, ExperimentConfig]] = [
        ((server_label, policy_label), ExperimentConfig(
            server=kind, workload="open", users=150, think_time=1.0,
            fanout=5, response_size=100,
            warmup=0.5, duration=1.5 if quick else 6.0, seed=seed,
            faults=FAULT_RACK, resilience=resilience,
            replicas_per_shard=2, racks=FAULT_OPEN_RACKS,
            replica_policy=replica_policy, keep_selector_stats=False))
        for server_label, kind in FAULT_OPEN_SERVERS
        for policy_label, replica_policy, resilience in policies]
    data: Dict[str, Dict[str, Dict[str, float]]] = {
        server_label: {} for server_label, _kind in FAULT_OPEN_SERVERS}
    for (server_label, policy_label), result in _run_points(points, jobs):
        summary = _fault_summary(result)
        summary["rack_slowed"] = result.fault_counters.get(
            "faults.rack_slowed_queries", 0.0)
        data[server_label][policy_label] = summary
    policy_labels = [label for label, _rp, _res in policies]
    sections = []
    for server_label, _kind in FAULT_OPEN_SERVERS:
        rows = [[label,
                 round(1e3 * data[server_label][label]["p50"], 2),
                 round(1e3 * data[server_label][label]["p99"], 2),
                 round(data[server_label][label]["throughput"]),
                 round(data[server_label][label]["rack_slowed"]),
                 round(data[server_label][label]["hedges"]),
                 round(data[server_label][label]["failovers"])]
                for label in policy_labels]
        sections.append(render_table(
            f"Rack fault, open workload ({server_label}): "
            "2 replicas/shard over 2 racks",
            ["policy", "p50 [ms]", "p99 [ms]", "tput [req/s]",
             "slowed", "hedges", "failovers"], rows))
    return ExhibitResult("fault_open",
                         "Open-workload tail latency under a rack fault",
                         "\n\n".join(sections), data)


# ---------------------------------------------------------------------------
# EWMA replica routing — latency-aware vs queue-aware under RTT asymmetry
# ---------------------------------------------------------------------------

def ewma_route(quick: bool = True, seed: int = 42,
               jobs: Optional[int] = 1) -> ExhibitResult:
    """Latency-aware (EWMA) replica routing vs least-outstanding under
    cross-rack RTT asymmetry, with span tracing attributing the gap.

    Two replicas per shard span two racks; round-robin placement puts
    exactly one replica of every shard in the app server's rack, the
    other across the spine (+0.5 ms each way).  ``least_outstanding``
    balances in-flight *counts* and so keeps paying the spine tax on
    half its sends; ``ewma`` learns each shard's near replica from the
    observed response latency and routes there.  Every point runs
    traced, so the critical-path breakdown shows the difference landing
    exactly in the ``network`` category.
    """
    duration = 1.5 if quick else 6.0
    policies = ("primary", "least_outstanding", "ewma")
    points: List[Tuple[Any, ExperimentConfig]] = [
        (policy, ExperimentConfig(
            server="doubleface", concurrency=20, fanout=5,
            response_size=100, warmup=0.5, duration=duration, seed=seed,
            replicas_per_shard=2, racks=2, replica_policy=policy,
            cross_rack_extra_latency=0.5e-3,
            trace=True, trace_sample=0.25, trace_exemplars=3,
            keep_selector_stats=False, label=policy))
        for policy in policies]
    data: Dict[str, Any] = {}
    summaries: Dict[str, Any] = {}
    for label, result in _run_points(points, jobs):
        data[label] = {
            "p50": result.percentiles[50.0],
            "p99": result.percentiles[99.0],
            "mean_rt": result.mean_rt,
            "throughput": result.throughput,
        }
        summaries[label] = result.trace_summary
    rows = [[label,
             round(1e3 * data[label]["p50"], 3),
             round(1e3 * data[label]["p99"], 3),
             round(data[label]["throughput"])]
            for label in policies]
    text = render_table(
        "EWMA routing: cross-rack asymmetry (2 replicas over 2 racks, "
        "+0.5ms spine)",
        ["policy", "p50 [ms]", "p99 [ms]", "tput [req/s]"], rows)
    text += "\n\n" + render_breakdown(
        "EWMA routing: critical-path breakdown (mean per request)",
        summaries)
    return ExhibitResult("ewma_route", "Latency-aware replica routing",
                         text, {**data, "trace_summaries": summaries})


# ---------------------------------------------------------------------------
# Attribution hedging — per-shard learned hedge delays vs one global window
# ---------------------------------------------------------------------------

def adaptive_hedge(quick: bool = True, seed: int = 42,
                   jobs: Optional[int] = 1) -> ExhibitResult:
    """Per-shard attribution hedging vs the global-percentile hedge
    under a slow-shard brown-out on a heterogeneous topology.

    Two replicas per shard span two racks with a +0.5 ms spine tax
    (``cross_rack_extra_latency``), so half the shards' primary attempts
    are structurally slower than the other half's — on top of
    :data:`FAULT_SLOW_SHARDS` browning out two shards at 100x.  The
    global p95 window has to pick one delay for both shard populations;
    ``hedge_policy="attribution"`` keeps a per-(shard, replica)
    attempt-latency digest and hedges each shard at its *own* p95.
    Every point runs traced, so the live critical-path breakdown trims
    the network + selector-wait share off the learned delays, and the
    exhibit prints what each policy converged to per shard.

    The headline ``benchmarks/bench_fault_tail.py --check`` pins:
    attribution's p99 rescue over retry-only is at least the global
    policy's.
    """
    policies = (
        ("retry-only", ResilienceConfig(**_FAULT_RETRY)),
        ("global-p95", ResilienceConfig(
            hedge_percentile=95.0, hedge_min_samples=50, **_FAULT_RETRY)),
        ("attribution", ResilienceConfig(
            hedge_percentile=95.0, hedge_min_samples=50,
            hedge_policy="attribution", **_FAULT_RETRY)),
    )
    points: List[Tuple[Any, ExperimentConfig]] = [
        (label, _fault_point(
            "doubleface", policy, quick, seed,
            racks=2, cross_rack_extra_latency=0.5e-3,
            trace=True, trace_sample=0.25, trace_exemplars=3,
            label=label))
        for label, policy in policies]
    data: Dict[str, Any] = {}
    summaries: Dict[str, Any] = {}
    delays: Dict[str, Dict[int, float]] = {}
    for label, result in _run_points(points, jobs):
        summary = _fault_summary(result)
        summary["hedge_clamped"] = result.fault_counters.get(
            "resilience.hedge_clamped", 0.0)
        data[label] = summary
        summaries[label] = result.trace_summary
        delays[label] = result.hedge_delays
    labels = [label for label, _policy in policies]
    rows = [[label,
             round(1e3 * data[label]["p50"], 2),
             round(1e3 * data[label]["p99"], 2),
             round(data[label]["throughput"]),
             round(data[label]["hedges"]),
             round(data[label]["hedge_wins"]),
             round(data[label]["hedge_clamped"])]
            for label in labels]
    text = render_table(
        "Adaptive hedging (DoubleFaceNetty): slow-shard brown-out + "
        "cross-rack asymmetry",
        ["policy", "p50 [ms]", "p99 [ms]", "tput [req/s]", "hedges",
         "hedge wins", "clamped"], rows)
    text += "\n\n" + render_breakdown(
        "Adaptive hedging: critical-path breakdown (mean per request)",
        summaries, hedge_delays=delays)
    return ExhibitResult(
        "adaptive_hedge", "Attribution-driven per-shard hedge delays",
        text, {**data, "trace_summaries": summaries,
               "hedge_delays": delays})


#: Registry used by the CLI and the benchmark suite.
EXHIBITS: Dict[str, Callable[..., ExhibitResult]] = {
    "fig04": fig04, "fig05": fig05, "fig07": fig07, "fig09": fig09,
    "fig13": fig13, "fig14": fig14, "fig15": fig15, "fig16": fig16,
    "fig17": fig17, "tab1": tab1, "tab2": tab2, "tab3": tab3,
    "fault_tail": fault_tail, "hedging": hedging, "fault_open": fault_open,
    "ewma_route": ewma_route, "adaptive_hedge": adaptive_hedge,
}


def run_exhibit(name: str, quick: bool = True, seed: int = 42,
                jobs: Optional[int] = 1,
                transport: Optional[str] = None,
                trace: bool = False, trace_sample: float = 0.01,
                trace_exemplars: int = 3,
                obs: bool = False,
                obs_period: float = DEFAULT_OBS_PERIOD) -> ExhibitResult:
    """Run one exhibit by name (``fig04`` ... ``tab3``).

    ``jobs`` is forwarded to the parallel runner: 1 = serial (default),
    N = fan the exhibit's experiment points over N worker processes,
    0/None = one worker per CPU.  ``transport`` picks the worker→parent
    result path (``"shm"`` / ``"pickle"`` / ``None`` = auto).  Results
    are identical for any combination.

    ``trace=True`` runs every point with span tracing at
    ``trace_sample`` probability: the exhibit's measured numbers are
    unchanged (tracing is observation-only), critical-path breakdown
    and flame tables are appended to the text, and the per-point
    summaries / flame aggregations / phase windows land in
    ``result.data["trace_summaries"]`` / ``["flames"]`` /
    ``["trace_phases"]`` (feed them to
    :func:`repro.trace.write_chrome_trace` /
    :func:`repro.trace.write_flame` for timelines and flame graphs).

    ``obs=True`` runs every point with the telemetry ticker sampling
    gauges each ``obs_period`` simulated seconds (also
    observation-only); per-point Prometheus snapshots land in
    ``result.data["prometheus"]``.
    """
    global _TRANSPORT, _TRACE, _OBS
    if name not in EXHIBITS:
        raise KeyError(f"unknown exhibit {name!r}; choose from "
                       f"{sorted(EXHIBITS)}")
    previous = _TRANSPORT
    previous_trace = _TRACE
    previous_obs = _OBS
    _TRANSPORT = transport
    if trace:
        _TRACE = {"sample": trace_sample, "exemplars": trace_exemplars,
                  "summaries": {}, "flames": {}, "phases": {}}
    if obs:
        _OBS = {"period": obs_period, "snapshots": {}}
    try:
        result = EXHIBITS[name](quick=quick, seed=seed, jobs=jobs)
        if trace and _TRACE["summaries"]:
            result.data.setdefault("trace_summaries", _TRACE["summaries"])
            result.text += "\n\n" + render_breakdown(
                f"{name}: critical-path breakdown (mean per request, "
                f"{100 * trace_sample:g}% sampled)",
                _TRACE["summaries"])
        if trace and _TRACE["flames"]:
            result.data.setdefault("flames", _TRACE["flames"])
            result.data.setdefault("trace_phases", _TRACE["phases"])
            result.text += "\n\n" + render_flame(
                f"{name}: heaviest flame paths (self time, "
                f"{100 * trace_sample:g}% sampled)",
                _TRACE["flames"])
        if obs and _OBS["snapshots"]:
            result.data.setdefault("prometheus", _OBS["snapshots"])
        return result
    finally:
        _TRANSPORT = previous
        _TRACE = previous_trace
        _OBS = previous_obs


#: Rough relative wall-clock cost of each exhibit (quick mode).  Used
#: only to start the expensive exhibits first so their long tail-window
#: points enter the shared queue early; correctness never depends on it.
_EXHIBIT_COST: Dict[str, int] = {
    "fig15": 100, "fig16": 60, "fig17": 60, "fig14": 40, "fig05": 30,
    "fig13": 20, "fig04": 15, "fig09": 10, "fig07": 8,
    "fault_tail": 6, "hedging": 4, "fault_open": 8, "ewma_route": 4,
    "adaptive_hedge": 4,
    "tab1": 5, "tab2": 4, "tab3": 4,
}


def run_exhibits(names: Iterable[str], quick: bool = True, seed: int = 42,
                 jobs: Optional[int] = 1,
                 transport: Optional[str] = None,
                 trace: bool = False, trace_sample: float = 0.01,
                 trace_exemplars: int = 3,
                 obs: bool = False,
                 obs_period: float = DEFAULT_OBS_PERIOD
                 ) -> Dict[str, ExhibitResult]:
    """Run several exhibits, interleaving their points over one pool.

    With ``jobs > 1`` (or 0/None = per-CPU) every exhibit runs on its
    own submitter thread and all their (exhibit, key, config) points
    feed a single shared :class:`BatchExecutor` — which also owns the
    result transport (``transport``: shm / pickle / None = auto), so
    every exhibit's columns flow through one shared ring.  The 15 s
    tail-window points of fig15-17 overlap with the cheap table grids
    instead of each exhibit draining the pool in turn.  ``jobs=1``
    falls back to running the exhibits serially in-process.  Either
    way each exhibit's result is identical to a standalone
    :func:`run_exhibit` call with the same ``quick``/``seed``.
    """
    global _BATCH_RUNNER
    names = list(names)
    for name in names:
        if name not in EXHIBITS:
            raise ValueError(f"unknown exhibit {name!r}; choose from "
                             f"{sorted(EXHIBITS)}")
    if trace or obs or resolve_jobs(jobs) <= 1 or len(names) <= 1:
        # Traced/observed runs stay serial per exhibit: the
        # summary/snapshot-collection globals are per-exhibit state
        # that must not interleave across submitter threads (each
        # exhibit still fans its own points over ``jobs`` workers).
        return {name: run_exhibit(name, quick=quick, seed=seed, jobs=jobs,
                                  transport=transport, trace=trace,
                                  trace_sample=trace_sample,
                                  trace_exemplars=trace_exemplars,
                                  obs=obs, obs_period=obs_period)
                for name in names}
    results: Dict[str, ExhibitResult] = {}
    errors: Dict[str, BaseException] = {}

    def submit(name: str) -> None:
        try:
            results[name] = EXHIBITS[name](quick=quick, seed=seed, jobs=1)
        except BaseException as exc:  # noqa: BLE001 - reraised below
            errors[name] = exc

    heavy_first = sorted(names, key=lambda n: -_EXHIBIT_COST.get(n, 1))
    with BatchExecutor(jobs, transport=transport) as executor:
        _BATCH_RUNNER = executor.run
        try:
            threads = [threading.Thread(target=submit, args=(name,),
                                        name=f"exhibit-{name}")
                       for name in heavy_first]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            _BATCH_RUNNER = None
    if errors:
        name = sorted(errors)[0]
        raise RuntimeError(f"exhibit {name!r} failed") from errors[name]
    return {name: results[name] for name in names}
