"""Command-line entry point: regenerate any paper exhibit.

Usage::

    repro-experiments --exhibit fig13
    repro-experiments --exhibit all --full
    python -m repro.experiments --exhibit tab2 --seed 7
"""

from __future__ import annotations

import argparse
import sys
import time

from .figures import EXHIBITS, run_exhibit, run_exhibits

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the DoubleFaceAD paper's figures and "
                    "tables on the simulated testbed.")
    parser.add_argument(
        "--exhibit", default="all",
        help="exhibit name (%s) or 'all'" % ", ".join(sorted(EXHIBITS)))
    parser.add_argument(
        "--full", action="store_true",
        help="full measurement windows and grids (slower, smoother)")
    parser.add_argument("--seed", type=int, default=42,
                        help="root RNG seed (default 42)")
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the experiment grid (default 1 = "
             "serial; 0 = one per CPU).  Results are identical for any "
             "N — points fan out but merge in declared order.")
    parser.add_argument(
        "--transport", choices=["shm", "pickle"], default=None,
        help="worker→parent result transport with --jobs > 1: 'shm' "
             "moves results as packed float columns through a "
             "shared-memory ring (default where available), 'pickle' "
             "is the classic per-result pickle over the pool pipe.  "
             "Results are byte-identical either way; irrelevant with "
             "--jobs 1.")
    parser.add_argument(
        "--trace", action="store_true",
        help="run every experiment point with deterministic span "
             "tracing: appends a critical-path breakdown table to each "
             "exhibit and collects tail exemplar traces.  Tracing is "
             "observation-only — the measured numbers are identical "
             "with or without it.")
    parser.add_argument(
        "--trace-sample", type=float, default=0.01, metavar="P",
        help="head-based sampling probability for --trace "
             "(default 0.01 = 1%% of requests)")
    parser.add_argument(
        "--trace-exemplars", type=int, default=3, metavar="K",
        help="with --trace: slowest-request exemplar traces kept per "
             "request class (default 3)")
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="with --trace: write the collected exemplar traces as "
             "Chrome trace_event JSON to PATH (open in "
             "chrome://tracing or https://ui.perfetto.dev), with "
             "workload phases (warmup / measure / fault windows) as "
             "annotation tracks.  Parent directories are created.")
    parser.add_argument(
        "--flame-out", metavar="PATH", default=None,
        help="with --trace: write the cross-request flame aggregation "
             "to PATH — speedscope JSON when PATH ends in .json "
             "(open at https://speedscope.app), flamegraph.pl "
             "collapsed-stack text otherwise.  Parent directories are "
             "created.")
    parser.add_argument(
        "--obs", action="store_true",
        help="run every experiment point with phase-annotated live "
             "telemetry: a simulated-time ticker samples gauges "
             "(queue depths, hedge/retry rates, replica estimates, "
             "CPU run queue).  Observation-only — the measured "
             "numbers are identical with or without it.")
    parser.add_argument(
        "--obs-period", type=float, default=0.01, metavar="S",
        help="with --obs: gauge sampling period in simulated seconds "
             "(default 0.01)")
    parser.add_argument(
        "--prom-out", metavar="PATH", default=None,
        help="with --obs: write end-of-run Prometheus text-format "
             "snapshots for every experiment point to PATH.  Parent "
             "directories are created.")
    parser.add_argument(
        "--profile", metavar="PATH", default=None,
        help="profile the run under cProfile, dump raw stats to PATH "
             "(load with pstats or snakeviz) and print the top 25 "
             "cumulative-time functions.  Profiles the parent process "
             "only; use with --jobs 1 to capture simulation hot paths.")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.jobs < 0:
        print(f"--jobs must be >= 0, got {args.jobs}", file=sys.stderr)
        return 2
    if not 0.0 < args.trace_sample <= 1.0:
        print(f"--trace-sample must be in (0, 1], got {args.trace_sample}",
              file=sys.stderr)
        return 2
    if args.trace_exemplars < 1:
        print(f"--trace-exemplars must be >= 1, got {args.trace_exemplars}",
              file=sys.stderr)
        return 2
    if args.trace_out and not args.trace:
        print("--trace-out requires --trace", file=sys.stderr)
        return 2
    if args.flame_out and not args.trace:
        print("--flame-out requires --trace", file=sys.stderr)
        return 2
    if args.obs_period <= 0:
        print(f"--obs-period must be positive, got {args.obs_period}",
              file=sys.stderr)
        return 2
    if args.prom_out and not args.obs:
        print("--prom-out requires --obs", file=sys.stderr)
        return 2
    if args.profile:
        return _profiled_main(args)
    return _run(args)


def _profiled_main(args) -> int:
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        status = _run(args)
    finally:
        profiler.disable()
        profiler.dump_stats(args.profile)
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.sort_stats("cumulative").print_stats(25)
        print(f"[profile written to {args.profile}]")
    return status


def _write_trace_out(path: str, results) -> None:
    """Merge every exhibit's collected trace summaries (and phase
    windows) into one Chrome trace_event file."""
    from ..trace import write_chrome_trace
    summaries = {}
    phases = {}
    for name, result in results:
        for label, summary in result.data.get("trace_summaries",
                                              {}).items():
            if summary is not None:
                summaries[f"{name}/{label}"] = summary
        for label, windows in result.data.get("trace_phases", {}).items():
            if windows:
                phases[f"{name}/{label}"] = windows
    write_chrome_trace(path, summaries, phases=phases)
    print(f"[trace written to {path}: {len(summaries)} summaries, "
          f"{len(phases)} phase tracks]")


def _write_flame_out(path: str, results) -> None:
    """Merge every exhibit's flame aggregations into one export."""
    from ..trace import write_flame
    flames = {}
    for name, result in results:
        for label, flame in result.data.get("flames", {}).items():
            if flame is not None:
                flames[f"{name}/{label}"] = flame
    kind = write_flame(path, flames)
    print(f"[flame ({kind}) written to {path}: {len(flames)} runs]")


def _write_prom_out(path: str, results) -> None:
    """Concatenate every exhibit's Prometheus snapshots into one page."""
    from ..obs import write_prometheus
    snapshots = {}
    for name, result in results:
        for label, text in result.data.get("prometheus", {}).items():
            snapshots[f"{name}/{label}"] = text
    write_prometheus(path, snapshots)
    print(f"[prometheus snapshot written to {path}: "
          f"{len(snapshots)} runs]")


def _write_artifacts(args, results) -> int:
    """Write every requested export; one clear line + exit 1 on I/O
    failure (missing parents are created, unwritable paths are not)."""
    writers = [(args.trace_out, _write_trace_out),
               (args.flame_out, _write_flame_out),
               (args.prom_out, _write_prom_out)]
    for path, writer in writers:
        if not path:
            continue
        try:
            writer(path, results)
        except OSError as exc:
            print(f"cannot write {path}: {exc.strerror or exc}",
                  file=sys.stderr)
            return 1
    return 0


def _run(args) -> int:
    names = sorted(EXHIBITS) if args.exhibit == "all" else [args.exhibit]
    for name in names:
        if name not in EXHIBITS:
            print(f"unknown exhibit {name!r}; choose from "
                  f"{sorted(EXHIBITS)} or 'all'", file=sys.stderr)
            return 2
    trace_kw = dict(trace=args.trace, trace_sample=args.trace_sample,
                    trace_exemplars=args.trace_exemplars,
                    obs=args.obs, obs_period=args.obs_period)
    if len(names) > 1 and args.jobs != 1:
        # Interleave every requested exhibit's points over one shared
        # pool: slow tail-window points overlap with cheap tables.
        started = time.time()
        results = run_exhibits(names, quick=not args.full, seed=args.seed,
                               jobs=args.jobs, transport=args.transport,
                               **trace_kw)
        elapsed = time.time() - started
        for name in names:
            print(results[name].text)
            print()
        print(f"[{len(names)} exhibits regenerated (interleaved, "
              f"jobs={args.jobs}) in {elapsed:.1f}s wall time]")
        return _write_artifacts(args, [(n, results[n]) for n in names])
    collected = []
    for name in names:
        started = time.time()
        result = run_exhibit(name, quick=not args.full, seed=args.seed,
                             jobs=args.jobs, transport=args.transport,
                             **trace_kw)
        elapsed = time.time() - started
        print(result.text)
        print(f"[{name} regenerated in {elapsed:.1f}s wall time]")
        print()
        collected.append((name, result))
    return _write_artifacts(args, collected)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
