"""Command-line entry point: regenerate any paper exhibit.

Usage::

    repro-experiments --exhibit fig13
    repro-experiments --exhibit all --full
    python -m repro.experiments --exhibit tab2 --seed 7
"""

from __future__ import annotations

import argparse
import sys
import time

from .figures import EXHIBITS, run_exhibit, run_exhibits

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the DoubleFaceAD paper's figures and "
                    "tables on the simulated testbed.")
    parser.add_argument(
        "--exhibit", default="all",
        help="exhibit name (%s) or 'all'" % ", ".join(sorted(EXHIBITS)))
    parser.add_argument(
        "--full", action="store_true",
        help="full measurement windows and grids (slower, smoother)")
    parser.add_argument("--seed", type=int, default=42,
                        help="root RNG seed (default 42)")
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the experiment grid (default 1 = "
             "serial; 0 = one per CPU).  Results are identical for any "
             "N — points fan out but merge in declared order.")
    parser.add_argument(
        "--transport", choices=["shm", "pickle"], default=None,
        help="worker→parent result transport with --jobs > 1: 'shm' "
             "moves results as packed float columns through a "
             "shared-memory ring (default where available), 'pickle' "
             "is the classic per-result pickle over the pool pipe.  "
             "Results are byte-identical either way; irrelevant with "
             "--jobs 1.")
    parser.add_argument(
        "--profile", metavar="PATH", default=None,
        help="profile the run under cProfile, dump raw stats to PATH "
             "(load with pstats or snakeviz) and print the top 25 "
             "cumulative-time functions.  Profiles the parent process "
             "only; use with --jobs 1 to capture simulation hot paths.")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.jobs < 0:
        print(f"--jobs must be >= 0, got {args.jobs}", file=sys.stderr)
        return 2
    if args.profile:
        return _profiled_main(args)
    return _run(args)


def _profiled_main(args) -> int:
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        status = _run(args)
    finally:
        profiler.disable()
        profiler.dump_stats(args.profile)
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.sort_stats("cumulative").print_stats(25)
        print(f"[profile written to {args.profile}]")
    return status


def _run(args) -> int:
    names = sorted(EXHIBITS) if args.exhibit == "all" else [args.exhibit]
    for name in names:
        if name not in EXHIBITS:
            print(f"unknown exhibit {name!r}; choose from "
                  f"{sorted(EXHIBITS)} or 'all'", file=sys.stderr)
            return 2
    if len(names) > 1 and args.jobs != 1:
        # Interleave every requested exhibit's points over one shared
        # pool: slow tail-window points overlap with cheap tables.
        started = time.time()
        results = run_exhibits(names, quick=not args.full, seed=args.seed,
                               jobs=args.jobs, transport=args.transport)
        elapsed = time.time() - started
        for name in names:
            print(results[name].text)
            print()
        print(f"[{len(names)} exhibits regenerated (interleaved, "
              f"jobs={args.jobs}) in {elapsed:.1f}s wall time]")
        return 0
    for name in names:
        started = time.time()
        result = run_exhibit(name, quick=not args.full, seed=args.seed,
                             jobs=args.jobs, transport=args.transport)
        elapsed = time.time() - started
        print(result.text)
        print(f"[{name} regenerated in {elapsed:.1f}s wall time]")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
