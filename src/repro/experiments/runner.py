"""Build and run one experiment: topology, workload, measurement.

``run_experiment`` is the single entry point used by every benchmark,
example, and test that wants a complete simulated run.  The flow:

1. Build the cost model (datastore-family tweaks + per-config overrides).
2. Build the cluster, the chosen server architecture, and the workload.
3. Run the warm-up period, mark the measurement window, run the window.
4. Collect every metric the paper's tables and figures need.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional

from ..core.doubleface import DoubleFaceServer
from ..core.scheduling import FanoutAwareScheduler, FifoScheduler
from ..datastore.cluster import DatastoreCluster
from ..drivers.aio_backend import AioBackendServer
from ..drivers.netty_backend import NettyBackendServer
from ..drivers.threadbased import ThreadBasedServer
from ..drivers.type1 import Type1AsyncServer
from ..faults import FaultSchedule, ResiliencePolicy
from ..obs import TelemetryTicker
from ..sim.kernel import Simulator
from ..sim.metrics import Metrics
from ..sim.params import CostParams
from ..sim.rng import RngStreams
from ..trace import FlameAccumulator, Tracer, build_flame, build_summary
from ..workload.closed_loop import ClosedLoopWorkload
from ..workload.open_loop import PoissonWorkload
from ..workload.profiles import lfan_sfan_profile, uniform_profile
from .config import ExperimentConfig, ExperimentResult

__all__ = ["run_experiment", "build_params", "PERCENTILES"]

#: Percentiles every result reports.
PERCENTILES = (50.0, 80.0, 90.0, 95.0, 99.0, 99.9)


def build_params(config: ExperimentConfig) -> CostParams:
    """Cost model for *config*: datastore-family presets + overrides."""
    params = CostParams()
    overrides: Dict = {}
    if config.datastore == "hbase":
        # HBase point reads traverse more layers (HFile blocks, region
        # server) than MongoDB's in-memory b-tree: slightly slower.
        overrides["point_lookup_mean"] = params.point_lookup_mean * 1.3
    if config.type1_pool_size is not None:
        overrides["type1_pool_size"] = config.type1_pool_size
    if config.aio_pool_max is not None:
        overrides["aio_pool_max"] = config.aio_pool_max
    overrides.update(config.params)
    if overrides:
        params = params.with_overrides(**overrides)
    return params


def _build_server(config: ExperimentConfig, sim: Simulator, metrics: Metrics,
                  params: CostParams, cluster: DatastoreCluster,
                  rng: RngStreams, resilience: Optional[ResiliencePolicy]):
    kind = config.server
    if kind == "threadbased":
        return ThreadBasedServer(sim, metrics, params, cluster, rng,
                                 resilience=resilience)
    if kind == "type1":
        return Type1AsyncServer(sim, metrics, params, cluster, rng,
                                resilience=resilience)
    if kind == "aio":
        return AioBackendServer(sim, metrics, params, cluster, rng,
                                resilience=resilience)
    if kind == "netty":
        return NettyBackendServer(sim, metrics, params, cluster, rng,
                                  backend_reactors=config.backend_reactors,
                                  resilience=resilience)
    if kind == "doubleface":
        return DoubleFaceServer(sim, metrics, params, cluster, rng,
                                reactors=config.reactors,
                                scheduler=FanoutAwareScheduler(),
                                resilience=resilience)
    if kind == "doubleface-fifo":
        return DoubleFaceServer(sim, metrics, params, cluster, rng,
                                reactors=config.reactors,
                                scheduler=FifoScheduler(),
                                resilience=resilience)
    raise ValueError(f"unknown server kind {kind!r}")


def _build_profile(config: ExperimentConfig):
    if config.lfan is not None and config.sfan is not None:
        return lfan_sfan_profile(config.lfan, config.sfan,
                                 config.response_size)
    return uniform_profile(config.fanout, config.response_size)


def _phase_hook(sim: Simulator, config: ExperimentConfig, faults):
    """Phase label for a request starting at time *t*.

    Base phase is ``warmup`` or ``measure``; every fault family active
    at *t* appends a ``+<family>`` suffix (e.g. ``measure+slow``), so
    the flame aggregation separates healthy from degraded behaviour.
    The hook runs at trace *finish* time, which is never earlier than
    the request's start, so advancing the fault tracks to ``sim.now``
    always realizes the windows the query may have overlapped.
    """
    warmup = config.warmup

    def phase_of(t: float) -> str:
        phase = "warmup" if t < warmup else "measure"
        if faults is not None:
            faults.advance(sim.now)
            for family in faults.families_at(t):
                phase += "+" + family
        return phase

    return phase_of


def _thread_sampler(sim: Simulator, cpu, metrics: Metrics, period: float):
    series = metrics.timeseries("cpu.runnable")
    while True:
        yield sim.timeout(period)
        series.append(sim.now, cpu.runnable_count)


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Run one configured experiment and return its measurements."""
    sim = Simulator()
    metrics = Metrics(latency_sketch=config.latency_sketch)
    params = build_params(config)
    rng = RngStreams(config.seed)
    faults = None
    if config.faults is not None and config.faults.active:
        faults = FaultSchedule(config.faults, rng, n_shards=config.n_shards,
                               racks=config.racks)
    if config.trace:
        # The sampler draws from its own named stream, so tracing a run
        # never perturbs any other stream's draw sequence — and an
        # untraced run creates no stream at all (byte-identical).
        sim.tracer = Tracer(rng.stream("trace.sample"),
                            sample_rate=config.trace_sample,
                            keep_exemplars=config.trace_exemplars)
        sim.tracer.flame = FlameAccumulator()
        sim.tracer.phase_of = _phase_hook(sim, config, faults)
    cluster = DatastoreCluster(
        sim, metrics, params, rng, n_shards=config.n_shards,
        large_shards=config.large_shards,
        remote=(config.datastore == "dynamodb"),
        name=config.datastore,
        replicas_per_shard=config.replicas_per_shard,
        racks=config.racks,
        replica_policy=config.replica_policy,
        faults=faults,
        cross_rack_extra_latency=config.cross_rack_extra_latency)
    resilience = None
    if config.resilience is not None and config.resilience.active:
        resilience = ResiliencePolicy(sim, metrics, config.resilience, rng,
                                      cluster)
    server = _build_server(config, sim, metrics, params, cluster, rng,
                           resilience)
    profile = _build_profile(config)
    if config.workload == "closed":
        workload = ClosedLoopWorkload(
            sim, metrics, params, server, profile, config.concurrency, rng)
    else:
        workload = PoissonWorkload(
            sim, metrics, params, server, profile, config.users,
            config.think_time, rng)
    server.start()
    workload.start()
    if config.thread_sample_period > 0:
        sim.process(_thread_sampler(sim, server.cpu, metrics,
                                    config.thread_sample_period),
                    name="thread-sampler")
    ticker = None
    if config.obs:
        # Observation-only: the ticker's events shift every later
        # event's sequence number uniformly, which preserves the
        # relative dispatch order of all simulation events — measured
        # results stay float-identical (asserted by tests).
        ticker = TelemetryTicker(sim, metrics, server,
                                 period=config.obs_period)
        ticker.start()

    # Warm-up, then the measurement window.
    sim.run(until=config.warmup)
    metrics.mark_window_start(sim.now)
    if sim.tracer is not None:
        # Drop warm-up aggregates; requests in flight across the
        # boundary keep their open stamps and complete normally.
        sim.tracer.reset(sim.now)
    load_start = server.cpu.load_snapshot()
    sim.run(until=config.warmup + config.duration)
    load_end = server.cpu.load_snapshot()

    phases = []
    if config.trace or config.obs:
        end = config.warmup + config.duration
        phases.append(("warmup", 0.0, config.warmup))
        phases.append(("measure", config.warmup, end))
        if faults is not None:
            phases.extend(faults.realized_windows(end))

    return _collect(config, sim, metrics, server, load_end - load_start,
                    ticker=ticker, phases=phases)


def _collect(config: ExperimentConfig, sim: Simulator, metrics: Metrics,
             server, load_integral: float, ticker=None,
             phases=()) -> ExperimentResult:
    now = sim.now
    window = config.duration
    rt = metrics.latency("client.rt")
    percentiles = {q: rt.percentile(q) for q in PERCENTILES}
    class_percentiles: Dict[str, Dict[float, float]] = {}
    for name, recorder in metrics.latencies.items():
        if name.startswith("client.rt.") and len(recorder) > 0:
            klass = name[len("client.rt."):]
            class_percentiles[klass] = {
                q: recorder.percentile(q) for q in PERCENTILES}

    selector_stats: List[Dict] = [s.stats() for s in server.selectors()]
    total_selects = sum(s["selects"] for s in selector_stats)
    if not config.keep_selector_stats:
        # The exhibit only reads the aggregates: don't ship the raw
        # dicts back through the worker-pool pickle.
        selector_stats = []
    thread_times, thread_values = array("d"), array("d")
    if "cpu.runnable" in metrics.series:
        thread_times, thread_values = metrics.series["cpu.runnable"].columns(
            metrics.window_start, now)
    latency_times, latency_values = array("d"), array("d")
    if config.keep_latency_samples:
        latency_times, latency_values = rt.window_columns()

    fault_counters = {
        name: metrics.count(name)
        for name in sorted(metrics.counters)
        if (name.startswith("resilience.") or name.startswith("faults.")
            or name == "server.completed.degraded")
    }

    return ExperimentResult(
        config=config,
        throughput=metrics.rate("client.completed", now),
        percentiles=percentiles,
        class_percentiles=class_percentiles,
        mean_rt=rt.mean(),
        cpu_utilization=server.cpu.utilization(),
        cpu_shares={cat: metrics.cpu.category_share(cat)
                    for cat in ("app", "lock", "thread_init", "select",
                                "syscall", "ctx_switch")},
        ctx_switches_per_sec=metrics.count("cpu.app.ctx_switches") / window,
        avg_running_threads=load_integral / window,
        selector_stats=selector_stats,
        selects_per_sec=total_selects / window,
        select_cpu_share=metrics.cpu.category_share("select"),
        pool_spawns=sum(v for k, v in
                        ((k, metrics.count(k)) for k in list(metrics.counters))
                        if k.startswith("pool.") and k.endswith(".spawned")),
        completed=metrics.count("client.completed"),
        window=window,
        thread_times=thread_times,
        thread_values=thread_values,
        latency_times=latency_times,
        latency_values=latency_values,
        fault_counters=fault_counters,
        trace_summary=(build_summary(sim.tracer)
                       if sim.tracer is not None else None),
        hedge_delays=(server.resilience.learned_delays()
                      if server.resilience is not None else {}),
        obs_names=ticker.board.names if ticker is not None else (),
        obs_times=ticker.board.times if ticker is not None else array("d"),
        obs_values=(list(ticker.board.columns())
                    if ticker is not None else []),
        phases=list(phases),
        flame=(build_flame(sim.tracer.flame)
               if sim.tracer is not None and sim.tracer.flame is not None
               else None),
    )
