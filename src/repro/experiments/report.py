"""Plain-text rendering of experiment results.

Every benchmark prints its exhibit through these helpers so the output
matches the paper's presentation: throughput-vs-concurrency series
(figures), normalized-throughput bars, percentile-response-time curves,
and the perf-style breakdown tables.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = ["render_table", "render_series", "render_breakdown",
           "render_hedge_delays", "render_flame", "fmt", "normalize"]


def fmt(value, width: int = 10, digits: int = 2) -> str:
    """Format one cell: numbers right-aligned, NaN as '-'."""
    if value is None:
        return "-".rjust(width)
    if isinstance(value, float):
        if math.isnan(value):
            return "-".rjust(width)
        if value == int(value) and abs(value) < 1e9 and digits == 0:
            return f"{int(value)}".rjust(width)
        return f"{value:.{digits}f}".rjust(width)
    return str(value).rjust(width)


def render_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence], widths: Optional[List[int]] = None
                 ) -> str:
    """An aligned ASCII table with a title rule."""
    rows = [list(r) for r in rows]
    if widths is None:
        widths = []
        for col in range(len(headers)):
            cells = [str(headers[col])] + [
                _plain(row[col]) for row in rows if col < len(row)]
            widths.append(max(len(c) for c in cells) + 2)
    lines = [title, "=" * len(title)]
    lines.append("".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    lines.append("".join("-" * w for w in widths))
    for row in rows:
        lines.append("".join(_plain(cell).rjust(w)
                             for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _plain(cell) -> str:
    if isinstance(cell, float):
        if math.isnan(cell):
            return "-"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.3f}"
    return str(cell)


def render_series(title: str, x_label: str, xs: Sequence,
                  series: Dict[str, Sequence[float]]) -> str:
    """A figure as a table: one x column, one column per curve."""
    headers = [x_label] + list(series.keys())
    rows = []
    for i, x in enumerate(xs):
        row = [x]
        for name in series:
            values = series[name]
            row.append(values[i] if i < len(values) else float("nan"))
        rows.append(row)
    return render_table(title, headers, rows)


def render_breakdown(title: str, summaries: Dict[str, dict],
                     hedge_delays: Optional[Dict[str, Dict[int, float]]]
                     = None) -> str:
    """Critical-path breakdown table from trace summaries.

    *summaries* maps a row label to one :func:`repro.trace.build_summary`
    dict; each (label, request class) pair becomes a row of
    mean-per-request milliseconds in every additive category, plus the
    mean response time they sum to.

    *hedge_delays* (label -> {shard: seconds}) optionally appends the
    per-shard hedge delays the attribution digest converged to, so a
    traced exhibit can show what the policy actually learned.
    """
    from ..trace import CATEGORIES
    headers = (["label", "class", "n", "rt [ms]"]
               + [f"{c} [ms]" for c in CATEGORIES])
    rows = []
    for label, summary in summaries.items():
        if summary is None:
            continue
        for klass in sorted(summary["classes"]):
            entry = summary["classes"][klass]
            count = entry["count"]
            if not count:
                continue
            rows.append(
                [label, klass, int(count),
                 round(1e3 * entry["rt_sum"] / count, 3)]
                + [round(1e3 * entry["breakdown"][c] / count, 3)
                   for c in CATEGORIES])
    out = render_table(title, headers, rows)
    if hedge_delays and any(hedge_delays.values()):
        out += "\n\n" + render_hedge_delays(
            f"{title} — learned per-shard hedge delays", hedge_delays)
    return out


def render_hedge_delays(title: str,
                        delays: Dict[str, Dict[int, float]]) -> str:
    """Per-shard learned hedge delays: one row per label, min/median/max
    across shards plus the per-shard millisecond values."""
    headers = ["label", "shards", "min [ms]", "med [ms]", "max [ms]",
               "per-shard [ms]"]
    rows = []
    for label, table in delays.items():
        if not table:
            continue
        values = sorted(table.values())
        med = values[len(values) // 2]
        per_shard = " ".join(
            f"{shard}:{1e3 * delay:.2f}"
            for shard, delay in sorted(table.items()))
        rows.append([label, len(values), round(1e3 * values[0], 3),
                     round(1e3 * med, 3), round(1e3 * values[-1], 3),
                     per_shard])
    return render_table(title, headers, rows)


def render_flame(title: str, flames: Dict[str, Optional[dict]],
                 top: int = 12) -> str:
    """Top-*top* flame paths table from :func:`repro.trace.build_flame`
    documents.

    *flames* maps a row label to one flame document (None entries are
    skipped).  Every (label, class, phase, path) leaf with positive
    self weight becomes a candidate row; the table keeps the *top*
    heaviest by total self milliseconds (ties break on the row key, so
    the rendering is deterministic).
    """
    headers = ["label", "class", "phase", "path", "n",
               "self [ms]", "mean [us]"]
    candidates = []
    for label in sorted(flames):
        flame = flames[label]
        if flame is None:
            continue
        frames = flame["frames"]
        for klass in sorted(flame["tables"]):
            for phase in sorted(flame["tables"][klass]):
                table = flame["tables"][klass][phase]
                for path, count, self_w in zip(
                        table["paths"], table["count"], table["self"]):
                    if self_w <= 0.0:
                        continue
                    name = ";".join(frames[i] for i in path)
                    candidates.append(
                        (-self_w, label, klass, phase, name, count))
    candidates.sort()
    rows = []
    for neg_self, label, klass, phase, name, count in candidates[:top]:
        self_w = -neg_self
        rows.append([label, klass, phase, name, int(count),
                     round(1e3 * self_w, 3),
                     round(1e6 * self_w / count, 2) if count else 0.0])
    return render_table(title, headers, rows)


def normalize(series: Dict[str, Sequence[float]], baseline: str
              ) -> Dict[str, List[float]]:
    """Normalize every curve point-wise to the *baseline* curve
    (the paper's Figures 7 and 13 presentation)."""
    if baseline not in series:
        raise KeyError(f"baseline {baseline!r} not in series")
    base = series[baseline]
    out: Dict[str, List[float]] = {}
    for name, values in series.items():
        out[name] = [
            (v / b) if b else float("nan")
            for v, b in zip(values, base)
        ]
    return out
