"""Columnar result transport for the parallel experiment runner.

``Pool.map`` used to move every :class:`ExperimentResult` across the
worker→parent boundary as one pickled object graph.  For bulky results
(tail exhibits with thousands of latency/thread samples) that pays the
full serialize → pipe-copy → deserialize cost twice per point, and the
parent's merge loop — which is serial — pays most of it.  This module
splits a result into:

- a **header**: a small dict holding the config, the column layout
  (key lists, section lengths), and the few irregular fields
  (``selector_stats``); still pickled, but tiny and O(1) in the sample
  count; and
- packed **float columns**: one flat ``float64`` buffer concatenating
  the scalar row, the percentile tables (overall and per-class), the
  CPU-share row, the fault counters, and the (time, value) sample
  columns that :mod:`repro.sim.metrics` already collects columnar.

Workers write the columns straight into a :class:`ShmRing` — a
``multiprocessing.shared_memory`` segment shared by the whole pool —
and return only the header plus a ``(offset, nbytes)`` ticket through
the result pipe.  The parent rebuilds the result from the mapped
buffer: no serialization and no pipe copy for the bulk data, just the
worker's single memcpy in and the parent's single memcpy out.

Fallbacks keep every path correct:

- ring full (slow parent, tiny ring) → the worker returns the column
  bytes inline through the pipe instead (still columnar, still one
  buffer);
- ``multiprocessing.shared_memory`` unavailable → the runner drops to
  the classic whole-result pickle transport;
- ``jobs=1`` → no transport at all: results never leave the process.

``decode_result(encode_result(r)...)`` is an exact identity — every
float crosses as its 8-byte representation and every dict preserves
insertion order — so shm, pickle, and serial runs stay byte-identical.
"""

from __future__ import annotations

import multiprocessing
from array import array
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..trace import (flame_columns, flame_from_columns, summary_columns,
                     summary_from_columns)
from .config import ExperimentResult

__all__ = ["encode_result", "decode_result", "ShmRing", "RingSpec",
           "shm_available"]

#: Scalar result fields packed, in this order, at the head of the
#: column buffer.
SCALAR_FIELDS = ("throughput", "mean_rt", "cpu_utilization",
                 "ctx_switches_per_sec", "avg_running_threads",
                 "selects_per_sec", "select_cpu_share", "pool_spawns",
                 "completed", "window")

_ITEMSIZE = array("d").itemsize  # 8: one float64 per column cell


# ---------------------------------------------------------------------------
# Encode / decode
# ---------------------------------------------------------------------------

def encode_result(result: ExperimentResult) -> Tuple[Dict[str, Any], array]:
    """Flatten *result* into ``(header, columns)``.

    The header is a small picklable dict (config, key lists, section
    lengths, selector stats); ``columns`` is one flat ``array('d')``
    ready to be memcpy'd into shared memory or shipped as bytes.
    """
    columns = array("d", (getattr(result, name) for name in SCALAR_FIELDS))
    qs = tuple(result.percentiles)
    columns.extend(result.percentiles.values())
    classes = []
    for klass, table in result.class_percentiles.items():
        classes.append((klass, tuple(table)))
        columns.extend(table.values())
    share_cats = tuple(result.cpu_shares)
    columns.extend(result.cpu_shares.values())
    fault_names = tuple(result.fault_counters)
    columns.extend(result.fault_counters.values())
    hedge_shards = tuple(result.hedge_delays)
    columns.extend(result.hedge_delays.values())
    n_thread = len(result.thread_times)
    columns.extend(result.thread_times)
    columns.extend(result.thread_values)
    n_latency = len(result.latency_times)
    columns.extend(result.latency_times)
    columns.extend(result.latency_values)
    trace_structure = None
    n_trace = 0
    if result.trace_summary is not None:
        # The summary splits into a tiny structure header + one float
        # column that rides the same buffer as everything else.
        trace_structure, trace_floats = summary_columns(result.trace_summary)
        n_trace = len(trace_floats)
        columns.extend(trace_floats)
    obs_names = result.obs_names
    n_obs = len(result.obs_times)
    if obs_names:
        # Telemetry: the shared time column then each gauge column,
        # n_obs cells apiece.
        columns.extend(result.obs_times)
        for column in result.obs_values:
            columns.extend(column)
    flame_structure = None
    n_flame = 0
    if result.flame is not None:
        # Same split as the trace summary: path/table structure in the
        # header, count/self/total weights as floats.
        flame_structure, flame_floats = flame_columns(result.flame)
        n_flame = len(flame_floats)
        columns.extend(flame_floats)
    header = {
        "config": result.config,
        "qs": qs,
        "classes": classes,
        "share_cats": share_cats,
        "fault_names": fault_names,
        "hedge_shards": hedge_shards,
        "n_thread": n_thread,
        "n_latency": n_latency,
        "selector_stats": result.selector_stats,
        "trace": trace_structure,
        "n_trace": n_trace,
        "obs_names": obs_names,
        "n_obs": n_obs,
        "flame": flame_structure,
        "n_flame": n_flame,
        # Phases are a handful of (name, start, end) tuples: they ride
        # the pickled header (pickle is float-exact).
        "phases": result.phases,
        "n_columns": len(columns),
    }
    return header, columns


def _take(view: memoryview, lo: int, n: int) -> array:
    """Copy *n* float64 cells starting at *lo* out of *view* into a
    fresh column (one memcpy)."""
    column = array("d")
    column.frombytes(view[lo * _ITEMSIZE:(lo + n) * _ITEMSIZE])
    return column


def decode_result(header: Dict[str, Any], buffer) -> ExperimentResult:
    """Rebuild the exact :class:`ExperimentResult` from a header and
    the raw column bytes (any buffer-protocol object: a shared-memory
    slice, ``bytes`` from the inline fallback, or the ``array`` itself).
    """
    view = memoryview(buffer).cast("B")
    n_columns = header["n_columns"]
    if len(view) < n_columns * _ITEMSIZE:
        raise ValueError(
            f"column buffer too short: need {n_columns * _ITEMSIZE} bytes, "
            f"got {len(view)}")
    cells = view[:n_columns * _ITEMSIZE].cast("d")
    pos = len(SCALAR_FIELDS)
    scalars = dict(zip(SCALAR_FIELDS, cells[:pos]))
    qs = header["qs"]
    percentiles = dict(zip(qs, cells[pos:pos + len(qs)]))
    pos += len(qs)
    class_percentiles: Dict[str, Dict[float, float]] = {}
    for klass, class_qs in header["classes"]:
        class_percentiles[klass] = dict(
            zip(class_qs, cells[pos:pos + len(class_qs)]))
        pos += len(class_qs)
    share_cats = header["share_cats"]
    cpu_shares = dict(zip(share_cats, cells[pos:pos + len(share_cats)]))
    pos += len(share_cats)
    fault_names = header["fault_names"]
    fault_counters = dict(zip(fault_names, cells[pos:pos + len(fault_names)]))
    pos += len(fault_names)
    hedge_shards = header["hedge_shards"]
    hedge_delays = dict(zip(hedge_shards,
                            cells[pos:pos + len(hedge_shards)]))
    pos += len(hedge_shards)
    n_thread = header["n_thread"]
    thread_times = _take(view, pos, n_thread)
    thread_values = _take(view, pos + n_thread, n_thread)
    pos += 2 * n_thread
    n_latency = header["n_latency"]
    latency_times = _take(view, pos, n_latency)
    latency_values = _take(view, pos + n_latency, n_latency)
    pos += 2 * n_latency
    trace_summary = None
    if header.get("trace") is not None:
        trace_summary = summary_from_columns(
            header["trace"], _take(view, pos, header["n_trace"]))
    pos += header.get("n_trace", 0)
    obs_names = tuple(header.get("obs_names", ()))
    n_obs = header.get("n_obs", 0)
    obs_times, obs_values = array("d"), []
    if obs_names:
        obs_times = _take(view, pos, n_obs)
        pos += n_obs
        for _ in obs_names:
            obs_values.append(_take(view, pos, n_obs))
            pos += n_obs
    flame = None
    if header.get("flame") is not None:
        flame = flame_from_columns(
            header["flame"], _take(view, pos, header["n_flame"]))
        pos += header["n_flame"]
    return ExperimentResult(
        config=header["config"],
        percentiles=percentiles,
        class_percentiles=class_percentiles,
        cpu_shares=cpu_shares,
        selector_stats=header["selector_stats"],
        thread_times=thread_times,
        thread_values=thread_values,
        latency_times=latency_times,
        latency_values=latency_values,
        fault_counters=fault_counters,
        hedge_delays=hedge_delays,
        trace_summary=trace_summary,
        obs_names=obs_names,
        obs_times=obs_times,
        obs_values=obs_values,
        phases=[tuple(p) for p in header.get("phases", [])],
        flame=flame,
        **scalars,
    )


# ---------------------------------------------------------------------------
# Shared-memory ring
# ---------------------------------------------------------------------------

_AVAILABLE: Optional[bool] = None


def shm_available() -> bool:
    """True when ``multiprocessing.shared_memory`` actually works here
    (importable *and* a segment can be created — some sandboxes mount
    no /dev/shm).  Probed once, then cached."""
    global _AVAILABLE
    if _AVAILABLE is None:
        try:
            from multiprocessing import shared_memory
            probe = shared_memory.SharedMemory(create=True, size=16)
            probe.close()
            probe.unlink()
            _AVAILABLE = True
        except Exception:
            _AVAILABLE = False
    return _AVAILABLE


@dataclass(frozen=True)
class RingSpec:
    """Everything a worker needs to attach to a parent's ring.  Passed
    through ``Pool(initializer=...)``, so the lock and cursors travel
    over the process-creation channel (the only one that can carry
    multiprocessing primitives)."""

    name: str
    size: int
    lock: Any
    head: Any
    freed: Any


def _attach_segment(name: str):
    """Attach to an existing segment without letting the resource
    tracker claim (and later unlink) it — only the creating parent
    owns cleanup.  Spawned workers share the parent's tracker process,
    so a register/unregister pair per worker would race (the tracker
    holds one entry per name); suppressing the register is the only
    side-effect-free option before Python 3.13's ``track=False``."""
    from multiprocessing import shared_memory
    try:
        # Python >= 3.13 grew an explicit opt-out.
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    from multiprocessing import resource_tracker
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class ShmRing:
    """A coarse multi-producer ring over one shared-memory segment.

    Workers :meth:`reserve` regions with a bump cursor (``head``) under
    a shared lock and memcpy their column buffers in; the parent
    :meth:`release`\\ s each region after decoding it (``freed``).  When
    the cursor reaches the end it restarts from offset 0 — but only at
    a drain point (``head == freed``, i.e. every reserved byte has been
    consumed), which the linear allocation order makes safe.  If the
    ring is full and not drained, :meth:`write` returns ``None`` and
    the caller falls back to shipping the bytes inline; correctness
    never depends on capacity.

    The creating process owns the segment: :meth:`destroy` closes and
    unlinks it on every exit path (`BatchExecutor.__exit__`, the
    ``finally`` in ``run_experiments``), including error paths where
    outstanding tickets are simply abandoned with the segment.
    """

    def __init__(self, spec: RingSpec, segment, owner: bool) -> None:
        self._spec = spec
        self._segment = segment
        self._owner = owner
        self._destroyed = False

    # -- construction ----------------------------------------------------

    @classmethod
    def create(cls, size: int, ctx=None) -> "ShmRing":
        """Parent side: allocate the segment and the shared cursors."""
        from multiprocessing import shared_memory
        ctx = ctx or multiprocessing.get_context("spawn")
        segment = shared_memory.SharedMemory(create=True, size=size)
        spec = RingSpec(name=segment.name, size=size, lock=ctx.Lock(),
                        head=ctx.Value("Q", 0, lock=False),
                        freed=ctx.Value("Q", 0, lock=False))
        return cls(spec, segment, owner=True)

    @classmethod
    def attach(cls, spec: RingSpec) -> "ShmRing":
        """Worker side: map the parent's segment."""
        return cls(spec, _attach_segment(spec.name), owner=False)

    def spec(self) -> RingSpec:
        return self._spec

    @property
    def size(self) -> int:
        return self._spec.size

    # -- allocation ------------------------------------------------------

    @staticmethod
    def _aligned(nbytes: int) -> int:
        return (nbytes + _ITEMSIZE - 1) & ~(_ITEMSIZE - 1)

    def reserve(self, nbytes: int) -> Optional[int]:
        """Claim *nbytes* (rounded up to an 8-byte boundary); returns
        the offset, or ``None`` when the ring is full."""
        need = self._aligned(nbytes)
        spec = self._spec
        with spec.lock:
            head = spec.head.value
            if head + need > spec.size:
                if spec.head.value != spec.freed.value or need > spec.size:
                    return None
                # Drained: every reserved byte was released, so no
                # live ticket can alias the restarted region.
                spec.freed.value = 0
                head = 0
            spec.head.value = head + need
            return head

    def release(self, nbytes: int) -> None:
        """Parent side: return a decoded ticket's bytes to the ring."""
        spec = self._spec
        with spec.lock:
            spec.freed.value += self._aligned(nbytes)

    # -- data ------------------------------------------------------------

    def write(self, columns: array) -> Optional[Tuple[int, int]]:
        """Copy *columns* into the ring; ``(offset, nbytes)`` ticket,
        or ``None`` when there is no room (caller ships inline)."""
        nbytes = len(columns) * columns.itemsize
        offset = self.reserve(nbytes)
        if offset is None:
            return None
        self._segment.buf[offset:offset + nbytes] = \
            memoryview(columns).cast("B")
        return offset, nbytes

    def view(self, offset: int, nbytes: int) -> memoryview:
        """A zero-copy view of a written region (valid until
        :meth:`release` / :meth:`destroy`)."""
        return self._segment.buf[offset:offset + nbytes]

    # -- lifecycle -------------------------------------------------------

    def destroy(self) -> None:
        """Unmap — and, in the owning parent, unlink — the segment.
        Idempotent, safe on error paths."""
        if self._destroyed:
            return
        self._destroyed = True
        try:
            self._segment.close()
        except Exception:  # pragma: no cover - teardown best-effort
            pass
        if self._owner:
            try:
                self._segment.unlink()
            except Exception:  # pragma: no cover - already gone
                pass
