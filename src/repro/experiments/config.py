"""Experiment configuration and result records.

A :class:`ExperimentConfig` fully describes one simulated run: which
server architecture, which datastore family, which workload, and every
parameter override.  :func:`repro.experiments.runner.run_experiment`
turns one into an :class:`ExperimentResult` with every measurement the
paper's tables and figures report.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..datastore.sharding import REPLICA_POLICIES
from ..faults import FaultConfig, ResilienceConfig

__all__ = ["ExperimentConfig", "ExperimentResult", "SERVER_KINDS",
           "DATASTORE_KINDS"]

#: Server architectures the runner can build.
SERVER_KINDS = ("threadbased", "type1", "aio", "netty", "doubleface",
                "doubleface-fifo")

#: Datastore families.  They differ only in what the paper's testbed
#: differed in: DynamoDB is the remote (Amazon) cluster, HBase's
#: column-oriented reads are slightly slower per point lookup.
DATASTORE_KINDS = ("mongodb", "hbase", "dynamodb")


@dataclass
class ExperimentConfig:
    """One simulated experiment."""

    server: str = "doubleface"
    datastore: str = "mongodb"
    n_shards: int = 20
    fanout: int = 5
    response_size: int = 100
    #: "closed" (JMeter) or "open" (RUBBoS/Poisson).
    workload: str = "closed"
    concurrency: int = 20          # closed-loop users
    users: int = 100               # open-loop users
    think_time: float = 1.0        # open-loop mean think time [s]
    lfan: Optional[int] = None     # enable the Lfan/Sfan mix when set
    sfan: Optional[int] = None
    warmup: float = 0.3
    duration: float = 1.0
    seed: int = 42
    backend_reactors: int = 2      # NettyBackend only
    #: DoubleFaceAD reactor count: one per core (the paper's N-copy
    #: rule), matching the default 2-core cost model.
    reactors: int = 2              # DoubleFaceAD only
    type1_pool_size: Optional[int] = None
    aio_pool_max: Optional[int] = None
    large_shards: bool = False
    #: CostParams field overrides (e.g. {"request_cpu": 3e-3}).
    params: Dict[str, Any] = field(default_factory=dict)
    #: Sample the runnable-thread count every this many seconds
    #: (0 disables the sampler).
    thread_sample_period: float = 0.0
    #: Copy the raw per-selector stats dicts into the result.  Exhibits
    #: that only consume the aggregates (``selects_per_sec``,
    #: ``select_cpu_share``) set this False to shrink the pickled
    #: ``Pool`` payload; the aggregates are always computed.  Only
    #: affects what the result carries, never the simulation itself.
    keep_selector_stats: bool = True
    #: Record client latencies in the P-squared streaming sketch instead
    #: of the exact sample store (bounded memory for long windows; the
    #: reported percentiles become estimates).  Exact is the default.
    latency_sketch: bool = False
    #: Ship the raw windowed ``client.rt`` samples in the result as
    #: flat (time, value) float columns (``latency_times`` /
    #: ``latency_values``).  Off by default — the columns can run to
    #: hundreds of thousands of samples on full tail windows — and a
    #: no-op in sketch mode, which stores no samples.  Only affects
    #: what the result carries, never the simulation itself.
    keep_latency_samples: bool = False
    #: Deterministic fault injection (None = fault-free; the default
    #: keeps every pre-existing run byte-identical).
    faults: Optional[FaultConfig] = None
    #: Driver resilience policy shared by all architectures (None = the
    #: plain fire-and-forget driver behaviour).
    resilience: Optional[ResilienceConfig] = None
    #: Replicas per shard (1 = unreplicated; >1 enables failover and
    #: hedging targets on secondary replicas).
    replicas_per_shard: int = 1
    #: Initial-send routing across a shard's replica set; one of
    #: :data:`repro.datastore.sharding.REPLICA_POLICIES`.  The default
    #: ``primary`` reproduces the pre-replica-routing behaviour exactly.
    replica_policy: str = "primary"
    #: Racks the cluster spans (correlated-fault topology; 1 = no
    #: meaningful rack structure).
    racks: int = 1
    #: Extra one-way latency [s] for connections whose target replica
    #: sits outside the app server's rack (spine-crossing asymmetry).
    #: The 0.0 default keeps every run byte-identical to the flat
    #: topology.
    cross_rack_extra_latency: float = 0.0
    #: Deterministic span tracing (``repro.trace``).  Off by default;
    #: enabling it never changes any measured result, only records it.
    trace: bool = False
    #: Head-based sampling probability for traced requests (drawn from
    #: the dedicated ``trace.sample`` RNG stream).
    trace_sample: float = 0.01
    #: Slowest-request exemplar traces kept per request class.
    trace_exemplars: int = 3
    #: Phase-annotated live telemetry (``repro.obs``): a simulated-time
    #: ticker samples gauge time-series (queue depths, hedge/retry
    #: rates, replica estimates, CPU run queue).  Observation-only —
    #: enabling it never changes any measured result.
    obs: bool = False
    #: Telemetry sampling period [simulated s].
    obs_period: float = 0.01
    label: str = ""

    def __post_init__(self) -> None:
        if self.server not in SERVER_KINDS:
            raise ValueError(
                f"unknown server kind {self.server!r}; "
                f"valid: {', '.join(SERVER_KINDS)}")
        if self.datastore not in DATASTORE_KINDS:
            raise ValueError(
                f"unknown datastore kind {self.datastore!r}; "
                f"valid: {', '.join(DATASTORE_KINDS)}")
        if self.workload not in ("closed", "open"):
            raise ValueError(f"unknown workload kind {self.workload!r}")
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if self.fanout < 1:
            raise ValueError("fanout must be >= 1")
        if self.fanout > self.n_shards:
            raise ValueError("fanout cannot exceed shard count")
        if self.response_size < 1:
            raise ValueError("response_size must be >= 1 byte")
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if self.users < 1:
            raise ValueError("users must be >= 1")
        if self.think_time <= 0:
            raise ValueError("think_time must be positive")
        if (self.lfan is None) != (self.sfan is None):
            raise ValueError("lfan and sfan must be set together")
        if self.lfan is not None and (self.lfan < 1 or self.sfan < 1):
            raise ValueError("lfan/sfan must be >= 1")
        if self.duration <= 0 or self.warmup < 0:
            raise ValueError("bad warmup/duration")
        if self.replicas_per_shard < 1:
            raise ValueError("replicas_per_shard must be >= 1")
        if self.replica_policy not in REPLICA_POLICIES:
            raise ValueError(
                f"unknown replica policy {self.replica_policy!r}; "
                f"valid: {', '.join(REPLICA_POLICIES)}")
        if self.racks < 1:
            raise ValueError("racks must be >= 1")
        if self.cross_rack_extra_latency < 0:
            raise ValueError("cross_rack_extra_latency must be >= 0")
        if not 0.0 < self.trace_sample <= 1.0:
            raise ValueError("trace_sample must be in (0, 1]")
        if self.trace_exemplars < 1:
            raise ValueError("trace_exemplars must be >= 1")
        if self.obs_period <= 0:
            raise ValueError("obs_period must be positive")
        if not self.label:
            self.label = self.server


def _empty_column() -> array:
    return array("d")


@dataclass
class ExperimentResult:
    """Everything one run measured (paper-table vocabulary).

    Bulk measurements (thread samples, optional raw latency samples)
    are stored as flat ``array('d')`` columns so the parallel runner's
    shared-memory transport can move them as packed float buffers; the
    ``thread_samples`` / ``latency_samples`` properties materialise the
    classic list-of-(time, value)-tuples view on demand, so exhibit and
    report code consumes results unchanged.
    """

    config: ExperimentConfig
    #: Completed requests per second (client-side).
    throughput: float
    #: Client response-time percentiles [s]: {50: ..., 90: ..., 99: ...}.
    percentiles: Dict[float, float]
    #: Per-class percentiles: {"Lfan": {99: ...}, ...}.
    class_percentiles: Dict[str, Dict[float, float]]
    mean_rt: float
    #: App-server CPU utilisation over the window (0..1).
    cpu_utilization: float
    #: Share of busy CPU per category (lock, thread_init, select, ...).
    cpu_shares: Dict[str, float]
    #: Context switches per second on the app CPU.
    ctx_switches_per_sec: float
    #: Time-averaged runnable+running thread count.
    avg_running_threads: float
    #: Per-selector stats dicts (selects, events, spurious, ...).
    selector_stats: List[Dict[str, Any]]
    #: select() calls per second, all selectors.
    selects_per_sec: float
    #: Share of busy CPU spent in select() (Table 2's row).
    select_cpu_share: float
    #: On-demand pool spawns in the window (AIO only).
    pool_spawns: float
    #: Completed requests in the window.
    completed: float
    #: Window length [s].
    window: float
    #: Runnable-thread sample columns (time, count) when sampling was
    #: enabled; empty otherwise.
    thread_times: array = field(default_factory=_empty_column)
    thread_values: array = field(default_factory=_empty_column)
    #: Raw windowed ``client.rt`` sample columns (completion time,
    #: latency) when ``keep_latency_samples`` was set; empty otherwise.
    latency_times: array = field(default_factory=_empty_column)
    latency_values: array = field(default_factory=_empty_column)
    #: Fault/resilience counters over the window (``resilience.*``,
    #: ``faults.*``, ``server.completed.degraded``); empty when no
    #: faults or resilience policy were configured.
    fault_counters: Dict[str, float] = field(default_factory=dict)
    #: Span-trace summary (:func:`repro.trace.build_summary`) when
    #: ``config.trace`` was set: per-class critical-path breakdowns and
    #: tail exemplars.  None on untraced runs.
    trace_summary: Optional[Dict[str, Any]] = None
    #: Learned per-shard hedge delays (shard -> seconds) the
    #: attribution digest converged to; empty unless
    #: ``resilience.hedge_policy == "attribution"``.
    hedge_delays: Dict[int, float] = field(default_factory=dict)
    #: Telemetry gauge names when ``config.obs`` was set (column order
    #: matches ``obs_values``); empty otherwise.
    obs_names: Tuple[str, ...] = ()
    #: Shared telemetry time column and one value column per gauge.
    obs_times: array = field(default_factory=_empty_column)
    obs_values: List[array] = field(default_factory=list)
    #: Workload phases as (name, start, end) windows over the run
    #: (warmup / measure plus every realized fault window); populated
    #: when tracing or telemetry was on.
    phases: List[Tuple[str, float, float]] = field(default_factory=list)
    #: Cross-request flame aggregation
    #: (:func:`repro.trace.build_flame`) when ``config.trace`` was set;
    #: None on untraced runs.
    flame: Optional[Dict[str, Any]] = None

    @property
    def thread_samples(self) -> List[Tuple[float, float]]:
        """Row view of the thread-sample columns: [(t, n), ...]."""
        return list(zip(self.thread_times, self.thread_values))

    @property
    def latency_samples(self) -> List[Tuple[float, float]]:
        """Row view of the latency-sample columns: [(t, rt), ...]."""
        return list(zip(self.latency_times, self.latency_values))

    @property
    def obs_gauges(self) -> Dict[str, array]:
        """Name -> value-column view of the telemetry series (shared
        arrays, not copies; all share ``obs_times``)."""
        return dict(zip(self.obs_names, self.obs_values))

    def percentile(self, q: float) -> float:
        return self.percentiles[q]
