"""``python -m repro.experiments`` — same as the ``repro-experiments``
console script."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
