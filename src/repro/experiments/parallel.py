"""Parallel experiment execution over a multiprocessing worker pool.

Every paper exhibit sweeps many independent (architecture x
concurrency/fanout x seed) points; each point is a self-contained
deterministic simulation, so the sweep is embarrassingly parallel.
:func:`run_experiments` fans a list of :class:`ExperimentConfig`\\ s out
over a spawn-context ``multiprocessing.Pool`` and returns the results
**in submission order** — the merge is keyed by the config's position,
never by completion time, so parallel runs are byte-identical to serial
ones for the same configs and seeds.

Design notes:

- **spawn, not fork.**  Workers are started with the ``spawn`` start
  method so each child imports ``repro`` fresh; no module-level state
  (RNG singletons, metrics caches) leaks from the parent, which is what
  makes ``--jobs N`` results provably equal to ``--jobs 1``.
- **chunked dispatch.**  Configs are submitted in chunks (a few chunks
  per worker) so cheap points amortise IPC without one slow chunk
  serialising the tail.
- **heaviest points first.**  Within a batch, configs are dispatched in
  descending estimated cost (simulated seconds x load) so a grid's
  expensive corner (conc=256, long windows) starts immediately instead
  of landing on an almost-drained pool; results are re-ordered back to
  submission order before returning, so callers never see the shuffle.
- **explicit pickle protocol.**  Results cross the process boundary
  pre-pickled with ``pickle.HIGHEST_PROTOCOL`` (out-of-band, inside the
  worker) instead of the ``multiprocessing`` default, which is pinned
  to protocol 2-era framing; large ``ExperimentResult`` payloads (tail
  exhibits carry thousands of latency samples) serialise measurably
  faster and smaller.
- **serial fallback.**  ``jobs=1`` (or a single config) never touches
  multiprocessing at all: the configs run in-process through
  :func:`run_experiment`, keeping tests and debugging simple.

``jobs=0`` (or ``None``) means "one worker per CPU".
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from typing import Iterable, List, Optional, Sequence

from .config import ExperimentConfig, ExperimentResult
from .runner import run_experiment

__all__ = ["run_experiments", "resolve_jobs", "BatchExecutor",
           "CHUNKS_PER_WORKER"]

#: Target number of chunks handed to each worker.  More than one chunk
#: per worker lets the pool rebalance when points have uneven cost
#: (e.g. conc=256 vs conc=1 grid ends) at a small IPC premium.
CHUNKS_PER_WORKER = 4


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: 0/None -> CPU count, else itself."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def _chunksize(n_configs: int, jobs: int) -> int:
    """Ceil-divide the points into ~CHUNKS_PER_WORKER chunks per worker."""
    return max(1, -(-n_configs // (jobs * CHUNKS_PER_WORKER)))


def _config_cost(config: ExperimentConfig) -> float:
    """Estimated relative wall-clock cost of one point: simulated
    seconds times offered load.  Only the *ordering* matters (heaviest
    dispatched first); correctness never depends on the estimate."""
    load = (config.concurrency if config.workload == "closed"
            else config.users)
    return (config.warmup + config.duration) * load


def _cost_order(configs: Sequence[ExperimentConfig]) -> List[int]:
    """Indices in descending estimated cost (ties keep submission
    order, keeping the dispatch deterministic)."""
    return sorted(range(len(configs)),
                  key=lambda i: (-_config_cost(configs[i]), i))


def _run_pickled(config: ExperimentConfig) -> bytes:
    """Worker entry point: run the point and pickle the result with the
    highest protocol *inside* the worker, so the bytes cross the pipe
    as-is instead of through multiprocessing's default pickler."""
    return pickle.dumps(run_experiment(config), pickle.HIGHEST_PROTOCOL)


def run_experiments(configs: Iterable[ExperimentConfig],
                    jobs: Optional[int] = 1) -> List[ExperimentResult]:
    """Run every config, returning results in the order configs came in.

    ``jobs=1`` runs serially in-process; ``jobs>1`` fans out over a
    spawn-context pool, heaviest points first; ``jobs=0``/``None`` uses
    one worker per CPU.  All paths produce identical results for
    identical configs: each point is an isolated deterministic
    simulation keyed only by its own config (which carries the seed),
    and parallel results are merged back by submission position.
    """
    configs = list(configs)
    jobs = min(resolve_jobs(jobs), len(configs))
    if jobs <= 1:
        return [run_experiment(config) for config in configs]
    order = _cost_order(configs)
    ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(processes=jobs) as pool:
        payloads = pool.map(_run_pickled, [configs[i] for i in order],
                            chunksize=_chunksize(len(configs), jobs))
    results: List[Optional[ExperimentResult]] = [None] * len(configs)
    for position, payload in zip(order, payloads):
        results[position] = pickle.loads(payload)
    return results


class BatchExecutor:
    """A shared worker pool that several submitters feed config batches
    into concurrently.

    This is the ``--exhibit all`` interleaving backend: each exhibit
    runs on its own (cheap, Python-side) thread and submits its point
    batch here, so the pool sees one global (exhibit, key, config)
    queue — slow tail-window points overlap with cheap table points
    instead of the pool draining per exhibit.  ``Pool.apply_async`` is
    thread-safe, and each batch's results are gathered positionally, so
    per-exhibit determinism is untouched: every batch returns exactly
    what :func:`run_experiments` would have returned for it.
    """

    def __init__(self, jobs: Optional[int] = None) -> None:
        self.jobs = resolve_jobs(jobs)
        ctx = multiprocessing.get_context("spawn")
        self._pool = ctx.Pool(processes=self.jobs)

    def run(self, configs: Iterable[ExperimentConfig]) -> List[ExperimentResult]:
        """Run one batch; results in the batch's submission order.

        The batch's points enter the shared queue heaviest-first (see
        :func:`_config_cost`) and come back as highest-protocol pickles;
        the positional gather restores submission order.
        """
        configs = list(configs)
        handles = {
            position: self._pool.apply_async(_run_pickled,
                                             (configs[position],))
            for position in _cost_order(configs)
        }
        return [pickle.loads(handles[position].get())
                for position in range(len(configs))]

    def close(self) -> None:
        self._pool.close()
        self._pool.join()

    def terminate(self) -> None:
        """Kill the workers without draining the queue (error path)."""
        self._pool.terminate()
        self._pool.join()

    def __enter__(self) -> "BatchExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            # A submitter raised (e.g. a poisoned config blew up inside
            # a worker): close() would block in join() behind every
            # still-queued point — and leak the pool if any submitter
            # thread is wedged on a .get().  Tear the workers down
            # instead; pending results are moot once the batch failed.
            self.terminate()
        else:
            self.close()
