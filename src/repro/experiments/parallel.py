"""Parallel experiment execution over a multiprocessing worker pool.

Every paper exhibit sweeps many independent (architecture x
concurrency/fanout x seed) points; each point is a self-contained
deterministic simulation, so the sweep is embarrassingly parallel.
:func:`run_experiments` fans a list of :class:`ExperimentConfig`\\ s out
over a spawn-context ``multiprocessing.Pool`` and returns the results
**in submission order** — the merge is keyed by the config's position,
never by completion time, so parallel runs are byte-identical to serial
ones for the same configs and seeds.

Design notes:

- **spawn, not fork.**  Workers are started with the ``spawn`` start
  method so each child imports ``repro`` fresh; no module-level state
  (RNG singletons, metrics caches) leaks from the parent, which is what
  makes ``--jobs N`` results provably equal to ``--jobs 1``.
- **chunked dispatch.**  Configs are submitted in chunks (a few chunks
  per worker) so cheap points amortise IPC without one slow chunk
  serialising the tail.
- **heaviest points first.**  Within a batch, configs are dispatched in
  descending estimated cost (simulated seconds x load) so a grid's
  expensive corner (conc=256, long windows) starts immediately instead
  of landing on an almost-drained pool; results are re-ordered back to
  submission order before returning, so callers never see the shuffle.
- **columnar shared-memory transport** (``transport="shm"``, the
  default where ``multiprocessing.shared_memory`` works).  Workers
  flatten each result into a small header plus packed float columns
  (:mod:`repro.experiments.transport`) and memcpy the columns straight
  into a ring segment shared with the parent; only the header and an
  ``(offset, nbytes)`` ticket cross the result pipe.  The parent
  rebuilds the result from the mapped buffer — the bulk data is never
  serialised and never copied through a pipe.  A full ring degrades
  per-result to shipping the column bytes inline; both paths decode to
  byte-identical results.
- **explicit pickle protocol** (``transport="pickle"``, the fallback).
  Results cross the process boundary pre-pickled with
  ``pickle.HIGHEST_PROTOCOL`` (out-of-band, inside the worker) instead
  of the ``multiprocessing`` default, which is pinned to protocol
  2-era framing; large ``ExperimentResult`` payloads (tail exhibits
  carry thousands of latency samples) serialise measurably faster and
  smaller.
- **serial fallback.**  ``jobs=1`` (or a single config) never touches
  multiprocessing — or any transport — at all: the configs run
  in-process through :func:`run_experiment`, keeping tests and
  debugging simple.  ``jobs=1`` is the identity path both transports
  are benchmarked and tested against.

``jobs=0`` (or ``None``) means "one worker per CPU".
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from typing import Iterable, List, Optional, Sequence, Tuple

from .config import ExperimentConfig, ExperimentResult
from .runner import run_experiment
from .transport import ShmRing, decode_result, encode_result, shm_available

__all__ = ["run_experiments", "resolve_jobs", "resolve_transport",
           "BatchExecutor", "CHUNKS_PER_WORKER", "TRANSPORTS",
           "DEFAULT_RING_BYTES"]

#: Target number of chunks handed to each worker.  More than one chunk
#: per worker lets the pool rebalance when points have uneven cost
#: (e.g. conc=256 vs conc=1 grid ends) at a small IPC premium.
CHUNKS_PER_WORKER = 4

#: Worker→parent result transports.
TRANSPORTS = ("shm", "pickle")

#: Default shared-memory ring capacity.  A full tail point's columns
#: run to a few hundred kB; 32 MB keeps dozens outstanding before the
#: inline fallback has to kick in.
DEFAULT_RING_BYTES = 32 << 20


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: 0/None -> CPU count, else itself.

    Negative values are rejected here — at the mouth of every pool
    construction — so they can never reach ``multiprocessing.Pool``,
    which reports them as an unhelpful ``ValueError`` of its own (or,
    for ``Pool.map`` chunking, arbitrary misbehaviour).
    """
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def resolve_transport(transport: Optional[str]) -> str:
    """Normalise a ``--transport`` value.

    ``None`` means "shm if it works here, else pickle"; explicit
    ``"shm"`` also degrades to pickle when ``shared_memory`` is
    unavailable (some sandboxes mount no /dev/shm) rather than failing
    a run that would otherwise succeed.  Anything else is rejected.
    """
    if transport is None:
        return "shm" if shm_available() else "pickle"
    if transport not in TRANSPORTS:
        raise ValueError(f"unknown transport {transport!r}; "
                         f"valid: {', '.join(TRANSPORTS)}")
    if transport == "shm" and not shm_available():
        return "pickle"
    return transport


def _chunksize(n_configs: int, jobs: int) -> int:
    """Ceil-divide the points into ~CHUNKS_PER_WORKER chunks per worker."""
    return max(1, -(-n_configs // (jobs * CHUNKS_PER_WORKER)))


def _config_cost(config: ExperimentConfig) -> float:
    """Estimated relative wall-clock cost of one point: simulated
    seconds times offered load.  Only the *ordering* matters (heaviest
    dispatched first); correctness never depends on the estimate."""
    load = (config.concurrency if config.workload == "closed"
            else config.users)
    return (config.warmup + config.duration) * load


def _cost_order(configs: Sequence[ExperimentConfig]) -> List[int]:
    """Indices in descending estimated cost (ties keep submission
    order, keeping the dispatch deterministic)."""
    return sorted(range(len(configs)),
                  key=lambda i: (-_config_cost(configs[i]), i))


def _run_pickled(config: ExperimentConfig) -> bytes:
    """Worker entry point (pickle transport): run the point and pickle
    the result with the highest protocol *inside* the worker, so the
    bytes cross the pipe as-is instead of through multiprocessing's
    default pickler."""
    return pickle.dumps(run_experiment(config), pickle.HIGHEST_PROTOCOL)


#: Worker-global ring handle, set once per worker by the pool
#: initializer (spawn context: each worker imports this module fresh).
_WORKER_RING: Optional[ShmRing] = None


def _init_shm_worker(spec) -> None:
    global _WORKER_RING
    _WORKER_RING = ShmRing.attach(spec)


def _run_columnar(config: ExperimentConfig) -> Tuple[bytes, Optional[Tuple[int, int]], Optional[bytes]]:
    """Worker entry point (shm transport): run the point, flatten the
    result, and memcpy the columns into the shared ring.  Returns
    ``(header_bytes, ticket, inline)`` where exactly one of *ticket*
    (ring region) and *inline* (raw column bytes, the full-ring
    fallback) is set."""
    header, columns = encode_result(run_experiment(config))
    header_bytes = pickle.dumps(header, pickle.HIGHEST_PROTOCOL)
    ring = _WORKER_RING
    ticket = ring.write(columns) if ring is not None else None
    if ticket is None:
        return header_bytes, None, memoryview(columns).cast("B").tobytes()
    return header_bytes, ticket, None


def _run_columnar_at(task: Tuple[int, ExperimentConfig]):
    """:func:`_run_columnar` tagged with the result's merge position,
    so the parent can consume completions in *any* order (draining the
    ring as fast as workers fill it) and still merge by position."""
    position, config = task
    return position, _run_columnar(config)


def _decode_payload(payload, ring: Optional[ShmRing]) -> ExperimentResult:
    """Parent side of the shm transport: rebuild one result from a
    worker payload, returning its ring bytes afterwards."""
    header_bytes, ticket, inline = payload
    header = pickle.loads(header_bytes)
    if ticket is None:
        return decode_result(header, inline)
    offset, nbytes = ticket
    buf = ring.view(offset, nbytes)
    try:
        return decode_result(header, buf)
    finally:
        buf.release()
        ring.release(nbytes)


def run_experiments(configs: Iterable[ExperimentConfig],
                    jobs: Optional[int] = 1,
                    transport: Optional[str] = None,
                    ring_bytes: int = DEFAULT_RING_BYTES,
                    ) -> List[ExperimentResult]:
    """Run every config, returning results in the order configs came in.

    ``jobs=1`` runs serially in-process; ``jobs>1`` fans out over a
    spawn-context pool, heaviest points first; ``jobs=0``/``None`` uses
    one worker per CPU.  ``transport`` picks how results cross the
    worker→parent boundary: ``"shm"`` (columnar shared memory, the
    default where available), ``"pickle"``, or ``None`` = auto.  All
    paths produce identical results for identical configs: each point
    is an isolated deterministic simulation keyed only by its own
    config (which carries the seed), parallel results are merged back
    by submission position, and the columnar codec is an exact
    float-for-float identity.
    """
    configs = list(configs)
    jobs = min(resolve_jobs(jobs), len(configs))
    transport = resolve_transport(transport)
    if jobs <= 1:
        return [run_experiment(config) for config in configs]
    order = _cost_order(configs)
    ordered = [configs[i] for i in order]
    chunk = _chunksize(len(configs), jobs)
    ctx = multiprocessing.get_context("spawn")
    results: List[Optional[ExperimentResult]] = [None] * len(configs)
    if transport == "pickle":
        with ctx.Pool(processes=jobs) as pool:
            payloads = pool.map(_run_pickled, ordered, chunksize=chunk)
        for position, payload in zip(order, payloads):
            results[position] = pickle.loads(payload)
        return results
    ring = ShmRing.create(ring_bytes, ctx)
    try:
        with ctx.Pool(processes=jobs, initializer=_init_shm_worker,
                      initargs=(ring.spec(),)) as pool:
            # imap_unordered: the parent decodes (and releases ring
            # space) the moment any worker finishes, instead of letting
            # completed columns pile up until the whole grid is done.
            # Merge stays deterministic — every payload carries its
            # submission position.
            tasks = list(zip(order, ordered))
            for position, payload in pool.imap_unordered(
                    _run_columnar_at, tasks, chunksize=chunk):
                results[position] = _decode_payload(payload, ring)
    finally:
        ring.destroy()
    return results


class BatchExecutor:
    """A shared worker pool that several submitters feed config batches
    into concurrently.

    This is the ``--exhibit all`` interleaving backend: each exhibit
    runs on its own (cheap, Python-side) thread and submits its point
    batch here, so the pool sees one global (exhibit, key, config)
    queue — slow tail-window points overlap with cheap table points
    instead of the pool draining per exhibit.  ``Pool.apply_async`` is
    thread-safe, and each batch's results are gathered positionally, so
    per-exhibit determinism is untouched: every batch returns exactly
    what :func:`run_experiments` would have returned for it.
    """

    def __init__(self, jobs: Optional[int] = None,
                 transport: Optional[str] = None,
                 ring_bytes: int = DEFAULT_RING_BYTES) -> None:
        self.jobs = resolve_jobs(jobs)
        self.transport = resolve_transport(transport)
        ctx = multiprocessing.get_context("spawn")
        self._ring: Optional[ShmRing] = None
        if self.transport == "shm":
            self._ring = ShmRing.create(ring_bytes, ctx)
            try:
                self._pool = ctx.Pool(processes=self.jobs,
                                      initializer=_init_shm_worker,
                                      initargs=(self._ring.spec(),))
            except BaseException:
                self._ring.destroy()
                raise
        else:
            self._pool = ctx.Pool(processes=self.jobs)

    def run(self, configs: Iterable[ExperimentConfig]) -> List[ExperimentResult]:
        """Run one batch; results in the batch's submission order.

        The batch's points enter the shared queue heaviest-first (see
        :func:`_config_cost`) and come back through the executor's
        transport (columnar shm tickets, or highest-protocol pickles);
        the positional gather restores submission order — and, on the
        shm path, releases each ticket's ring bytes as it decodes, so
        concurrent batches share the ring fairly.
        """
        configs = list(configs)
        task = _run_columnar if self._ring is not None else _run_pickled
        handles = {
            position: self._pool.apply_async(task, (configs[position],))
            for position in _cost_order(configs)
        }
        if self._ring is not None:
            return [_decode_payload(handles[position].get(), self._ring)
                    for position in range(len(configs))]
        return [pickle.loads(handles[position].get())
                for position in range(len(configs))]

    def close(self) -> None:
        try:
            self._pool.close()
            self._pool.join()
        finally:
            if self._ring is not None:
                self._ring.destroy()

    def terminate(self) -> None:
        """Kill the workers without draining the queue (error path).
        The ring segment goes down with them — outstanding tickets are
        moot once the batch failed, and ``ShmRing.destroy`` unlinks the
        segment so nothing leaks into /dev/shm."""
        try:
            self._pool.terminate()
            self._pool.join()
        finally:
            if self._ring is not None:
                self._ring.destroy()

    def __enter__(self) -> "BatchExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            # A submitter raised (e.g. a poisoned config blew up inside
            # a worker): close() would block in join() behind every
            # still-queued point — and leak the pool if any submitter
            # thread is wedged on a .get().  Tear the workers down
            # instead; pending results are moot once the batch failed.
            self.terminate()
        else:
            self.close()
