"""RUBBoS-style open-loop (Poisson) workload generator.

The paper's realistic-traffic experiments use the RUBBoS generator:
the request rate follows a Poisson distribution with the mean
determined by the number of emulated end-users (Section 6.1).  We model
each user as think-time-driven — after receiving a response the user
waits an exponentially distributed think time before the next request —
which yields Poisson aggregate arrivals while retaining the per-user
closed feedback RUBBoS has.
"""

from __future__ import annotations

from ..drivers.base import AppServer
from ..messages import HttpResponse
from ..sim.kernel import Simulator
from ..sim.metrics import Metrics
from ..sim.network import QueueEndpoint
from ..sim.params import CostParams
from ..sim.resources import Queue
from ..sim.rng import RngStreams
from .profiles import WorkloadProfile

__all__ = ["PoissonWorkload"]


class PoissonWorkload:
    """*users* emulated browsers with exponential think times."""

    def __init__(self, sim: Simulator, metrics: Metrics, params: CostParams,
                 server: AppServer, profile: WorkloadProfile,
                 users: int, think_time_mean: float,
                 rng_streams: RngStreams, name: str = "rubbos") -> None:
        if users < 1:
            raise ValueError("users must be >= 1")
        if think_time_mean <= 0:
            raise ValueError("think time must be positive")
        self.sim = sim
        self.metrics = metrics
        self.params = params
        self.server = server
        self.profile = profile
        self.users = users
        self.think_time_mean = think_time_mean
        self.name = name
        self._rng = rng_streams.stream(f"{name}.requests")
        self._think_rng = rng_streams.stream(f"{name}.think")
        self.started = False
        # Interned per-completion instruments; per-class ones stay
        # first-use ordered (see ClosedLoopWorkload).
        self._completed = metrics.counter("client.completed")
        self._rt = metrics.latency("client.rt")
        self._completed_by_klass: dict = {}
        self._rt_by_klass: dict = {}

    @property
    def offered_rate(self) -> float:
        """Approximate aggregate request rate (requests/second) when
        response times are small relative to think times."""
        return self.users / self.think_time_mean

    def start(self) -> None:
        if self.started:
            raise RuntimeError("workload already started")
        self.started = True
        for user_id in range(self.users):
            conn = self.server.accept_client()
            inbox = Queue(self.sim)
            conn.attach("a", QueueEndpoint(inbox))
            self.sim.process(self._user_loop(user_id, conn, inbox),
                             name=f"{self.name}-user-{user_id}")

    def _user_loop(self, user_id: int, conn, inbox: Queue):
        # Desynchronise session starts across one full think period.
        yield self.sim.timeout(self._think_rng.random() * self.think_time_mean)
        while True:
            request = self.profile.make_request(self._rng)
            tracer = self.sim.tracer
            if tracer is not None and tracer.sample():
                request.trace = tracer.begin(request.klass, self.sim.now)
            request.sent_at = self.sim.now
            # Thread-less send never yields: transmit directly.
            conn.transmit(request, request.wire_size, "b")
            response = yield inbox.get()
            if not isinstance(response, HttpResponse):
                raise TypeError(f"client received non-response: {response!r}")
            now = self.sim.now
            rt = now - request.sent_at
            klass = request.klass
            if response.trace is not None and self.sim.tracer is not None:
                # Exactly the recorded response-time float (see
                # ClosedLoopWorkload._record).
                self.sim.tracer.finish(response.trace, rt)
            self._completed.add()
            by_klass = self._completed_by_klass.get(klass)
            if by_klass is None:
                by_klass = self.metrics.counter(f"client.completed.{klass}")
                self._completed_by_klass[klass] = by_klass
            by_klass.add()
            self._rt.record(now, rt)
            rt_rec = self._rt_by_klass.get(klass)
            if rt_rec is None:
                rt_rec = self.metrics.latency(f"client.rt.{klass}")
                self._rt_by_klass[klass] = rt_rec
            rt_rec.record(now, rt)
            yield self.sim.timeout(
                self._think_rng.expovariate(1.0 / self.think_time_mean))
