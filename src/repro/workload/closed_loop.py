"""JMeter-style closed-loop workload generator.

The paper's stress tests use JMeter with one thread per simulated
end-user: each user issues the next HTTP request *immediately* after
receiving the previous response, so the number of users equals the
workload concurrency exactly (Section 2.2).  Client machines are not
modelled (JMeter ran on its own node), so client-side operations carry
no CPU cost in the simulation.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..drivers.base import AppServer
from ..messages import HttpResponse
from ..sim.kernel import Simulator
from ..sim.metrics import Metrics
from ..sim.network import QueueEndpoint
from ..sim.params import CostParams
from ..sim.resources import Queue
from ..sim.rng import RngStreams
from .profiles import WorkloadProfile

__all__ = ["ClosedLoopWorkload"]


class ClosedLoopWorkload:
    """*concurrency* users in lock-step request/response loops."""

    def __init__(self, sim: Simulator, metrics: Metrics, params: CostParams,
                 server: AppServer, profile: WorkloadProfile,
                 concurrency: int, rng_streams: RngStreams,
                 name: str = "jmeter") -> None:
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        self.sim = sim
        self.metrics = metrics
        self.params = params
        self.server = server
        self.profile = profile
        self.concurrency = concurrency
        self.name = name
        self._rng = rng_streams.stream(f"{name}.requests")
        self.started = False
        # Interned per-completion instruments; the per-class ones are
        # interned on first use so recorder creation order (and with it
        # per-class report order) is unchanged.
        self._completed = metrics.counter("client.completed")
        self._rt = metrics.latency("client.rt")
        self._completed_by_klass: dict = {}
        self._rt_by_klass: dict = {}

    def start(self) -> None:
        """Open one connection per user and launch the user loops."""
        if self.started:
            raise RuntimeError("workload already started")
        self.started = True
        for user_id in range(self.concurrency):
            conn = self.server.accept_client()
            inbox = Queue(self.sim)
            conn.attach("a", QueueEndpoint(inbox))
            self.sim.process(self._user_loop(user_id, conn, inbox),
                             name=f"{self.name}-user-{user_id}")

    def _user_loop(self, user_id: int, conn, inbox: Queue):
        # Stagger the very first request of each user by a tiny random
        # offset so the initial burst does not arrive at one instant.
        yield self.sim.timeout(self._rng.random() * 1.0e-3)
        while True:
            request = self.profile.make_request(self._rng)
            tracer = self.sim.tracer
            if tracer is not None and tracer.sample():
                request.trace = tracer.begin(request.klass, self.sim.now)
            request.sent_at = self.sim.now
            # Client machines are unmodelled: a thread-less send never
            # yields, so skip the generator frame and transmit directly.
            conn.transmit(request, request.wire_size, "b")
            response = yield inbox.get()
            if not isinstance(response, HttpResponse):
                raise TypeError(f"client received non-response: {response!r}")
            self._record(request, response)

    def _record(self, request, response: HttpResponse) -> None:
        now = self.sim.now
        rt = now - request.sent_at
        klass = request.klass
        if response.trace is not None and self.sim.tracer is not None:
            # Exactly the recorded response-time float, so the trace's
            # category breakdown sums to what the histograms saw.
            self.sim.tracer.finish(response.trace, rt)
        self._completed.add()
        by_klass = self._completed_by_klass.get(klass)
        if by_klass is None:
            by_klass = self.metrics.counter(f"client.completed.{klass}")
            self._completed_by_klass[klass] = by_klass
        by_klass.add()
        self._rt.record(now, rt)
        rt_rec = self._rt_by_klass.get(klass)
        if rt_rec is None:
            rt_rec = self.metrics.latency(f"client.rt.{klass}")
            self._rt_by_klass[klass] = rt_rec
        rt_rec.record(now, rt)
