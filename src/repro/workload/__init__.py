"""Workload generators: JMeter-style closed loop, RUBBoS-style Poisson
open loop, and the request-mix profiles they draw from."""

from .closed_loop import ClosedLoopWorkload
from .open_loop import PoissonWorkload
from .profiles import (RequestClass, WorkloadProfile, lfan_sfan_profile,
                       uniform_profile)

__all__ = [
    "ClosedLoopWorkload", "PoissonWorkload", "RequestClass",
    "WorkloadProfile", "lfan_sfan_profile", "uniform_profile",
]
