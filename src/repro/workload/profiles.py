"""Request-mix profiles.

A profile describes what the clients ask for: the fanout factor(s), the
per-fanout-query response size (the paper's 0.1 kB / 1 kB / 20 kB
classes), and — for the tail-latency experiments — the request-class
mix (``Lfan`` requests with a large fanout vs. ``Sfan`` requests with a
small fanout, Section 6.1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..messages import HttpRequest
from ..sim.params import KB

__all__ = ["RequestClass", "WorkloadProfile", "uniform_profile",
           "lfan_sfan_profile"]


@dataclass(frozen=True)
class RequestClass:
    """One class of requests in a mix."""

    name: str
    fanout: int
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.fanout < 1:
            raise ValueError("fanout must be >= 1")
        if self.weight <= 0:
            raise ValueError("weight must be positive")


@dataclass
class WorkloadProfile:
    """A weighted mix of request classes sharing one response size."""

    classes: List[RequestClass]
    response_size: int
    #: Optional zero-arg key chooser (dataset-driven runs attach keys to
    #: each fanout query so materialised shards return real records).
    key_chooser: Optional[Callable[[], object]] = None

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("profile needs at least one request class")
        if self.response_size < 1:
            raise ValueError("response size must be >= 1 byte")
        self._weights = [c.weight for c in self.classes]

    @property
    def max_fanout(self) -> int:
        return max(c.fanout for c in self.classes)

    @property
    def mean_fanout(self) -> float:
        total = sum(self._weights)
        return sum(c.fanout * c.weight for c in self.classes) / total

    def make_request(self, rng: random.Random) -> HttpRequest:
        """Draw one request from the mix."""
        if len(self.classes) == 1:
            chosen = self.classes[0]
        else:
            chosen = rng.choices(self.classes, weights=self._weights, k=1)[0]
        keys = None
        if self.key_chooser is not None:
            keys = [self.key_chooser() for _ in range(chosen.fanout)]
        return HttpRequest(
            fanout=chosen.fanout,
            response_size=self.response_size,
            klass=chosen.name,
            keys=keys,
        )


def uniform_profile(fanout: int, response_size: int,
                    key_chooser: Optional[Callable[[], object]] = None
                    ) -> WorkloadProfile:
    """Single-class profile (the JMeter stress workloads)."""
    return WorkloadProfile(
        classes=[RequestClass("default", fanout)],
        response_size=response_size,
        key_chooser=key_chooser,
    )


def lfan_sfan_profile(lfan: int, sfan: int, response_size: int,
                      lfan_share: float = 0.5,
                      key_chooser: Optional[Callable[[], object]] = None
                      ) -> WorkloadProfile:
    """The tail-latency mix: 50/50 Lfan and Sfan by default
    (Section 6.1's scheduling experiments)."""
    if not 0.0 < lfan_share < 1.0:
        raise ValueError("lfan_share must be in (0, 1)")
    return WorkloadProfile(
        classes=[
            RequestClass("Lfan", lfan, weight=lfan_share),
            RequestClass("Sfan", sfan, weight=1.0 - lfan_share),
        ],
        response_size=response_size,
        key_chooser=key_chooser,
    )
