#!/usr/bin/env python
"""Validate trace/observability artifacts against their exporter schemas.

Usage::

    python scripts/check_trace_schema.py PATH [PATH ...]

Thin CLI shim over :mod:`repro.trace.schema`, which holds the actual
validators (Chrome ``trace_event`` JSON from ``--trace-out``,
collapsed-stack / speedscope flame output from ``--flame-out``, and
the ``--prom-out`` Prometheus snapshot).  The format is sniffed from
the file content.  Exits 0 when every file is valid, 1 with a one-line
message on the first violation — CI runs it against freshly exported
artifacts so schema drift fails the build rather than silently
producing files Perfetto or speedscope reject.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.trace.schema import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
