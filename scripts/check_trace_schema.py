#!/usr/bin/env python
"""Validate a Chrome ``trace_event`` JSON file written by ``--trace-out``.

Usage::

    python scripts/check_trace_schema.py /path/to/trace.json

Checks the invariants the exporter guarantees (and that
chrome://tracing / Perfetto rely on to render anything at all):

- top level is ``{"traceEvents": [...], "displayTimeUnit": "ms"}``;
- every event has ``name``/``ph``/``pid``/``tid`` with ``ph`` one of
  ``M`` (metadata), ``X`` (complete span), ``i`` (instant);
- ``X`` events carry non-negative ``ts`` and positive ``dur``;
- ``i`` events carry ``ts`` and thread scope (``"s": "t"``);
- every (pid, tid) with spans is named by ``M`` metadata events;
- span names are known span kinds, and at least one real span exists.

Exits 0 when valid, 1 with a message on the first violation — CI runs
it against a freshly traced exhibit so a schema drift in the exporter
fails the build rather than silently producing files Perfetto rejects.
"""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.trace import KIND_NAMES  # noqa: E402

_META_NAMES = {"process_name", "thread_name"}


def fail(message):
    print(f"trace schema check FAILED: {message}", file=sys.stderr)
    raise SystemExit(1)


def check(path):
    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    except ValueError as exc:
        fail(f"{path} is not valid JSON: {exc}")
    if not isinstance(doc, dict):
        fail("top level must be a JSON object")
    if doc.get("displayTimeUnit") != "ms":
        fail(f"displayTimeUnit must be 'ms', got "
             f"{doc.get('displayTimeUnit')!r}")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents must be a non-empty list")

    named_processes = set()
    named_threads = set()
    spans = 0
    instants = 0
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            fail(f"{where} is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                fail(f"{where} missing {key!r}")
        ph = event["ph"]
        if ph == "M":
            if event["name"] not in _META_NAMES:
                fail(f"{where}: unknown metadata event {event['name']!r}")
            if not event.get("args", {}).get("name"):
                fail(f"{where}: metadata event without args.name")
            if event["name"] == "process_name":
                named_processes.add(event["pid"])
            else:
                named_threads.add((event["pid"], event["tid"]))
            continue
        if ph not in ("X", "i"):
            fail(f"{where}: unexpected phase {ph!r}")
        if event["name"] not in KIND_NAMES:
            fail(f"{where}: unknown span kind {event['name']!r}")
        if not isinstance(event.get("ts"), (int, float)) or event["ts"] < 0:
            fail(f"{where}: bad ts {event.get('ts')!r}")
        if ph == "X":
            spans += 1
            if not isinstance(event.get("dur"), (int, float)) \
                    or event["dur"] <= 0:
                fail(f"{where}: X event needs positive dur, got "
                     f"{event.get('dur')!r}")
        else:
            instants += 1
            if event.get("s") != "t":
                fail(f"{where}: instant event needs thread scope 's': 't'")
        if event["pid"] not in named_processes:
            fail(f"{where}: pid {event['pid']} has no process_name "
                 f"metadata")
        if (event["pid"], event["tid"]) not in named_threads:
            fail(f"{where}: tid {event['tid']} (pid {event['pid']}) has "
                 f"no thread_name metadata")
    if spans == 0:
        fail("no complete (ph='X') span events at all")
    print(f"trace schema OK: {len(events)} events "
          f"({len(named_processes)} processes, {len(named_threads)} "
          f"threads, {spans} spans, {instants} instants) in {path}")


def main(argv):
    if len(argv) != 2:
        print(__doc__)
        return 2
    check(argv[1])
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
