"""Figure 5: MongoDB drivers across response sizes.

Paper shape: at 20 kB NettyBackend beats AIOBackend (the on-demand pool
thrashes on fat responses); at 0.1 kB the order reverses (AIO's blocking
selector out-runs Netty's select-happy reactors); the thread-based
driver trails in every size class at high concurrency.
"""


def test_fig05_response_size_reversal(exhibit):
    result = exhibit("fig05")
    grid = result.data["concurrency"]
    hi = grid.index(max(c for c in grid if c >= 64))

    big = result.data["20kB"]
    small = result.data["0.1kB"]

    # 20 kB: Netty ahead of AIO (the paper's headline at this size).
    # (Our thread-based baseline degrades from its peak but does not
    # fall below AIO at this concurrency — see EXPERIMENTS.md.)
    assert big["NettyBackend"][hi] > big["AIOBackend"][hi]
    assert big["Threadbased"][hi] < 1.06 * max(big["NettyBackend"])

    # 0.1 kB: AIO closes to within a few percent of Netty (paper: +15%;
    # see EXPERIMENTS.md); both clearly ahead of thread-based.
    assert small["AIOBackend"][hi] > 0.90 * small["NettyBackend"][hi]
    assert small["AIOBackend"][hi] > 1.2 * small["Threadbased"][hi]

    # The *relative* position of AIO vs Netty improves from 20 kB to
    # 0.1 kB — the paper's reversal, measured as a ratio shift.
    ratio_big = big["AIOBackend"][hi] / big["NettyBackend"][hi]
    ratio_small = small["AIOBackend"][hi] / small["NettyBackend"][hi]
    assert ratio_small > ratio_big

    # 1 kB sits between the regimes: no collapse for either async.
    mid = result.data["1kB"]
    for name in ("AIOBackend", "NettyBackend"):
        assert mid[name][hi] > 0.7 * max(mid[name])
