"""Fault-tail exhibits: resilience must rescue p99 under slow shards.

Shape under the standard slow-shard fault (2 shards intermittently
serving 100x slower, primaries only): without any resilience, every
architecture's p99 is dominated by the slow windows (tens of ms);
deadline+retry with replica failover claws most of it back, and adding
a p95 hedge shaves the remainder.  Measured quick-grid ratios are ~5x
(no-resilience p99 / hedge+retry p99); the assertion pins >= 2x so the
qualitative claim survives seed and sizing drift.

The ``adaptive_hedge`` exhibit sharpens the hedging claim on a
heterogeneous topology (slow-shard brown-out plus a +0.5 ms cross-rack
spine): per-shard attribution hedging (``hedge_policy="attribution"``)
must rescue p99 at least as hard as the global-percentile hedge does.
Measured quick-grid: attribution rescues 1.75x vs the global policy's
1.48x (an 1.18x advantage); the pins keep >= 1.3x and >= 1.05x
respectively.

Doubles as a CLI recording a perf-trajectory entry into
``BENCH_faults.json``, mirroring ``bench_fault_open.py``::

    PYTHONPATH=src python benchmarks/bench_fault_tail.py --label my-change

``--dry-run`` prints without touching ``BENCH_faults.json``, ``--quick``
uses the CI perf-smoke sizing (implies ``--dry-run``), and ``--check``
exits 1 when the attribution-hedging margins drop below the pins — the
same invariants the pytest assertions enforce.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

BENCH_FILE = Path(__file__).resolve().parent / "BENCH_faults.json"

#: Pinned absolute rescue: attribution hedging must beat retry-only on
#: p99 by at least this factor.  Quick-grid measurement: 1.75x.
MIN_ATTRIBUTION_RESCUE = 1.3

#: Pinned relative margin: attribution's rescue ratio over the global
#: fixed-percentile policy's rescue ratio (equivalently global p99 /
#: attribution p99).  Quick-grid measurement: 1.18x.
MIN_ATTRIBUTION_ADVANTAGE = 1.05


def test_fault_tail_resilience_rescues_p99(exhibit):
    result = exhibit("fault_tail")
    for server, policies in result.data.items():
        none = policies["no-resilience"]
        retry = policies["retry"]
        hedged = policies["hedge+retry"]

        # Headline claim: hedging+retry cuts p99 by at least 2x versus
        # running naked under the same fault schedule.
        assert none["p99"] >= 2.0 * hedged["p99"], (
            f"{server}: p99 {none['p99'] * 1e3:.2f}ms naked vs "
            f"{hedged['p99'] * 1e3:.2f}ms hedged — expected >= 2x")

        # Retry alone already beats no-resilience.
        assert none["p99"] > retry["p99"]

        # The machinery actually engaged, and completing sub-queries
        # faster must not cost throughput.
        assert retry["retries"] > 0
        assert hedged["hedges"] > 0
        assert hedged["throughput"] > none["throughput"]

        # A fault is a slowdown, not an outage: nothing should have
        # exhausted its retries and failed outright.
        assert hedged["failed_subqueries"] == 0


def test_adaptive_hedge_attribution_beats_global_percentile(exhibit):
    result = exhibit("adaptive_hedge")
    retry = result.data["retry-only"]
    global_p95 = result.data["global-p95"]
    attribution = result.data["attribution"]

    # Headline claim: per-shard attribution hedging rescues p99 at
    # least as hard as the global-percentile hedge (and both rescue).
    attr_rescue = retry["p99"] / attribution["p99"]
    global_rescue = retry["p99"] / global_p95["p99"]
    assert attr_rescue >= MIN_ATTRIBUTION_RESCUE, (
        f"attribution rescued p99 only {attr_rescue:.2f}x vs retry-only "
        f"(expected >= {MIN_ATTRIBUTION_RESCUE}x)")
    assert attr_rescue >= MIN_ATTRIBUTION_ADVANTAGE * global_rescue, (
        f"attribution rescue {attr_rescue:.2f}x vs global-p95 "
        f"{global_rescue:.2f}x — expected >= "
        f"{MIN_ATTRIBUTION_ADVANTAGE}x advantage")

    # Both hedging policies engaged, at no meaningful throughput cost.
    assert global_p95["hedge_wins"] > 0
    assert attribution["hedge_wins"] > 0
    assert attribution["throughput"] >= 0.95 * retry["throughput"]

    # The digest converged per shard: the cross-rack shards (odd
    # rack_of) must have learned visibly larger delays than the
    # rack-local ones — the heterogeneity the global window cannot see.
    delays = result.data["hedge_delays"]["attribution"]
    assert len(delays) >= 10
    values = sorted(delays.values())
    assert values[-1] > 1.3 * values[0]


def collect_metrics(quick: bool = True, seed: int = 42,
                    jobs: int = 1) -> dict:
    """Run the adaptive_hedge exhibit and flatten the headline numbers
    into one metrics dict."""
    from repro.experiments.figures import adaptive_hedge

    started = time.perf_counter()
    result = adaptive_hedge(quick=quick, seed=seed, jobs=jobs)
    wall = time.perf_counter() - started
    retry = result.data["retry-only"]["p99"]
    global_p95 = result.data["global-p95"]["p99"]
    attribution = result.data["attribution"]["p99"]
    return {
        "exhibit_wall_sec": round(wall, 2),
        "p99_retry_only_ms": round(1e3 * retry, 3),
        "p99_global_p95_ms": round(1e3 * global_p95, 3),
        "p99_attribution_ms": round(1e3 * attribution, 3),
        "attribution_rescue_ratio": round(retry / attribution, 3),
        "global_rescue_ratio": round(retry / global_p95, 3),
        "attribution_advantage_ratio": round(global_p95 / attribution, 3),
        "hedges_attribution": round(
            result.data["attribution"]["hedges"]),
        "hedge_wins_attribution": round(
            result.data["attribution"]["hedge_wins"]),
        "learned_shards": len(result.data["hedge_delays"]["attribution"]),
    }


def check_margin(metrics: dict,
                 min_rescue: float = MIN_ATTRIBUTION_RESCUE,
                 min_advantage: float = MIN_ATTRIBUTION_ADVANTAGE) -> int:
    """Count pinned margins the metrics fell below."""
    checks = (
        ("attribution_rescue_ratio", min_rescue),
        ("attribution_advantage_ratio", min_advantage),
    )
    failures = 0
    for key, threshold in checks:
        value = metrics[key]
        status = "ok" if value >= threshold else "REGRESSED"
        print(f"check {key:32s} {value:6.2f}x (>= {threshold}x) [{status}]")
        if value < threshold:
            failures += 1
    return failures


def load_trajectory() -> dict:
    if BENCH_FILE.exists():
        return json.loads(BENCH_FILE.read_text())
    return {"benchmark": "faults", "entries": []}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="unlabelled",
                        help="entry label recorded in BENCH_faults.json")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the exhibit grid")
    parser.add_argument("--dry-run", action="store_true",
                        help="print results without updating the file")
    parser.add_argument("--quick", action="store_true",
                        help="CI perf-smoke sizing (implies --dry-run)")
    parser.add_argument("--check", action="store_true",
                        help=f"exit 1 if the attribution margins fall "
                             f"below {MIN_ATTRIBUTION_RESCUE}x / "
                             f"{MIN_ATTRIBUTION_ADVANTAGE}x")
    args = parser.parse_args(argv)
    if args.quick:
        args.dry_run = True

    metrics = collect_metrics(quick=args.quick, seed=args.seed,
                              jobs=args.jobs)
    entry = {
        "benchmark": "bench_fault_tail",
        "label": args.label,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "python": platform.python_version(),
        "quick": args.quick,
        "metrics": metrics,
    }
    for key, value in metrics.items():
        print(f"{key:36s} {value}")

    if args.check:
        failures = check_margin(metrics)
        if failures:
            print(f"check FAILED: {failures} margin(s) below the pin")
            return 1
    if not args.dry_run:
        trajectory = load_trajectory()
        trajectory["entries"].append(entry)
        BENCH_FILE.write_text(json.dumps(trajectory, indent=2) + "\n")
        print(f"appended to {BENCH_FILE}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
