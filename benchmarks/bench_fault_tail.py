"""Fault-tail exhibit: resilience must rescue p99 under slow shards.

Shape under the standard slow-shard fault (2 shards intermittently
serving 100x slower, primaries only): without any resilience, every
architecture's p99 is dominated by the slow windows (tens of ms);
deadline+retry with replica failover claws most of it back, and adding
a p95 hedge shaves the remainder.  Measured quick-grid ratios are ~5x
(no-resilience p99 / hedge+retry p99); the assertion pins >= 2x so the
qualitative claim survives seed and sizing drift.
"""


def test_fault_tail_resilience_rescues_p99(exhibit):
    result = exhibit("fault_tail")
    for server, policies in result.data.items():
        none = policies["no-resilience"]
        retry = policies["retry"]
        hedged = policies["hedge+retry"]

        # Headline claim: hedging+retry cuts p99 by at least 2x versus
        # running naked under the same fault schedule.
        assert none["p99"] >= 2.0 * hedged["p99"], (
            f"{server}: p99 {none['p99'] * 1e3:.2f}ms naked vs "
            f"{hedged['p99'] * 1e3:.2f}ms hedged — expected >= 2x")

        # Retry alone already beats no-resilience.
        assert none["p99"] > retry["p99"]

        # The machinery actually engaged, and completing sub-queries
        # faster must not cost throughput.
        assert retry["retries"] > 0
        assert hedged["hedges"] > 0
        assert hedged["throughput"] > none["throughput"]

        # A fault is a slowdown, not an outage: nothing should have
        # exhausted its retries and failed outright.
        assert hedged["failed_subqueries"] == 0
