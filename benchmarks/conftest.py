"""Shared machinery for the exhibit benchmarks.

Every benchmark regenerates one paper exhibit (quick grids), prints the
same rows/series the paper reports, and asserts the qualitative *shape*
— who wins, by roughly what factor, where crossovers fall.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import pytest

from repro.experiments.figures import run_exhibit


@pytest.fixture
def exhibit(benchmark):
    """Run one exhibit exactly once under the benchmark timer and print
    its report."""

    def _run(name, seed=42):
        result = benchmark.pedantic(
            run_exhibit, args=(name,), kwargs={"quick": True, "seed": seed},
            rounds=1, iterations=1)
        print("\n" + result.text + "\n")
        return result

    return _run
