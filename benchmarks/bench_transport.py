"""Result-transport benchmark: columnar shared memory vs pickle.

Measures how fast ``ExperimentResult``\\ s cross the worker→parent
boundary for a ``--full``-shaped tail grid — the payload profile where
transport actually matters (tens of thousands of latency/thread
samples per point, per-class percentile tables, fault counters):

- ``*_merge_latency_us`` — the parent's serial per-result merge cost:
  ``pickle.loads`` of a whole pre-pickled result vs header unpickle +
  columnar decode out of a mapped shared-memory region.  This is the
  number the exhibit runner's merge loop pays per point.
- ``*_results_per_sec`` — end-to-end hand-off rate through a real
  spawn pool: workers hold a prebuilt tail-shaped result and ship it
  per task (encode + ring memcpy + ticket, or highest-protocol
  pickle + pipe), the parent decodes each completion as it lands.
- ``merge_speedup`` / ``pipeline_speedup`` — pickle-over-shm latency
  ratio and shm-over-pickle rate ratio.  Ratios, not absolute rates,
  are what ``--check`` enforces: they hold across machines.

Each full run appends an entry to ``benchmarks/BENCH_core.json`` (the
trajectory file shared with ``bench_kernel``)::

    PYTHONPATH=src python benchmarks/bench_transport.py --label my-change

Use ``--quick`` for CI perf-smoke sizes (implies ``--dry-run``),
``--check`` to fail (exit 1) when ``merge_speedup`` drops under the
1.5x floor or either speedup falls below 80% of the latest recorded
transport entry, and ``--emit PATH`` to write the updated trajectory
to a side file (CI uploads it as an artifact even on dry runs).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import multiprocessing
import pickle
import platform
import sys
import time
from array import array
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.config import ExperimentConfig, ExperimentResult
from repro.experiments.transport import ShmRing, decode_result, encode_result

BENCH_FILE = Path(__file__).resolve().parent / "BENCH_core.json"

PERCENTILES = (50.0, 80.0, 90.0, 95.0, 99.0, 99.9)

#: Request classes a --full tab2/fig13 point reports per-class tables
#: for, and the fault counters a resilience exhibit point carries.
CLASSES = ("lfan", "sfan", "point", "scan")
FAULT_NAMES = ("faults.injected", "faults.shard_stall", "faults.rack_down",
               "resilience.hedges", "resilience.hedge_wins",
               "resilience.retries", "resilience.breaker_open",
               "server.completed.degraded")


def _lcg(seed: int = 12345):
    """Deterministic value stream — no RNG dependency, same shape every
    run and every machine."""
    state = seed
    while True:
        state = (state * 1103515245 + 12345) % (1 << 31)
        yield state / (1 << 31)


def make_result(n_latency: int, n_thread: int) -> ExperimentResult:
    """A synthetic result shaped like one --full tail-exhibit point."""
    values = _lcg()
    lat_t, lat_v = array("d"), array("d")
    for i in range(n_latency):
        lat_t.append(i * 1e-3)
        lat_v.append(0.001 + next(values) * 0.2)
    thr_t, thr_v = array("d"), array("d")
    for i in range(n_thread):
        thr_t.append(i * 0.05)
        thr_v.append(float(int(next(values) * 200)))
    return ExperimentResult(
        config=ExperimentConfig(server="doubleface", concurrency=256,
                                keep_latency_samples=True),
        throughput=next(values) * 50_000,
        percentiles={q: next(values) for q in PERCENTILES},
        class_percentiles={k: {q: next(values) for q in PERCENTILES}
                           for k in CLASSES},
        mean_rt=next(values),
        cpu_utilization=next(values),
        cpu_shares={c: next(values) for c in
                    ("app", "lock", "thread_init", "select", "syscall",
                     "ctx_switch")},
        ctx_switches_per_sec=next(values) * 1e5,
        avg_running_threads=next(values) * 300,
        selector_stats=[],
        selects_per_sec=next(values) * 1e4,
        select_cpu_share=next(values),
        pool_spawns=float(int(next(values) * 100)),
        completed=float(n_latency),
        window=60.0,
        thread_times=thr_t, thread_values=thr_v,
        latency_times=lat_t, latency_values=lat_v,
        fault_counters={name: float(int(next(values) * 1000))
                        for name in FAULT_NAMES},
    )


# ---------------------------------------------------------------------------
# Pool workers (spawn: this module is re-imported in each worker)
# ---------------------------------------------------------------------------

_RESULT = None
_RING = None


def _init_worker(spec, n_latency: int, n_thread: int) -> None:
    global _RESULT, _RING
    _RESULT = make_result(n_latency, n_thread)
    _RING = ShmRing.attach(spec) if spec is not None else None


def _ship_shm(_index: int):
    """Per-task shm transport: flatten + ring memcpy + ticket (inline
    column bytes when the ring is full) — the `_run_columnar` path."""
    header, columns = encode_result(_RESULT)
    header_bytes = pickle.dumps(header, pickle.HIGHEST_PROTOCOL)
    ticket = _RING.write(columns)
    if ticket is None:
        return header_bytes, None, memoryview(columns).cast("B").tobytes()
    return header_bytes, ticket, None


def _ship_pickle(_index: int) -> bytes:
    """Per-task pickle transport: whole-result highest-protocol pickle
    through the result pipe — the `_run_pickled` path."""
    return pickle.dumps(_RESULT, pickle.HIGHEST_PROTOCOL)


# ---------------------------------------------------------------------------
# Benchmarks
# ---------------------------------------------------------------------------

def bench_merge(n_latency: int, n_thread: int, repeats: int) -> dict:
    """Parent-side per-result merge cost, in microseconds (min over
    *repeats* timed decodes — the decode is the serial bottleneck of
    the parallel runner's gather loop)."""
    result = make_result(n_latency, n_thread)
    blob = pickle.dumps(result, pickle.HIGHEST_PROTOCOL)
    header, columns = encode_result(result)
    header_bytes = pickle.dumps(header, pickle.HIGHEST_PROTOCOL)

    ring = ShmRing.create(len(columns) * columns.itemsize + 64)
    try:
        offset, nbytes = ring.write(columns)

        def timed(fn):
            best = float("inf")
            for _ in range(repeats):
                started = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - started)
            return best * 1e6

        pickle_us = timed(lambda: pickle.loads(blob))

        def shm_decode():
            view = ring.view(offset, nbytes)
            try:
                decode_result(pickle.loads(header_bytes), view)
            finally:
                view.release()

        shm_us = timed(shm_decode)

        # Honesty check: both paths must rebuild the identical result.
        view = ring.view(offset, nbytes)
        try:
            rebuilt = decode_result(pickle.loads(header_bytes), view)
        finally:
            view.release()
        assert dataclasses.asdict(rebuilt) == \
            dataclasses.asdict(pickle.loads(blob)), "transport identity broke"
    finally:
        ring.destroy()
    return {"pickle_merge_latency_us": round(pickle_us, 1),
            "shm_merge_latency_us": round(shm_us, 1)}


def bench_pool(transport: str, points: int, jobs: int, n_latency: int,
               n_thread: int, ring_bytes: int = 32 << 20) -> float:
    """End-to-end results/sec through a spawn pool: *points* hand-offs
    of the prebuilt tail-shaped result, parent decoding each completion
    (imap_unordered, like the real runner)."""
    ctx = multiprocessing.get_context("spawn")
    ring = ShmRing.create(ring_bytes, ctx) if transport == "shm" else None
    spec = ring.spec() if ring is not None else None
    try:
        with ctx.Pool(processes=jobs, initializer=_init_worker,
                      initargs=(spec, n_latency, n_thread)) as pool:
            ship = _ship_shm if transport == "shm" else _ship_pickle
            # Warm-up: worker init (result build) + first-task overhead.
            for payload in pool.imap_unordered(ship, range(jobs)):
                _consume(transport, payload, ring)
            started = time.perf_counter()
            for payload in pool.imap_unordered(ship, range(points)):
                _consume(transport, payload, ring)
            elapsed = time.perf_counter() - started
    finally:
        if ring is not None:
            ring.destroy()
    return points / elapsed


def _consume(transport: str, payload, ring) -> ExperimentResult:
    if transport == "pickle":
        return pickle.loads(payload)
    header_bytes, ticket, inline = payload
    header = pickle.loads(header_bytes)
    if ticket is None:
        return decode_result(header, inline)
    offset, nbytes = ticket
    view = ring.view(offset, nbytes)
    try:
        return decode_result(header, view)
    finally:
        view.release()
        ring.release(nbytes)


def run_all(quick: bool = False, repeats: int = 2) -> dict:
    if quick:
        n_latency, n_thread, points, merge_repeats = 20_000, 2_000, 24, 30
    else:
        n_latency, n_thread, points, merge_repeats = 100_000, 5_000, 48, 20
    jobs = min(4, multiprocessing.cpu_count() or 1)

    metrics = bench_merge(n_latency, n_thread, merge_repeats)

    def best_rate(transport):
        return max(bench_pool(transport, points, jobs, n_latency, n_thread)
                   for _ in range(repeats))

    metrics["pickle_results_per_sec"] = round(best_rate("pickle"), 1)
    metrics["shm_results_per_sec"] = round(best_rate("shm"), 1)
    metrics["merge_speedup"] = round(
        metrics["pickle_merge_latency_us"] / metrics["shm_merge_latency_us"],
        2)
    metrics["pipeline_speedup"] = round(
        metrics["shm_results_per_sec"] / metrics["pickle_results_per_sec"], 2)
    metrics["grid_points"] = points
    metrics["latency_samples_per_point"] = n_latency
    return metrics


#: --check floors: the tentpole's acceptance bar (merge must be at
#: least 1.5x faster than pickle) and the regression band against the
#: last recorded entry (speedups are machine-portable ratios).
SPEEDUP_FLOOR = 1.5
BASELINE_BAND = 0.80


def check_regression(metrics: dict, trajectory: dict) -> int:
    failures = 0
    if metrics["merge_speedup"] < SPEEDUP_FLOOR:
        print(f"check merge_speedup {metrics['merge_speedup']:.2f}x "
              f"< floor {SPEEDUP_FLOOR}x [REGRESSED]")
        failures += 1
    else:
        print(f"check merge_speedup {metrics['merge_speedup']:.2f}x "
              f">= floor {SPEEDUP_FLOOR}x [ok]")
    # Band comparisons only make sense against a baseline measured at
    # the same payload size — quick and full runs sit at different
    # points of the serialize-vs-memcpy curve.
    baseline = None
    for entry in reversed(trajectory.get("entries", [])):
        if ("merge_speedup" in entry["metrics"]
                and entry["metrics"].get("latency_samples_per_point")
                == metrics["latency_samples_per_point"]):
            baseline = entry
            break
    if baseline is None:
        print("check: no same-size transport baseline in BENCH_core.json; "
              "floor check only")
        return failures
    for key in ("merge_speedup", "pipeline_speedup"):
        base = baseline["metrics"].get(key)
        if not base:
            continue
        ratio = metrics[key] / base
        status = "ok" if ratio >= BASELINE_BAND else "REGRESSED"
        print(f"check {key:20s} {ratio:5.2f}x of {baseline['label']}"
              f" [{status}]")
        if ratio < BASELINE_BAND:
            failures += 1
    return failures


def load_trajectory() -> dict:
    if BENCH_FILE.exists():
        return json.loads(BENCH_FILE.read_text())
    return {"benchmark": "bench_kernel", "entries": []}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="unlabelled",
                        help="entry label recorded in BENCH_core.json")
    parser.add_argument("--dry-run", action="store_true",
                        help="print results without updating the file")
    parser.add_argument("--quick", action="store_true",
                        help="CI perf-smoke sizes (implies --dry-run)")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 if merge_speedup < 1.5x or either "
                             "speedup is <80%% of the latest recorded "
                             "transport entry")
    parser.add_argument("--emit", metavar="PATH", default=None,
                        help="also write the updated trajectory (with this "
                             "run's entry) to PATH — works with --dry-run, "
                             "for CI artifact upload")
    args = parser.parse_args(argv)
    if args.quick:
        args.dry_run = True

    metrics = run_all(quick=args.quick, repeats=3 if args.check else 2)
    entry = {
        "label": args.label,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "python": platform.python_version(),
        "metrics": metrics,
    }
    for key, value in metrics.items():
        print(f"{key:28s} {value}")

    trajectory = load_trajectory()
    failures = check_regression(metrics, trajectory) if args.check else 0
    if args.emit or not args.dry_run:
        trajectory["entries"].append(entry)
        if args.emit:
            Path(args.emit).write_text(
                json.dumps(trajectory, indent=2) + "\n")
            print(f"emitted trajectory to {args.emit}")
        if not args.dry_run:
            BENCH_FILE.write_text(json.dumps(trajectory, indent=2) + "\n")
            print(f"appended to {BENCH_FILE}")
    if failures:
        print(f"check FAILED: {failures} metric(s) regressed")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
