"""Figure 7: AIO's normalized throughput decays as fanout grows (20 kB).

Paper shape: at fanout 1 the two MongoDB asynchronous drivers are
nearly equal; by fanout 20 AIOBackend has fallen well behind
NettyBackend (paper: -36%), because more concurrent fanout responses
mean more on-demand workers and more multithreading overhead.
"""


def test_fig07_aio_fanout_degradation(exhibit):
    result = exhibit("fig07")
    fanouts = result.data["fanout"]
    norm_aio = result.data["normalized"]["AIOBackend"]

    at1 = norm_aio[fanouts.index(1)]
    at20 = norm_aio[fanouts.index(20)]

    # Near-parity at fanout 1.
    assert at1 > 0.9, f"AIO should match Netty at fanout 1: {norm_aio}"
    # Clear degradation by fanout 20.
    assert at20 < at1, f"AIO should degrade with fanout: {norm_aio}"
    assert at20 < 0.97

    # Monotone-ish decay across the sweep (allow small wiggle).
    assert norm_aio[-1] <= norm_aio[0] + 0.05
