"""Open-workload rack-fault exhibit: replica routing must rescue p99.

Shape under the standard rack brown-out (one of two racks serving 100x
slower through ~50%-duty windows, every replica it hosts at once): with
primary-only routing and no resilience, every architecture's p99 is
dominated by the browned-out rack (tens of ms); deadline+retry failover
claws back part of it; least-outstanding replica routing plus the
adaptive p95 hedge recovers near-healthy tails because new sub-queries
drain away from the slow rack *before* any deadline has to fire.
Measured quick-grid ratios are ~9-22x (primary p99 / replica+hedge
p99); the assertion pins >= 3x so the qualitative claim survives seed
and sizing drift.

Doubles as a CLI recording a perf-trajectory file, mirroring
``bench_kernel.py``::

    PYTHONPATH=src python benchmarks/bench_fault_open.py --label my-change

``--dry-run`` prints without touching ``BENCH_faults.json``, ``--quick``
uses the CI perf-smoke sizing (implies ``--dry-run``), and ``--check``
exits 1 when any architecture's rescue ratio drops below the pinned
margin — the same invariant the pytest assertion enforces.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

BENCH_FILE = Path(__file__).resolve().parent / "BENCH_faults.json"

#: Pinned headline margin: replica-aware routing + hedging must beat
#: primary-only routing on p99 by at least this factor, per
#: architecture.  Quick-grid measurements sit at 9-22x.
MIN_P99_RESCUE = 3.0


def test_fault_open_replica_routing_rescues_p99(exhibit):
    result = exhibit("fault_open")
    for server, policies in result.data.items():
        primary = policies["primary"]
        retry = policies["primary+retry"]
        routed = policies["replica+hedge"]

        # Headline claim: replica-aware routing + hedging beats
        # primary-only routing on p99 by the pinned margin.
        assert primary["p99"] >= MIN_P99_RESCUE * routed["p99"], (
            f"{server}: p99 {primary['p99'] * 1e3:.2f}ms primary-only vs "
            f"{routed['p99'] * 1e3:.2f}ms replica+hedge — expected >= "
            f"{MIN_P99_RESCUE}x")

        # Retry failover alone helps, but routing+hedging beats it: the
        # selector avoids the slow rack instead of discovering it one
        # deadline at a time.
        assert primary["p99"] > retry["p99"]
        assert retry["p99"] > routed["p99"]

        # The machinery actually engaged: hedges fired and failovers
        # crossed to the healthy rack, at no throughput cost.
        assert routed["hedges"] > 0
        assert routed["failovers"] > 0
        assert routed["throughput"] >= 0.98 * primary["throughput"]

        # A brown-out is a slowdown, not an outage: nothing should have
        # exhausted its retries and failed outright.
        assert routed["failed_subqueries"] == 0


def collect_metrics(quick: bool = True, seed: int = 42,
                    jobs: int = 1) -> dict:
    """Run the exhibit and flatten the per-architecture headline
    numbers into one metrics dict."""
    from repro.experiments.figures import fault_open

    started = time.perf_counter()
    result = fault_open(quick=quick, seed=seed, jobs=jobs)
    wall = time.perf_counter() - started
    metrics: dict = {"exhibit_wall_sec": round(wall, 2)}
    for server, policies in result.data.items():
        primary = policies["primary"]["p99"]
        routed = policies["replica+hedge"]["p99"]
        metrics[f"{server}_p99_primary_ms"] = round(1e3 * primary, 3)
        metrics[f"{server}_p99_replica_hedge_ms"] = round(1e3 * routed, 3)
        metrics[f"{server}_p99_rescue_ratio"] = round(primary / routed, 2)
    return metrics


def check_margin(metrics: dict, threshold: float = MIN_P99_RESCUE) -> int:
    """Count architectures whose rescue ratio fell below *threshold*."""
    failures = 0
    for key, value in metrics.items():
        if not key.endswith("_p99_rescue_ratio"):
            continue
        status = "ok" if value >= threshold else "REGRESSED"
        print(f"check {key:40s} {value:6.2f}x (>= {threshold}x) [{status}]")
        if value < threshold:
            failures += 1
    return failures


def load_trajectory() -> dict:
    # BENCH_faults.json is shared with bench_fault_tail.py; each entry
    # carries a "benchmark" tag naming the script that produced it.
    if BENCH_FILE.exists():
        return json.loads(BENCH_FILE.read_text())
    return {"benchmark": "faults", "entries": []}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="unlabelled",
                        help="entry label recorded in BENCH_faults.json")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the exhibit grid")
    parser.add_argument("--dry-run", action="store_true",
                        help="print results without updating the file")
    parser.add_argument("--quick", action="store_true",
                        help="CI perf-smoke sizing (implies --dry-run)")
    parser.add_argument("--check", action="store_true",
                        help=f"exit 1 if any architecture's p99 rescue "
                             f"ratio is < {MIN_P99_RESCUE}x")
    args = parser.parse_args(argv)
    if args.quick:
        args.dry_run = True

    metrics = collect_metrics(quick=args.quick, seed=args.seed,
                              jobs=args.jobs)
    entry = {
        "benchmark": "bench_fault_open",
        "label": args.label,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "python": platform.python_version(),
        "quick": args.quick,
        "metrics": metrics,
    }
    for key, value in metrics.items():
        print(f"{key:44s} {value}")

    if args.check:
        failures = check_margin(metrics)
        if failures:
            print(f"check FAILED: {failures} architecture(s) below the "
                  f"{MIN_P99_RESCUE}x margin")
            return 1
    if not args.dry_run:
        trajectory = load_trajectory()
        trajectory["entries"].append(entry)
        BENCH_FILE.write_text(json.dumps(trajectory, indent=2) + "\n")
        print(f"appended to {BENCH_FILE}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
