"""Kernel / metrics micro-benchmarks with a perf-trajectory file.

Measures the hot paths the exhibit harness spends its time in:

- ``timeout_events_per_sec`` — pure kernel: many processes chaining
  short timeouts (calendar-queue push/dispatch, ``Process._resume``,
  callbacks).
- ``queue_events_per_sec`` — kernel + :class:`repro.sim.resources.Queue`
  hand-off (producer/consumer pairs, the reactor-mailbox pattern).
- ``fanout_events_per_sec`` — the paper's headline shape: fanout-20
  scatter/gather joins via ``CountdownLatch`` + ``call_later`` (one
  allocation + N integer decrements per request), with
  ``fanout_allof_events_per_sec`` as the old ``AllOf``-over-N-Timeouts
  pattern for reference.
- ``percentile_query_sec`` — ``LatencyRecorder.cdf_points`` over the
  harness's six percentiles on a large sample set (the sorted-window
  cache target).
- ``sched_*_events_per_sec`` — the CPU scheduler hot path: threads
  chaining multi-quantum jobs through :class:`repro.sim.cpu.Cpu`.
  ``sched_uncontended`` runs one thread per core with stint coalescing
  on (one completion event per job), ``sched_sliced`` is the same
  workload with coalescing disabled (one event per quantum — the
  pre-coalescing schedule), and ``sched_contended`` oversubscribes the
  cores 3:1 so the run queue stays hot (coalescing rarely applies;
  guards the preemption path).  All three rates are normalised to the
  *sliced* schedule's event count so they compare at equal logical
  work; ``sched_coalesce_speedup`` is measured separately as the
  median of paired coalesced/sliced runs (robust on noisy runners)
  and pinned to a floor by ``--check``.
- ``trace_overhead_ratio`` — what 1%-sampled request tracing
  (``repro.trace``) costs on a real exhibit-shaped run: the median of
  paired untraced/traced wall-time ratios over identical simulations
  (tracing adds no kernel events, so the wall ratio *is* the
  events/sec ratio).  ``--check`` pins it ≥ ``TRACE_OVERHEAD_FLOOR``.
- ``obs_overhead_ratio`` — the full observability stack on the same
  shape: 1%-sampled tracing + flame aggregation + the telemetry
  ticker at the default 10 ms period vs the plain run, paired-median
  like the trace ratio.  ``--check`` pins it ≥ ``OBS_OVERHEAD_FLOOR``.
- ``quick_exhibit_wall_sec`` — one representative end-to-end quick
  exhibit (``tab3``) through :func:`run_exhibit`.

Each run appends an entry to ``benchmarks/BENCH_core.json`` so future
PRs can diff events/sec against every earlier recording::

    PYTHONPATH=src python benchmarks/bench_kernel.py --label my-change

Use ``--no-exhibit`` for a fast kernel-only pass, ``--dry-run`` to
print without touching the trajectory file, ``--quick`` for the CI
perf-smoke sizes, and ``--check`` to fail (exit 1) when any events/sec
metric regresses more than 20% against the latest recorded entry
(``--check`` runs best-of-5 instead of best-of-3, trading a few extra
seconds for the variance headroom the tighter band needs).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.sim.kernel import Simulator
from repro.sim.metrics import LatencyRecorder
from repro.sim.resources import Queue

BENCH_FILE = Path(__file__).resolve().parent / "BENCH_core.json"

#: The percentile set every ExperimentResult reports.
PERCENTILES = (50.0, 80.0, 90.0, 95.0, 99.0, 99.9)

#: --check fails if the coalescing speedup on the uncontended scheduler
#: workload drops below this (the PR's pinned floor; speedup ratios are
#: machine-portable, so the floor holds on shared CI runners too).
COALESCE_SPEEDUP_FLOOR = 1.3

#: --check fails if 1%-sampled tracing costs more than 10% events/sec
#: on the exhibit-shaped workload (ratio of untraced to traced rate
#: must stay above this; ratios are machine-portable).
TRACE_OVERHEAD_FLOOR = 0.9

#: --check fails if the full observability stack (1%-sampled tracing +
#: flame aggregation + the 10 ms telemetry ticker) costs more than 10%
#: wall time on the same exhibit-shaped workload.
OBS_OVERHEAD_FLOOR = 0.9


def bench_timeouts(processes: int = 50, chain: int = 2000) -> float:
    """Events/sec for *processes* generators each chaining *chain*
    timeouts."""

    def pingpong(sim, n):
        for _ in range(n):
            yield sim.timeout(0.001)

    sim = Simulator()
    for _ in range(processes):
        sim.process(pingpong(sim, chain))
    started = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - started
    return sim._event_count / elapsed


def bench_queue_handoff(pairs: int = 20, items: int = 5000) -> float:
    """Events/sec for producer/consumer pairs trading items through a
    Queue (the reactor-mailbox hot path)."""

    def producer(sim, queue, n):
        for i in range(n):
            queue.put(i)
            yield sim.timeout(0.0001)

    def consumer(sim, queue, n):
        for _ in range(n):
            yield queue.get()

    sim = Simulator()
    for _ in range(pairs):
        queue = Queue(sim)
        sim.process(producer(sim, queue, items))
        sim.process(consumer(sim, queue, items))
    started = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - started
    return sim._event_count / elapsed


def bench_fanout(requests: int = 3000, fanout: int = 20,
                 use_latch: bool = True) -> float:
    """Events/sec for fanout-N scatter/gather joins (Figs. 4-8 shape).

    ``use_latch=True`` runs the countdown-latch path: one
    :class:`CountdownLatch` plus ``fanout`` bare ``call_later`` entries
    per request.  ``use_latch=False`` reproduces the pre-latch pattern:
    an ``AllOf`` over ``fanout`` Timeout child events (one Event
    allocation + callback registration per sub-query).  Both dispatch
    ``fanout + 1`` kernel events per request, so the rates compare
    apples to apples.
    """

    def driver_allof(sim, n, width):
        for _ in range(n):
            children = [sim.timeout(0.0001 * (1 + i % 5))
                        for i in range(width)]
            yield sim.all_of(children)

    def driver_latch(sim, n, width):
        for _ in range(n):
            latch = sim.latch(width)
            count_down = latch.count_down
            call_later = sim.call_later
            for i in range(width):
                call_later(0.0001 * (1 + i % 5), count_down)
            yield latch

    sim = Simulator()
    driver = driver_latch if use_latch else driver_allof
    sim.process(driver(sim, requests, fanout))
    started = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - started
    return sim._event_count / elapsed


def bench_percentiles(samples: int = 200_000, repeats: int = 20) -> float:
    """Seconds for *repeats* full cdf_points queries over *samples*
    recorded latencies (lower is better)."""
    recorder = LatencyRecorder()
    # Deterministic pseudo-random values; no RNG dependency needed.
    value = 0.5
    for i in range(samples):
        value = (value * 1103515245 + 12345) % 1.0 + 1e-9
        recorder.record(i * 1e-4, value)
    recorder.start_at = samples * 1e-4 * 0.2  # discard a warm-up fifth
    started = time.perf_counter()
    for _ in range(repeats):
        recorder.cdf_points(PERCENTILES)
        recorder.mean()
        recorder.maximum()
        len(recorder)
    return time.perf_counter() - started


def _scheduler_run(threads: int, jobs: int, work: float,
                   contended: bool, coalesce: bool):
    """One scheduler workload run; returns (simulator, elapsed)."""
    from repro.sim.cpu import Cpu
    from repro.sim.metrics import Metrics
    from repro.sim.params import CostParams
    from repro.sim.threads import SimThread

    sim = Simulator()
    cpu = Cpu(sim, Metrics(), CostParams(), cores=threads,
              coalesce=coalesce)
    n_threads = threads * 3 if contended else threads

    def worker(thread, n):
        for _ in range(n):
            yield cpu.execute(thread, work)

    for _ in range(n_threads):
        sim.process(worker(SimThread(cpu), jobs))
    started = time.perf_counter()
    sim.run()
    return sim, time.perf_counter() - started


#: Sliced-schedule event counts per workload shape (deterministic, so
#: one reference run per shape is enough).
_SLICED_EVENTS = {}


def bench_scheduler(threads: int = 2, jobs: int = 400, work: float = 8.0e-3,
                    contended: bool = False, coalesce: bool = True) -> float:
    """Events/sec for threads chaining multi-quantum CPU jobs.

    *work* spans several scheduler quanta (default 8 at the 1 ms
    quantum), the shape stint coalescing targets.  The rate is
    normalised to the **sliced** schedule's event count for this
    workload shape, so coalesced and sliced runs compare at equal
    logical work (coalescing's fewer physical events show up as a
    higher rate, exactly like any other events/sec win).
    """
    key = (threads, jobs, work, contended)
    reference_events = _SLICED_EVENTS.get(key)
    if reference_events is None:
        sim, _ = _scheduler_run(threads, jobs, work, contended,
                                coalesce=False)
        reference_events = sim._event_count
        _SLICED_EVENTS[key] = reference_events
    sim, elapsed = _scheduler_run(threads, jobs, work, contended, coalesce)
    return reference_events / elapsed


def bench_scheduler_speedup(rounds: int = 5, threads: int = 2,
                            jobs: int = 150, work: float = 16.0e-3) -> float:
    """Coalescing speedup on the uncontended workload, measured as the
    **median of paired back-to-back ratios**.

    Taking the ratio of two independently best-of-N rates is unstable on
    noisy shared runners (each side can catch a different slowdown); a
    paired run puts both schedules under near-identical machine
    conditions and the median discards the odd bad round, so the ratio
    stays within a few percent run to run.
    """
    ratios = []
    for _ in range(rounds):
        _, elapsed_coalesced = _scheduler_run(
            threads, jobs, work, contended=False, coalesce=True)
        _, elapsed_sliced = _scheduler_run(
            threads, jobs, work, contended=False, coalesce=False)
        ratios.append(elapsed_sliced / elapsed_coalesced)
    ratios.sort()
    return ratios[len(ratios) // 2]


def bench_trace_overhead(rounds: int = 3, duration: float = 0.5) -> float:
    """1%-sampled tracing cost on a real exhibit-shaped run.

    Median of **paired** untraced/traced wall-time ratios (the pairing
    logic of :func:`bench_scheduler_speedup`): both runs simulate the
    identical event sequence — tracing is observation-only and the
    sampler draws from its own stream — so the wall ratio is exactly
    the events/sec ratio.  1.0 = free; 0.9 = tracing costs 10%.
    """
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import run_experiment

    def run(trace):
        config = ExperimentConfig(
            server="doubleface", concurrency=16, fanout=5,
            response_size=100, warmup=0.2, duration=duration, seed=42,
            trace=trace, trace_sample=0.01)
        started = time.perf_counter()
        run_experiment(config)
        return time.perf_counter() - started

    ratios = []
    for _ in range(rounds):
        elapsed_untraced = run(trace=False)
        elapsed_traced = run(trace=True)
        ratios.append(elapsed_untraced / elapsed_traced)
    ratios.sort()
    return ratios[len(ratios) // 2]


def bench_obs_overhead(rounds: int = 3, duration: float = 0.5) -> float:
    """Full-observability cost on the exhibit-shaped run.

    Same paired-median protocol as :func:`bench_trace_overhead`, but
    the observed side carries the whole stack: tracing at 1% (with the
    per-request flame fold in ``Tracer.finish``) plus the telemetry
    ticker at the default 10 ms period.  The ticker's events shift seq
    numbers only, so both sides still simulate the identical schedule
    and the wall ratio stays an apples-to-apples cost measure.
    1.0 = free; 0.9 = observability costs 10%.
    """
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import run_experiment

    def run(observed):
        config = ExperimentConfig(
            server="doubleface", concurrency=16, fanout=5,
            response_size=100, warmup=0.2, duration=duration, seed=42,
            trace=observed, trace_sample=0.01, obs=observed)
        started = time.perf_counter()
        run_experiment(config)
        return time.perf_counter() - started

    ratios = []
    for _ in range(rounds):
        elapsed_plain = run(observed=False)
        elapsed_observed = run(observed=True)
        ratios.append(elapsed_plain / elapsed_observed)
    ratios.sort()
    return ratios[len(ratios) // 2]


def bench_quick_exhibit() -> float:
    """Wall-clock seconds for one representative quick exhibit."""
    from repro.experiments.figures import run_exhibit

    started = time.perf_counter()
    run_exhibit("tab3", quick=True, seed=42)
    return time.perf_counter() - started


def run_all(with_exhibit: bool = True, quick: bool = False,
            repeats: int = 3) -> dict:
    # Every events/sec metric is best-of-N (default 3; the CI --check
    # pass uses 5): one short run routinely loses 20%+ to scheduler
    # noise (CI runners especially), and the max is the least-biased
    # estimator of the machine's actual rate.
    def best(fn, *args, **kw):
        return max(fn(*args, **kw) for _ in range(repeats))

    if quick:
        # Sized so per-event rates land within a few percent of the
        # full-size runs (interpreter warm-up amortized) while the whole
        # quick pass stays a few seconds — tight enough for the CI
        # check's 30% regression band to be meaningful.
        metrics = {
            "timeout_events_per_sec": round(best(bench_timeouts, 50, 1000)),
            "queue_events_per_sec": round(best(bench_queue_handoff, 20, 2500)),
            "fanout_events_per_sec": round(best(bench_fanout, 1500)),
            "fanout_allof_events_per_sec": round(
                best(bench_fanout, 1500, use_latch=False)),
            "sched_uncontended_events_per_sec": round(
                best(bench_scheduler)),
            "sched_sliced_events_per_sec": round(
                best(bench_scheduler, coalesce=False)),
            "sched_contended_events_per_sec": round(
                best(bench_scheduler, contended=True)),
            "percentile_query_sec": round(bench_percentiles(50_000, 5), 4),
        }
    else:
        metrics = {
            "timeout_events_per_sec": round(best(bench_timeouts)),
            "queue_events_per_sec": round(best(bench_queue_handoff)),
            "fanout_events_per_sec": round(best(bench_fanout)),
            "fanout_allof_events_per_sec": round(
                best(bench_fanout, use_latch=False)),
            "sched_uncontended_events_per_sec": round(best(bench_scheduler)),
            "sched_sliced_events_per_sec": round(
                best(bench_scheduler, coalesce=False)),
            "sched_contended_events_per_sec": round(
                best(bench_scheduler, contended=True)),
            "percentile_query_sec": round(
                min(bench_percentiles() for _ in range(3)), 4),
        }
    metrics["sched_coalesce_speedup"] = round(
        bench_scheduler_speedup(rounds=5 if quick else 7), 2)
    metrics["trace_overhead_ratio"] = round(
        bench_trace_overhead(rounds=3 if quick else 5,
                             duration=0.4 if quick else 0.8), 3)
    metrics["obs_overhead_ratio"] = round(
        bench_obs_overhead(rounds=3 if quick else 5,
                           duration=0.4 if quick else 0.8), 3)
    if with_exhibit:
        metrics["quick_exhibit_wall_sec"] = round(bench_quick_exhibit(), 2)
    return metrics


def check_regression(metrics: dict, trajectory: dict,
                     threshold: float = 0.80) -> int:
    """Compare events/sec metrics against the latest recorded entry.

    Returns the number of metrics that regressed below ``threshold``
    times their baseline (0 = pass).  Metrics the baseline entry does
    not carry are skipped.
    """
    # The trajectory file is shared with other benchmarks (e.g.
    # bench_transport): baseline = the newest entry that actually
    # carries kernel events/sec metrics, not just entries[-1].
    baseline = None
    for entry in reversed(trajectory.get("entries", [])):
        if any(k.endswith("_events_per_sec") for k in entry["metrics"]):
            baseline = entry
            break
    if baseline is None:
        print("check: no kernel baseline entries in BENCH_core.json; "
              "skipping")
        return 0
    failures = 0
    for key, value in metrics.items():
        if not key.endswith("_events_per_sec"):
            continue
        if key.startswith("sched_"):
            # Scheduler runs are short and CPU-scheduler-shaped, so
            # their absolute rates swing well past the band with
            # machine load; the regression pin for this path is the
            # machine-portable paired ratio (COALESCE_SPEEDUP_FLOOR).
            continue
        base = baseline["metrics"].get(key)
        if not base:
            continue
        ratio = value / base
        status = "ok" if ratio >= threshold else "REGRESSED"
        print(f"check {key:28s} {ratio:5.2f}x of {baseline['label']}"
              f" [{status}]")
        if ratio < threshold:
            failures += 1
    return failures


def load_trajectory() -> dict:
    if BENCH_FILE.exists():
        return json.loads(BENCH_FILE.read_text())
    return {"benchmark": "bench_kernel", "entries": []}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="unlabelled",
                        help="entry label recorded in BENCH_core.json")
    parser.add_argument("--no-exhibit", action="store_true",
                        help="skip the end-to-end quick-exhibit timing")
    parser.add_argument("--dry-run", action="store_true",
                        help="print results without updating the file")
    parser.add_argument("--quick", action="store_true",
                        help="CI perf-smoke sizes (implies --no-exhibit "
                             "and --dry-run)")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 if any events/sec metric is <80%% of "
                             "the latest BENCH_core.json entry "
                             "(runs best-of-5 instead of best-of-3)")
    args = parser.parse_args(argv)
    if args.quick:
        args.no_exhibit = True
        args.dry_run = True

    metrics = run_all(with_exhibit=not args.no_exhibit, quick=args.quick,
                      repeats=5 if args.check else 3)
    entry = {
        "label": args.label,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "python": platform.python_version(),
        "metrics": metrics,
    }
    for key, value in metrics.items():
        print(f"{key:28s} {value}")

    trajectory = load_trajectory()
    baseline = trajectory["entries"][0] if trajectory["entries"] else None
    if baseline is not None:
        base = baseline["metrics"].get("timeout_events_per_sec")
        if base:
            speedup = metrics["timeout_events_per_sec"] / base
            print(f"{'vs baseline (timeouts)':28s} {speedup:.2f}x "
                  f"({baseline['label']})")
    latch = metrics.get("fanout_events_per_sec")
    allof = metrics.get("fanout_allof_events_per_sec")
    if latch and allof:
        print(f"{'latch vs AllOf (fanout)':28s} {latch / allof:.2f}x")
    if args.check:
        failures = check_regression(metrics, trajectory)
        speedup = metrics.get("sched_coalesce_speedup")
        if speedup is not None:
            status = ("ok" if speedup >= COALESCE_SPEEDUP_FLOOR
                      else "REGRESSED")
            print(f"check {'sched_coalesce_speedup':28s} {speedup:5.2f}x "
                  f"(floor {COALESCE_SPEEDUP_FLOOR}x) [{status}]")
            if speedup < COALESCE_SPEEDUP_FLOOR:
                failures += 1
        overhead = metrics.get("trace_overhead_ratio")
        if overhead is not None:
            status = ("ok" if overhead >= TRACE_OVERHEAD_FLOOR
                      else "REGRESSED")
            print(f"check {'trace_overhead_ratio':28s} {overhead:5.3f}x "
                  f"(floor {TRACE_OVERHEAD_FLOOR}x) [{status}]")
            if overhead < TRACE_OVERHEAD_FLOOR:
                failures += 1
        obs_overhead = metrics.get("obs_overhead_ratio")
        if obs_overhead is not None:
            status = ("ok" if obs_overhead >= OBS_OVERHEAD_FLOOR
                      else "REGRESSED")
            print(f"check {'obs_overhead_ratio':28s} {obs_overhead:5.3f}x "
                  f"(floor {OBS_OVERHEAD_FLOOR}x) [{status}]")
            if obs_overhead < OBS_OVERHEAD_FLOOR:
                failures += 1
        if failures:
            print(f"check FAILED: {failures} metric(s) regressed >20%")
            return 1
    if not args.dry_run:
        trajectory["entries"].append(entry)
        BENCH_FILE.write_text(json.dumps(trajectory, indent=2) + "\n")
        print(f"appended to {BENCH_FILE}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
