"""Kernel / metrics micro-benchmarks with a perf-trajectory file.

Measures the hot paths the exhibit harness spends its time in:

- ``timeout_events_per_sec`` — pure kernel: many processes chaining
  short timeouts (heap push/pop, ``Process._resume``, callbacks).
- ``queue_events_per_sec`` — kernel + :class:`repro.sim.resources.Queue`
  hand-off (producer/consumer pairs, the reactor-mailbox pattern).
- ``percentile_query_sec`` — ``LatencyRecorder.cdf_points`` over the
  harness's six percentiles on a large sample set (the sorted-window
  cache target).
- ``quick_exhibit_wall_sec`` — one representative end-to-end quick
  exhibit (``tab3``) through :func:`run_exhibit`.

Each run appends an entry to ``benchmarks/BENCH_core.json`` so future
PRs can diff events/sec against every earlier recording::

    PYTHONPATH=src python benchmarks/bench_kernel.py --label my-change

Use ``--no-exhibit`` for a fast kernel-only pass, ``--dry-run`` to
print without touching the trajectory file.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.sim.kernel import Simulator
from repro.sim.metrics import LatencyRecorder
from repro.sim.resources import Queue

BENCH_FILE = Path(__file__).resolve().parent / "BENCH_core.json"

#: The percentile set every ExperimentResult reports.
PERCENTILES = (50.0, 80.0, 90.0, 95.0, 99.0, 99.9)


def bench_timeouts(processes: int = 50, chain: int = 2000) -> float:
    """Events/sec for *processes* generators each chaining *chain*
    timeouts."""

    def pingpong(sim, n):
        for _ in range(n):
            yield sim.timeout(0.001)

    sim = Simulator()
    for _ in range(processes):
        sim.process(pingpong(sim, chain))
    started = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - started
    return sim._event_count / elapsed


def bench_queue_handoff(pairs: int = 20, items: int = 5000) -> float:
    """Events/sec for producer/consumer pairs trading items through a
    Queue (the reactor-mailbox hot path)."""

    def producer(sim, queue, n):
        for i in range(n):
            queue.put(i)
            yield sim.timeout(0.0001)

    def consumer(sim, queue, n):
        for _ in range(n):
            yield queue.get()

    sim = Simulator()
    for _ in range(pairs):
        queue = Queue(sim)
        sim.process(producer(sim, queue, items))
        sim.process(consumer(sim, queue, items))
    started = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - started
    return sim._event_count / elapsed


def bench_percentiles(samples: int = 200_000, repeats: int = 20) -> float:
    """Seconds for *repeats* full cdf_points queries over *samples*
    recorded latencies (lower is better)."""
    recorder = LatencyRecorder()
    # Deterministic pseudo-random values; no RNG dependency needed.
    value = 0.5
    for i in range(samples):
        value = (value * 1103515245 + 12345) % 1.0 + 1e-9
        recorder.record(i * 1e-4, value)
    recorder.start_at = samples * 1e-4 * 0.2  # discard a warm-up fifth
    started = time.perf_counter()
    for _ in range(repeats):
        recorder.cdf_points(PERCENTILES)
        recorder.mean()
        recorder.maximum()
        len(recorder)
    return time.perf_counter() - started


def bench_quick_exhibit() -> float:
    """Wall-clock seconds for one representative quick exhibit."""
    from repro.experiments.figures import run_exhibit

    started = time.perf_counter()
    run_exhibit("tab3", quick=True, seed=42)
    return time.perf_counter() - started


def run_all(with_exhibit: bool = True) -> dict:
    metrics = {
        "timeout_events_per_sec": round(bench_timeouts()),
        "queue_events_per_sec": round(bench_queue_handoff()),
        "percentile_query_sec": round(bench_percentiles(), 4),
    }
    if with_exhibit:
        metrics["quick_exhibit_wall_sec"] = round(bench_quick_exhibit(), 2)
    return metrics


def load_trajectory() -> dict:
    if BENCH_FILE.exists():
        return json.loads(BENCH_FILE.read_text())
    return {"benchmark": "bench_kernel", "entries": []}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="unlabelled",
                        help="entry label recorded in BENCH_core.json")
    parser.add_argument("--no-exhibit", action="store_true",
                        help="skip the end-to-end quick-exhibit timing")
    parser.add_argument("--dry-run", action="store_true",
                        help="print results without updating the file")
    args = parser.parse_args(argv)

    metrics = run_all(with_exhibit=not args.no_exhibit)
    entry = {
        "label": args.label,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "python": platform.python_version(),
        "metrics": metrics,
    }
    for key, value in metrics.items():
        print(f"{key:28s} {value}")

    trajectory = load_trajectory()
    baseline = trajectory["entries"][0] if trajectory["entries"] else None
    if baseline is not None:
        base = baseline["metrics"].get("timeout_events_per_sec")
        if base:
            speedup = metrics["timeout_events_per_sec"] / base
            print(f"{'vs baseline (timeouts)':28s} {speedup:.2f}x "
                  f"({baseline['label']})")
    if not args.dry_run:
        trajectory["entries"].append(entry)
        BENCH_FILE.write_text(json.dumps(trajectory, indent=2) + "\n")
        print(f"appended to {BENCH_FILE}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
