"""Table 2: select() syscall overhead at 0.1 kB responses.

Paper shape: NettyBackend makes about 3x the select() calls of
AIOBackend (155K vs 54K per 30 s) and burns several times the CPU in
select() (8.1% vs 1.1%), because its poll-loop reactors keep crossing
into the kernel while AIO's group selector blocks until readiness.
"""


def test_tab2_select_overhead(exhibit):
    result = exhibit("tab2")
    aio = result.data["AIOBackend"]
    netty = result.data["NettyBackend"]

    # Netty makes materially more select() calls (paper: 2.9x; our
    # AIO frontend is itself Netty-based and narrows the gap)...
    assert netty["selects_30s"] > 1.4 * aio["selects_30s"], (
        f"expected more netty selects: netty={netty['selects_30s']:.0f} "
        f"aio={aio['selects_30s']:.0f}")

    # ...and spends a larger CPU share in them.
    assert netty["select_cpu_share"] > 1.3 * aio["select_cpu_share"]

    # Despite that, both saturate the machine with comparable
    # throughput (paper: AIO +15%; we reproduce near-parity).
    ratio = aio["throughput"] / netty["throughput"]
    assert 0.9 < ratio < 1.3
