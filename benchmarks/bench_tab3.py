"""Table 3: NettyBackend's sensitivity to the backend-reactor count.

Paper shape: the default TwoCase beats both OneCase (single backend
reactor saturated: many events per backend select, frontend spinning)
and FourCase (four under-loaded backend reactors spinning: very few
events per backend select) — the imbalanced-workload problem.
"""


def test_tab3_reactor_imbalance(exhibit):
    result = exhibit("tab3")
    one = result.data["OneCase"]
    two = result.data["TwoCase"]
    four = result.data["FourCase"]

    # The default two-backend split wins.
    assert two["throughput"] >= one["throughput"]
    assert two["throughput"] > four["throughput"]

    def eps(case, side):
        selects = case[f"{side}_selects"]
        return case[f"{side}_events"] / selects if selects else 0.0

    # OneCase: the lone backend reactor is saturated — it drains the
    # maximum batch on every cycle, while FourCase's four under-loaded
    # reactors keep returning smaller batches.
    assert eps(one, "backend") > 1.3 * eps(four, "backend")

    # FourCase shifts the select load to the backend side.
    assert four["backend_selects"] > one["backend_selects"]
