"""Figure 16: the scheduler's robustness on large (10 GB) shards.

Paper shape: with 10x larger shards (datastore responses slow from
0.12 ms to 0.18 ms on average), DoubleFaceNetty with scheduling still
has the lowest tail latency of the four servers.
"""


def test_fig16_large_shards(exhibit):
    result = exhibit("fig16")
    sched = result.data["w schedule"]
    fifo = result.data["w/o schedule"]
    aio = result.data["AIOBackend"]
    netty = result.data["NettyBackend"]

    # The architecture ordering survives the slower datastore.
    assert aio["p99"] > 1.5 * sched["p99"]
    assert netty["p99"] > 1.5 * sched["p99"]
    assert sched["p95"] <= 1.15 * fifo["p95"]

    # Equal-throughput comparison still holds.
    tputs = [d["throughput"] for d in (sched, fifo, aio, netty)]
    assert max(tputs) < 1.25 * min(tputs)
