"""Figure 4: thread-based vs asynchronous drivers per datastore family.

Paper shape: every thread-based driver collapses at high workload
concurrency; the Type-1 "asynchronous" DynamoDB/HBase drivers collapse
with them; MongoDB's Type-2b asynchronous driver keeps its throughput.
"""


def test_fig04_driver_architectures(exhibit):
    result = exhibit("fig04")
    grid = result.data["concurrency"]
    top = len(grid) - 1

    for family in ("dynamodb", "hbase", "mongodb"):
        series = result.data[family]
        thread = series[f"{family}-thread"]
        # Thread-based drivers degrade well below their peak.
        assert thread[top] < 0.85 * max(thread), (
            f"{family}-thread did not collapse: {thread}")

    # Type-1 async drivers share the thread-based collapse...
    for family in ("dynamodb", "hbase"):
        async_series = result.data[family][f"{family}-async"]
        assert async_series[top] < 0.92 * max(async_series), (
            f"{family}-async should degrade like its thread-based "
            f"counterpart: {async_series}")

    # ...while the Type-2b MongoDB driver does not.
    mongo_async = result.data["mongodb"]["mongodb-async"]
    assert mongo_async[top] > 0.85 * max(mongo_async), (
        f"mongodb-async should sustain throughput: {mongo_async}")

    # And at top concurrency the async MongoDB driver clearly beats the
    # thread-based one (paper: +140%; we require a solid margin).
    mongo_thread = result.data["mongodb"]["mongodb-thread"]
    assert mongo_async[top] > 1.2 * mongo_thread[top]
