"""Figure 9: concurrently-running-thread timelines at 20 kB.

Paper shape: NettyBackend holds a flat ~3 running threads (its static
reactor allocation) while AIOBackend's count fluctuates strongly over
time as the on-demand pool scales with the fanout-response load.
"""


def test_fig09_thread_dynamics(exhibit):
    result = exhibit("fig09")
    netty = result.data["stats"]["NettyBackend"]
    aio = result.data["stats"]["AIOBackend"]

    # Netty: small, flat thread population.
    assert netty["mean"] < 4.0
    assert netty["spread"] <= 4.0

    # AIO: larger and visibly fluctuating population.
    assert aio["mean"] > netty["mean"]
    assert aio["spread"] > 2 * max(netty["spread"], 1.0)
    assert aio["max"] > 6

    # Both timelines actually sampled.
    assert len(result.data["samples"]["AIOBackend"]) > 20
