"""Ablation studies for the design choices DESIGN.md calls out.

Not exhibits from the paper's evaluation, but experiments its Sections
5 and 7 motivate:

1. **Scheduler variants** — the paper's SJF-completable-first policy
   vs. a stable (non-SJF) variant vs. deferring incomplete responses to
   the next batch, against the FIFO baseline.
2. **N-copy scaling** — DoubleFaceAD's reactor count vs. cores
   (Section 5.1, stage 4).
3. **Business-logic intensity** — Section 7's named future factor: how
   the DoubleFace-vs-Netty gap moves as per-request CPU grows.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.report import render_table


def _tail_config(server, scheduler_kind=None, seed=42, **params):
    base = {"app_cores": 1, "request_cpu": 0.3e-3, "request_cpu_cv": 0.5,
            "response_base_cost": 1.2e-3, "assemble_base_cost": 0.3e-3,
            "service_cv": 2.5}
    base.update(params)
    return ExperimentConfig(
        server=server, workload="open", users=600, think_time=5.2,
        lfan=5, sfan=3, response_size=100, reactors=1,
        warmup=4.0, duration=12.0, seed=seed, params=base)


def test_scheduler_variant_ablation(benchmark):
    """All scheduler variants keep throughput and the architecture's
    tail advantage; the completable-first family tracks FIFO within a
    tight band (see EXPERIMENTS.md on where each variant helps)."""
    from repro.core.scheduling import (DeferIncompleteScheduler,
                                       FanoutAwareScheduler, FifoScheduler,
                                       StableFanoutScheduler)
    from repro.core.doubleface import DoubleFaceServer
    import repro.experiments.runner as runner_mod

    variants = {
        "fifo": FifoScheduler,
        "fanout-aware (paper)": FanoutAwareScheduler,
        "stable (no SJF)": StableFanoutScheduler,
        "defer-incomplete": DeferIncompleteScheduler,
    }

    def run_all():
        results = {}
        original = runner_mod._build_server
        for label, sched_cls in variants.items():
            def build(config, sim, metrics, params, cluster, rng,
                      _cls=sched_cls):
                return DoubleFaceServer(sim, metrics, params, cluster, rng,
                                        reactors=1, scheduler=_cls())
            runner_mod._build_server = build
            try:
                results[label] = run_experiment(_tail_config("doubleface"))
            finally:
                runner_mod._build_server = original
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[label, round(r.throughput),
             round(1e3 * r.percentiles[50.0], 1),
             round(1e3 * r.percentiles[95.0], 1),
             round(1e3 * r.percentiles[99.0], 1)]
            for label, r in results.items()]
    print("\n" + render_table(
        "Ablation: scheduler variants (1 core, Lfan/Sfan=5/3)",
        ["variant", "req/s", "p50[ms]", "p95[ms]", "p99[ms]"], rows) + "\n")

    fifo = results["fifo"]
    for label, result in results.items():
        # Work-conserving reordering: throughput unchanged.
        assert abs(result.throughput - fifo.throughput) < 0.05 * fifo.throughput
        # No variant blows up the median.
        assert result.percentiles[50.0] < 1.25 * fifo.percentiles[50.0]


def test_ncopy_reactor_scaling(benchmark):
    """DoubleFaceAD throughput scales with reactors up to the core
    count and not beyond (the N-copy rule)."""

    def run_all():
        out = {}
        for reactors in (1, 2, 4):
            out[reactors] = run_experiment(ExperimentConfig(
                server="doubleface", concurrency=200, fanout=5,
                response_size=100, reactors=reactors,
                warmup=0.5, duration=1.5, params={"app_cores": 2}))
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[n, round(r.throughput), round(100 * r.cpu_utilization)]
            for n, r in results.items()]
    print("\n" + render_table(
        "Ablation: N-copy reactors on a 2-core server",
        ["reactors", "req/s", "CPU %"], rows) + "\n")

    # 2 reactors on 2 cores materially outperform 1.
    assert results[2].throughput > 1.4 * results[1].throughput
    # A 4th/3rd reactor cannot add capacity beyond the cores.
    assert results[4].throughput < 1.15 * results[2].throughput


def test_business_logic_intensity(benchmark):
    """Section 7's factor: as per-request business CPU grows, the
    frontend-serialised NettyBackend falls behind DoubleFaceAD, which
    spreads request handling over all reactors."""

    def run_all():
        out = {}
        for cpu_ms in (0.0, 0.5, 2.0):
            row = {}
            for kind in ("doubleface", "netty"):
                row[kind] = run_experiment(ExperimentConfig(
                    server=kind, concurrency=150, fanout=5,
                    response_size=100, warmup=0.5, duration=1.5,
                    params={"request_cpu": cpu_ms * 1e-3}))
            out[cpu_ms] = row
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[cpu_ms, round(r["doubleface"].throughput),
             round(r["netty"].throughput),
             round(r["doubleface"].throughput / r["netty"].throughput, 2)]
            for cpu_ms, r in results.items()]
    print("\n" + render_table(
        "Ablation: business-logic CPU intensity (fanout 5, 0.1kB)",
        ["req CPU [ms]", "doubleface", "netty", "ratio"], rows) + "\n")

    ratios = [r["doubleface"].throughput / r["netty"].throughput
              for r in results.values()]
    # The DoubleFace advantage grows with business-logic weight.
    assert ratios[-1] > ratios[0]
