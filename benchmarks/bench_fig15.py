"""Figure 15: percentile response time on YCSB with the scheduler.

Paper shape: both DoubleFaceAD variants beat AIOBackend and
NettyBackend on tail latency by a wide margin; the fanout-aware
scheduler adds a further improvement over FIFO batches (paper: 1.9x at
p99 — in our simulation the scheduler's gain concentrates at p50-p95,
with parity at p99; see EXPERIMENTS.md for the analysis).
"""


def test_fig15_tail_latency(exhibit):
    result = exhibit("fig15")

    for sub in ("a", "b"):
        data = result.data[sub]
        sched = data["w schedule"]
        fifo = data["w/o schedule"]
        aio = data["AIOBackend"]
        netty = data["NettyBackend"]

        # All four servers deliver the same throughput (the paper's
        # setup: equal load, different overheads).
        tputs = [d["throughput"] for d in (sched, fifo, aio, netty)]
        assert max(tputs) < 1.25 * min(tputs), tputs

        # DoubleFaceAD (either variant) has far lower tails than the
        # split-architecture baselines.
        assert aio["p99"] > 1.5 * sched["p99"], (sub, aio["p99"], sched["p99"])
        assert netty["p99"] > 1.5 * sched["p99"]

        # The scheduler does not regress the median and keeps p95 at or
        # below FIFO's (its measurable gain region in our model).
        assert sched["p50"] <= 1.10 * fifo["p50"]
        assert sched["p95"] <= 1.15 * fifo["p95"]
