"""Figure 14: CPU utilisation under the RUBBoS open workload (fanout 20).

Paper shape: at every user level DoubleFaceNetty consumes the least
CPU; AIOBackend the most (its pool overheads are exaggerated at 20 kB
responses), with NettyBackend in between.
"""


def test_fig14_cpu_overhead(exhibit):
    result = exhibit("fig14")

    for size_label in ("0.1kB", "20kB"):
        series = result.data[size_label]["cpu_util"]
        users = result.data[size_label]["users"]
        top = len(users) - 1
        df = series["DoubleFaceNetty"][top]
        netty = series["NettyBackend"][top]
        aio = series["AIOBackend"][top]
        # DoubleFace burns the least CPU at the highest load level.
        assert df <= netty + 1.0, (
            f"{size_label}: DF {df}% should be <= Netty {netty}%")
        assert df <= aio + 1.0, (
            f"{size_label}: DF {df}% should be <= AIO {aio}%")

    # At 20 kB the AIO overhead gap is pronounced below saturation
    # (paper: 30% less CPU for DoubleFace at 300 users).
    big = result.data["20kB"]["cpu_util"]
    assert big["AIOBackend"][0] > big["DoubleFaceNetty"][0] + 3.0
