"""Table 1: multithreading overhead breakdown at 20 kB responses.

Paper shape: thread-based runs the most concurrent threads and the most
context switches with the highest lock CPU; AIO sits in between (and is
the only server paying thread-initiation CPU, from its on-demand pool);
Netty runs a flat, tiny thread count.
"""


def test_tab1_multithreading_overhead(exhibit):
    result = exhibit("tab1")
    aio = result.data["AIOBackend"]
    netty = result.data["NettyBackend"]
    thread = result.data["Threadbased"]

    # Concurrent running threads: thread-based >> AIO >> Netty (~3).
    assert thread["running_threads"] > aio["running_threads"]
    assert aio["running_threads"] > 2 * netty["running_threads"]
    assert netty["running_threads"] < 4.0

    # Context switches: both pool-based designs far above Netty.
    assert thread["ctx_per_sec"] > 5 * netty["ctx_per_sec"] or \
        thread["ctx_per_sec"] > netty["ctx_per_sec"]
    assert aio["ctx_per_sec"] > netty["ctx_per_sec"]

    # Thread-initiation CPU: unique to the on-demand pool.
    assert aio["thread_init_share"] > 0.002
    assert netty["thread_init_share"] == 0.0
    assert thread["thread_init_share"] == 0.0

    # Lock (futex) CPU: the blocking sync path pays it, Netty does not.
    assert thread["lock_share"] >= netty["lock_share"]

    # Throughput order matches Figure 5(a): Netty > AIO > thread-based.
    assert netty["throughput"] > aio["throughput"] > thread["throughput"]
