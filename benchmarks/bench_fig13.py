"""Figure 13: DoubleFaceNetty vs the asynchronous baselines.

Paper shape: DoubleFaceNetty achieves the highest throughput at every
fanout factor and both response sizes (paper: +20% over NettyBackend at
fanout 1 / 0.1 kB, +25% over AIOBackend at fanout 20 / 0.1 kB, +34%
over AIOBackend at fanout 20 / 20 kB).
"""


def test_fig13_doubleface_wins_everywhere(exhibit):
    result = exhibit("fig13")
    fanouts = result.data["fanout"]

    for size_label in ("0.1kB", "20kB"):
        norm = result.data[size_label]["normalized"]
        for baseline in ("NettyBackend", "AIOBackend"):
            for i, fanout in enumerate(fanouts):
                assert norm[baseline][i] <= 1.03, (
                    f"{baseline} beat DoubleFace at fanout {fanout} "
                    f"({size_label}): {norm[baseline]}")

    # The margins are material, not noise: at the largest fanout of the
    # 20 kB case, DoubleFace leads AIO by a double-digit margin.
    big = result.data["20kB"]["normalized"]["AIOBackend"]
    assert big[-1] < 0.92, f"expected >8% win over AIO at 20kB: {big}"

    # And at 0.1 kB DoubleFace leads Netty at fanout 1 (the paper's
    # +20% case).
    small = result.data["0.1kB"]["normalized"]["NettyBackend"]
    assert small[0] < 0.97, f"expected a win over Netty at fanout 1: {small}"
