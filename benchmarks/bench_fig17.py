"""Figure 17: tail latency on the DBLP dataset (30 kB tuples).

Paper shape: DoubleFaceNetty with scheduling still leads, the gain of
the scheduler itself shrinks (the heavy 30 kB responses dwarf the
reordering effect), and AIOBackend's tail falls *behind* NettyBackend's
— the large responses re-awaken its multithreading overhead.
"""


def test_fig17_dblp(exhibit):
    result = exhibit("fig17")
    sched = result.data["w schedule"]
    fifo = result.data["w/o schedule"]
    aio = result.data["AIOBackend"]
    netty = result.data["NettyBackend"]

    # DoubleFace far ahead of both baselines.
    assert aio["p99"] > 1.5 * sched["p99"]
    assert netty["p99"] > 1.5 * sched["p99"]

    # The size-driven inversion: AIO's tail is now worse than Netty's.
    assert aio["p99"] > netty["p99"], (
        f"AIO p99 {aio['p99']:.3f}s should exceed Netty's "
        f"{netty['p99']:.3f}s on 30kB tuples")

    # Scheduler gain compressed but not a regression at the median.
    assert sched["p50"] <= 1.10 * fifo["p50"]
