"""Unit tests for partitioning, fanout shard selection, rack placement,
and replica routing."""

import random
from dataclasses import dataclass

import pytest
from hypothesis import given, strategies as st

from repro.datastore.sharding import (HashPartitioner, REPLICA_POLICIES,
                                      ReplicaSelector, failover_replica,
                                      pick_fanout_shards, rack_of)


class TestHashPartitioner:
    def test_stable_assignment(self):
        p = HashPartitioner(20)
        assert p.shard_for("user42") == p.shard_for("user42")

    def test_in_range(self):
        p = HashPartitioner(7)
        for i in range(200):
            assert 0 <= p.shard_for(f"key{i}") < 7

    def test_split_partitions_everything(self):
        p = HashPartitioner(5)
        keys = [f"key{i}" for i in range(100)]
        buckets = p.split(keys)
        assert sum(len(b) for b in buckets) == 100
        for shard_id, bucket in enumerate(buckets):
            for key in bucket:
                assert p.shard_for(key) == shard_id

    def test_roughly_balanced(self):
        p = HashPartitioner(10)
        buckets = p.split([f"key{i}" for i in range(10_000)])
        sizes = [len(b) for b in buckets]
        assert min(sizes) > 700  # each shard ~1000 +- a few hundred
        assert max(sizes) < 1300

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)


class TestPickFanoutShards:
    def test_distinct_shards(self):
        rng = random.Random(3)
        shards = pick_fanout_shards(rng, 20, 5)
        assert len(shards) == len(set(shards)) == 5

    def test_full_fanout_covers_all(self):
        rng = random.Random(3)
        assert sorted(pick_fanout_shards(rng, 20, 20)) == list(range(20))

    def test_bounds_checked(self):
        rng = random.Random(3)
        with pytest.raises(ValueError):
            pick_fanout_shards(rng, 20, 21)
        with pytest.raises(ValueError):
            pick_fanout_shards(rng, 20, 0)


@given(st.integers(min_value=1, max_value=50),
       st.integers(min_value=0, max_value=2**32),
       st.data())
def test_fanout_selection_properties(n_shards, seed, data):
    """Property: any legal fanout yields that many distinct in-range
    shards."""
    fanout = data.draw(st.integers(min_value=1, max_value=n_shards))
    rng = random.Random(seed)
    shards = pick_fanout_shards(rng, n_shards, fanout)
    assert len(shards) == fanout
    assert len(set(shards)) == fanout
    assert all(0 <= s < n_shards for s in shards)


@given(st.lists(st.text(min_size=1, max_size=10), min_size=1, max_size=100),
       st.integers(min_value=1, max_value=16))
def test_partitioner_split_is_a_partition(keys, n_shards):
    """Property: split() is a true partition of the input multiset."""
    p = HashPartitioner(n_shards)
    buckets = p.split(keys)
    flattened = [k for bucket in buckets for k in bucket]
    assert sorted(flattened) == sorted(keys)


class TestFailoverReplica:
    def test_single_replica_always_primary(self):
        for attempt in range(5):
            assert failover_replica(attempt, 1) == 0

    def test_rotation_wraps(self):
        assert [failover_replica(a, 3) for a in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            failover_replica(-1, 2)
        with pytest.raises(ValueError):
            failover_replica(0, 0)


class TestRackOf:
    def test_anti_affinity_spans_racks(self):
        # A 2-replica shard always spans both of 2 racks.
        for shard in range(20):
            racks = {rack_of(shard, r, 2) for r in range(2)}
            assert racks == {0, 1}

    def test_in_range_and_deterministic(self):
        for shard in range(10):
            for replica in range(4):
                rack = rack_of(shard, replica, 3)
                assert 0 <= rack < 3
                assert rack == rack_of(shard, replica, 3)

    def test_rejects_zero_racks(self):
        with pytest.raises(ValueError):
            rack_of(0, 0, 0)


@dataclass
class _Resp:
    shard_id: int
    replica: int
    failed: bool = False
    sent_at: float = 0.0


class TestReplicaSelector:
    def test_validation(self):
        with pytest.raises(ValueError):
            ReplicaSelector("nope", 2)
        with pytest.raises(ValueError):
            ReplicaSelector("primary", 0)
        with pytest.raises(ValueError):
            ReplicaSelector("random", 2)  # needs an rng

    def test_single_replica_every_policy_is_noop(self):
        for policy in REPLICA_POLICIES:
            rng = (random.Random(7)
                   if policy in ("random", "ewma") else None)
            selector = ReplicaSelector(policy, 1, rng=rng)
            assert [selector.pick(3) for _ in range(4)] == [0, 0, 0, 0]
            assert selector.alternate(3, avoid=0) == 0

    def test_primary_ignores_replicas(self):
        selector = ReplicaSelector("primary", 3)
        assert [selector.pick(0) for _ in range(5)] == [0] * 5

    def test_round_robin_cycles_per_shard(self):
        selector = ReplicaSelector("round_robin", 3)
        assert [selector.pick(0) for _ in range(6)] == [0, 1, 2, 0, 1, 2]
        # A different shard has its own cursor.
        assert selector.pick(1) == 0

    def test_random_is_seed_deterministic(self):
        a = ReplicaSelector("random", 4, rng=random.Random(99))
        b = ReplicaSelector("random", 4, rng=random.Random(99))
        assert [a.pick(0) for _ in range(20)] == [b.pick(0) for _ in range(20)]

    def test_least_outstanding_balances_and_tie_breaks_low(self):
        selector = ReplicaSelector("least_outstanding", 3)
        # All tied at 0: lowest index wins, then counts force rotation.
        assert [selector.pick(5) for _ in range(3)] == [0, 1, 2]
        assert selector.outstanding(5) == [1, 1, 1]
        # Retire replica 1's query: it is now least-loaded.
        selector.note_response(_Resp(shard_id=5, replica=1))
        assert selector.pick(5) == 1

    def test_least_outstanding_ignores_synthesised_failures(self):
        selector = ReplicaSelector("least_outstanding", 2)
        assert selector.pick(0) == 0
        selector.note_response(_Resp(shard_id=0, replica=0, failed=True))
        # The failure never decremented: replica 0 still looks loaded.
        assert selector.outstanding(0) == [1, 0]
        assert selector.pick(0) == 1

    def test_alternate_avoids_and_rotates(self):
        selector = ReplicaSelector("round_robin", 3)
        picks = [selector.alternate(2, avoid=0) for _ in range(4)]
        assert 0 not in picks
        assert picks == [1, 2, 1, 2]  # shared cursor spreads hedges

    def test_alternate_two_replicas_always_other(self):
        selector = ReplicaSelector("round_robin", 2)
        assert selector.alternate(0, avoid=0) == 1
        assert selector.alternate(0, avoid=1) == 0

    def test_alternate_least_outstanding_prefers_idle(self):
        selector = ReplicaSelector("least_outstanding", 3)
        for _ in range(3):
            selector.pick(0)  # counts now [1, 1, 1]
        selector.note_response(_Resp(shard_id=0, replica=2))
        assert selector.alternate(0, avoid=0) == 2


class TestEwmaSelector:
    def _respond(self, selector, replica, sent_at, now):
        selector.note_response(
            _Resp(shard_id=0, replica=replica, sent_at=sent_at), now=now)

    def test_learns_the_fast_replica(self):
        selector = ReplicaSelector("ewma", 2, rng=random.Random(4))
        # Replica 0 answers in 1 ms, replica 1 in 5 ms.
        for _ in range(10):
            self._respond(selector, 0, sent_at=1.0, now=1.001)
            self._respond(selector, 1, sent_at=1.0, now=1.005)
        assert [selector.pick(0) for _ in range(10)] == [0] * 10
        fast, slow = selector.latency_score(0)
        assert fast == pytest.approx(0.001)
        assert slow == pytest.approx(0.005)

    def test_adapts_when_the_fast_replica_degrades(self):
        selector = ReplicaSelector("ewma", 2, rng=random.Random(4))
        self._respond(selector, 0, sent_at=1.0, now=1.001)
        self._respond(selector, 1, sent_at=1.0, now=1.002)
        assert selector.pick(0) == 0
        # Replica 0 starts answering in 50 ms: a handful of
        # observations push its EWMA past replica 1's.
        for _ in range(5):
            self._respond(selector, 0, sent_at=2.0, now=2.050)
        assert selector.pick(0) == 1

    def test_unsampled_replicas_explored_first(self):
        # Replica 1 has a score, replica 0 and 2 are unsampled (0.0):
        # the unsampled pair ties at the minimum and wins exploration.
        selector = ReplicaSelector("ewma", 3, rng=random.Random(4))
        self._respond(selector, 1, sent_at=1.0, now=1.001)
        for _ in range(20):
            assert selector.pick(0) in (0, 2)

    def test_tie_break_is_seed_deterministic(self):
        a = ReplicaSelector("ewma", 4, rng=random.Random(99))
        b = ReplicaSelector("ewma", 4, rng=random.Random(99))
        assert [a.pick(0) for _ in range(20)] == \
               [b.pick(0) for _ in range(20)]

    def test_failed_responses_never_update(self):
        selector = ReplicaSelector("ewma", 2, rng=random.Random(4))
        selector.note_response(
            _Resp(shard_id=0, replica=0, sent_at=1.0, failed=True), now=2.0)
        assert selector.latency_score(0) == [0.0, 0.0]

    def test_unstamped_responses_never_update(self):
        selector = ReplicaSelector("ewma", 2, rng=random.Random(4))
        # No sent_at stamp (0.0) and a non-causal stamp are both inert.
        self._respond(selector, 0, sent_at=0.0, now=2.0)
        self._respond(selector, 0, sent_at=3.0, now=2.0)
        assert selector.latency_score(0) == [0.0, 0.0]

    def test_alternate_avoids_last_target(self):
        selector = ReplicaSelector("ewma", 2, rng=random.Random(4))
        # Replica 0 is far cheaper, but a retry of a send to 0 must go
        # elsewhere.
        self._respond(selector, 0, sent_at=1.0, now=1.001)
        self._respond(selector, 1, sent_at=1.0, now=1.050)
        assert selector.alternate(0, avoid=0) == 1

    def test_ewma_smoothing_matches_alpha(self):
        selector = ReplicaSelector("ewma", 2, rng=random.Random(4))
        self._respond(selector, 0, sent_at=1.0, now=1.010)  # first = raw
        self._respond(selector, 0, sent_at=2.0, now=2.020)
        alpha = ReplicaSelector.EWMA_ALPHA
        expected = 0.010 + alpha * (0.020 - 0.010)
        assert selector.latency_score(0)[0] == pytest.approx(expected)
