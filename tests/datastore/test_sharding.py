"""Unit tests for partitioning and fanout shard selection."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.datastore.sharding import HashPartitioner, pick_fanout_shards


class TestHashPartitioner:
    def test_stable_assignment(self):
        p = HashPartitioner(20)
        assert p.shard_for("user42") == p.shard_for("user42")

    def test_in_range(self):
        p = HashPartitioner(7)
        for i in range(200):
            assert 0 <= p.shard_for(f"key{i}") < 7

    def test_split_partitions_everything(self):
        p = HashPartitioner(5)
        keys = [f"key{i}" for i in range(100)]
        buckets = p.split(keys)
        assert sum(len(b) for b in buckets) == 100
        for shard_id, bucket in enumerate(buckets):
            for key in bucket:
                assert p.shard_for(key) == shard_id

    def test_roughly_balanced(self):
        p = HashPartitioner(10)
        buckets = p.split([f"key{i}" for i in range(10_000)])
        sizes = [len(b) for b in buckets]
        assert min(sizes) > 700  # each shard ~1000 +- a few hundred
        assert max(sizes) < 1300

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)


class TestPickFanoutShards:
    def test_distinct_shards(self):
        rng = random.Random(3)
        shards = pick_fanout_shards(rng, 20, 5)
        assert len(shards) == len(set(shards)) == 5

    def test_full_fanout_covers_all(self):
        rng = random.Random(3)
        assert sorted(pick_fanout_shards(rng, 20, 20)) == list(range(20))

    def test_bounds_checked(self):
        rng = random.Random(3)
        with pytest.raises(ValueError):
            pick_fanout_shards(rng, 20, 21)
        with pytest.raises(ValueError):
            pick_fanout_shards(rng, 20, 0)


@given(st.integers(min_value=1, max_value=50),
       st.integers(min_value=0, max_value=2**32),
       st.data())
def test_fanout_selection_properties(n_shards, seed, data):
    """Property: any legal fanout yields that many distinct in-range
    shards."""
    fanout = data.draw(st.integers(min_value=1, max_value=n_shards))
    rng = random.Random(seed)
    shards = pick_fanout_shards(rng, n_shards, fanout)
    assert len(shards) == fanout
    assert len(set(shards)) == fanout
    assert all(0 <= s < n_shards for s in shards)


@given(st.lists(st.text(min_size=1, max_size=10), min_size=1, max_size=100),
       st.integers(min_value=1, max_value=16))
def test_partitioner_split_is_a_partition(keys, n_shards):
    """Property: split() is a true partition of the input multiset."""
    p = HashPartitioner(n_shards)
    buckets = p.split(keys)
    flattened = [k for bucket in buckets for k in bucket]
    assert sorted(flattened) == sorted(keys)
