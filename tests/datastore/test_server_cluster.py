"""Integration-flavoured tests for shard servers and the cluster."""

import pytest

from repro.datastore.cluster import DatastoreCluster
from repro.datastore.records import RecordSchema
from repro.messages import Query
from repro.sim.kernel import Simulator
from repro.sim.metrics import Metrics
from repro.sim.network import Endpoint
from repro.sim.params import CostParams
from repro.sim.resources import Queue
from repro.sim.rng import RngStreams


class _Sink(Endpoint):
    def __init__(self, queue):
        self.queue = queue

    def deliver(self, message):
        self.queue.put(message)


@pytest.fixture
def env():
    sim = Simulator()
    metrics = Metrics()
    params = CostParams()
    rng = RngStreams(42)
    return sim, metrics, params, rng


def make_cluster(env, **kw):
    sim, metrics, params, rng = env
    return DatastoreCluster(sim, metrics, params, rng, **kw)


def roundtrip(sim, cluster, shard_id, query):
    inbox = Queue(sim)
    conn = cluster.connect_shard(shard_id)
    conn.attach("a", _Sink(inbox))

    def proc():
        yield from conn.send(None, query, query.wire_size, to_side="b")
        response = yield inbox.get()
        return response

    p = sim.process(proc())
    sim.run(until=5.0)
    assert p.ok
    return p.value


class TestShardServer:
    def test_query_roundtrip(self, env):
        sim, metrics, _p, _r = env
        cluster = make_cluster(env, n_shards=3)
        q = Query(request_id=1, shard_id=1, op="get", response_size=100)
        resp = roundtrip(sim, cluster, 1, q)
        assert resp.request_id == 1
        assert resp.shard_id == 1
        assert resp.payload_size == 100
        assert resp.service_time > 0
        assert metrics.raw_count("datastore.queries") == 1

    def test_scan_takes_longer_on_average(self, env):
        sim, _m, _p, _r = env
        cluster = make_cluster(env, n_shards=1)
        shard = cluster.shards[0]
        gets = [shard.service_model.draw("get", 100) for _ in range(500)]
        scans = [shard.service_model.draw("scan", 20 * 1024)
                 for _ in range(500)]
        assert sum(scans) / len(scans) > 3 * sum(gets) / len(gets)

    def test_non_query_message_rejected(self, env):
        sim, _m, params, _r = env
        cluster = make_cluster(env, n_shards=1)
        conn = cluster.connect_shard(0)

        def proc():
            yield from conn.send(None, "garbage", 10, to_side="b")

        sim.process(proc())
        with pytest.raises(TypeError):
            sim.run(until=1.0)

    def test_materialised_get_returns_record(self, env):
        sim, _m, _p, _r = env
        schema = RecordSchema(field_count=2, field_size=8)
        cluster = make_cluster(env, n_shards=2, schema=schema)
        shard_id = cluster.partitioner.shard_for("mykey")
        cluster.shards[shard_id].store.put("mykey", b"payload")
        q = Query(request_id=2, shard_id=shard_id, op="get",
                  response_size=100, key="mykey")
        resp = roundtrip(sim, cluster, shard_id, q)
        assert resp.records == [("mykey", b"payload")]

    def test_unmaterialised_query_has_no_records(self, env):
        sim, _m, _p, _r = env
        cluster = make_cluster(env, n_shards=1)
        q = Query(request_id=3, shard_id=0, op="get", response_size=100,
                  key="whatever")
        resp = roundtrip(sim, cluster, 0, q)
        assert resp.records is None


class TestCluster:
    def test_shard_count_and_validation(self, env):
        cluster = make_cluster(env, n_shards=20)
        assert cluster.n_shards == 20
        with pytest.raises(ValueError):
            make_cluster(env, n_shards=0)

    def test_remote_cluster_has_higher_latency(self, env):
        local = make_cluster(env, n_shards=1, name="local")
        remote = make_cluster(env, n_shards=1, remote=True, name="remote")
        assert remote.connection_latency() > local.connection_latency()

    def test_shards_are_heterogeneous(self, env):
        cluster = make_cluster(env, n_shards=20)
        speeds = {shard.service_model.speed_factor
                  for shard in cluster.shards}
        assert len(speeds) > 10  # drawn from a continuous spread

    def test_large_shards_slower(self, env):
        small = make_cluster(env, n_shards=2, name="small")
        large = make_cluster(env, n_shards=2, large_shards=True, name="big")
        ratio = (large.shards[0].service_model.size_factor
                 / small.shards[0].service_model.size_factor)
        assert ratio == pytest.approx(CostParams().large_shard_factor)

    def test_load_distributes_by_hash(self, env):
        sim, _m, _p, _r = env
        cluster = make_cluster(env, n_shards=4)
        items = [(f"key{i}", b"x") for i in range(200)]
        count = cluster.load(items)
        assert count == 200
        assert cluster.total_records() == 200
        for key, _v in items:
            shard = cluster.partitioner.shard_for(key)
            assert cluster.shards[shard].store.get(key) == b"x"

    def test_connect_all(self, env):
        cluster = make_cluster(env, n_shards=5)
        conns = cluster.connect_all()
        assert len(conns) == 5

    def test_deterministic_given_seed(self, env):
        sim, metrics, params, _rng = env
        a = DatastoreCluster(sim, metrics, params, RngStreams(9), n_shards=5)
        b = DatastoreCluster(sim, metrics, params, RngStreams(9), n_shards=5)
        assert [s.service_model.speed_factor for s in a.shards] == \
               [s.service_model.speed_factor for s in b.shards]


class TestCrossRackLatency:
    def test_default_is_flat(self, env):
        cluster = make_cluster(env, n_shards=4, replicas_per_shard=2,
                               racks=2)
        flat = cluster.connection_latency()
        for shard in range(4):
            for replica in range(2):
                assert cluster.connection_latency(shard, replica) == flat

    def test_penalty_applies_off_rack_only(self, env):
        # rack_of(shard, replica, 2) == (shard + replica) % 2 and the
        # app sits in rack 0: every shard has exactly one near replica.
        extra = 0.5e-3
        cluster = make_cluster(env, n_shards=4, replicas_per_shard=2,
                               racks=2, cross_rack_extra_latency=extra)
        base = CostParams().net_latency
        for shard in range(4):
            near = shard % 2  # replica whose rack is 0
            far = 1 - near
            assert cluster.connection_latency(shard, near) == base
            assert cluster.connection_latency(shard, far) == \
                pytest.approx(base + extra)

    def test_app_rack_moves_the_near_side(self, env):
        extra = 1e-3
        cluster = make_cluster(env, n_shards=2, replicas_per_shard=2,
                               racks=2, cross_rack_extra_latency=extra,
                               app_rack=1)
        base = CostParams().net_latency
        # Shard 0: replica 1 is in rack 1, now local to the app.
        assert cluster.connection_latency(0, 1) == base
        assert cluster.connection_latency(0, 0) == pytest.approx(base + extra)

    def test_replica_index_wraps(self, env):
        extra = 1e-3
        cluster = make_cluster(env, n_shards=2, replicas_per_shard=2,
                               racks=2, cross_rack_extra_latency=extra)
        # Failover rotation can pass attempt counts beyond the set size.
        assert cluster.connection_latency(1, 3) == \
            cluster.connection_latency(1, 1)

    def test_flat_argless_form_unchanged(self, env):
        cluster = make_cluster(env, n_shards=2, replicas_per_shard=2,
                               racks=2, cross_rack_extra_latency=1e-3)
        assert cluster.connection_latency() == CostParams().net_latency

    def test_validation(self, env):
        with pytest.raises(ValueError):
            make_cluster(env, n_shards=2, cross_rack_extra_latency=-1.0)
        with pytest.raises(ValueError):
            make_cluster(env, n_shards=2, racks=2, app_rack=2)
        with pytest.raises(ValueError):
            make_cluster(env, n_shards=2, racks=2, app_rack=-1)
