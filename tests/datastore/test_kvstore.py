"""Unit tests for the shard-local storage engine and service model."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.datastore.kvstore import KVStore, ServiceTimeModel
from repro.sim.params import KB, CostParams


class TestKVStore:
    def test_put_get(self):
        store = KVStore()
        store.put("k1", b"v1")
        assert store.get("k1") == b"v1"
        assert store.get("missing") is None
        assert "k1" in store
        assert len(store) == 1

    def test_overwrite_keeps_single_key(self):
        store = KVStore()
        store.put("k", b"a")
        store.put("k", b"bb")
        assert store.get("k") == b"bb"
        assert len(store) == 1

    def test_delete(self):
        store = KVStore()
        store.put("k", b"v")
        assert store.delete("k")
        assert not store.delete("k")
        assert store.get("k") is None
        assert store.scan("", 10) == []

    def test_scan_is_ordered_range(self):
        store = KVStore()
        for key in ("d", "a", "c", "b", "e"):
            store.put(key, key.encode())
        result = store.scan("b", 3)
        assert [k for k, _v in result] == ["b", "c", "d"]

    def test_scan_start_between_keys(self):
        store = KVStore()
        store.put("a", b"1")
        store.put("c", b"3")
        assert [k for k, _ in store.scan("b", 5)] == ["c"]

    def test_scan_limit_zero(self):
        store = KVStore()
        store.put("a", b"1")
        assert store.scan("a", 0) == []
        with pytest.raises(ValueError):
            store.scan("a", -1)

    def test_size_bytes(self):
        store = KVStore()
        store.put("a", b"12345")
        store.put("b", b"123")
        assert store.size_bytes() == 8


@given(st.dictionaries(st.text(min_size=1, max_size=8),
                       st.binary(max_size=16), max_size=50))
def test_kvstore_scan_matches_sorted_dict(items):
    """Property: a full scan returns exactly the sorted dict contents."""
    store = KVStore()
    for k, v in items.items():
        store.put(k, v)
    result = store.scan("", len(items) + 1)
    assert result == sorted(items.items())


@given(st.lists(st.text(min_size=1, max_size=6), min_size=1, max_size=40,
                unique=True))
def test_kvstore_delete_keeps_order_invariant(keys):
    """Property: interleaved deletes never break scan ordering."""
    store = KVStore()
    for k in keys:
        store.put(k, k.encode())
    for k in keys[::2]:
        store.delete(k)
    remaining = [k for k, _v in store.scan("", len(keys))]
    assert remaining == sorted(set(keys) - set(keys[::2]))


class TestServiceTimeModel:
    def make(self, **kw):
        params = CostParams()
        return ServiceTimeModel(params, random.Random(1), **kw)

    def test_point_lookup_mean(self):
        model = self.make()
        assert model.mean_for("get", 100) == pytest.approx(
            CostParams().point_lookup_mean)

    def test_scan_grows_with_size(self):
        model = self.make()
        small = model.mean_for("scan", 1 * KB)
        large = model.mean_for("scan", 20 * KB)
        assert large > small > model.mean_for("get", 100)

    def test_unknown_op_rejected(self):
        model = self.make()
        with pytest.raises(ValueError):
            model.mean_for("delete_all", 100)

    def test_factors_scale_mean(self):
        slow = self.make(speed_factor=2.0, size_factor=1.5)
        base = self.make()
        assert slow.mean_for("get", 100) == pytest.approx(
            3.0 * base.mean_for("get", 100))

    def test_bad_factors_rejected(self):
        with pytest.raises(ValueError):
            self.make(speed_factor=0.0)
        with pytest.raises(ValueError):
            self.make(size_factor=-1.0)

    def test_draw_positive_and_near_mean(self):
        model = self.make()
        samples = [model.draw("get", 100) for _ in range(4000)]
        assert all(s > 0 for s in samples)
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(model.mean_for("get", 100), rel=0.2)

    def test_draw_deterministic_given_seed(self):
        params = CostParams()
        a = ServiceTimeModel(params, random.Random(7))
        b = ServiceTimeModel(params, random.Random(7))
        assert [a.draw("get", 100) for _ in range(10)] == \
               [b.draw("get", 100) for _ in range(10)]
