"""Unit tests for request-mix profiles."""

import random
from collections import Counter

import pytest
from hypothesis import given, strategies as st

from repro.workload.profiles import (RequestClass, WorkloadProfile,
                                     lfan_sfan_profile, uniform_profile)


class TestRequestClass:
    def test_validation(self):
        with pytest.raises(ValueError):
            RequestClass("bad", 0)
        with pytest.raises(ValueError):
            RequestClass("bad", 5, weight=0.0)


class TestWorkloadProfile:
    def test_requires_classes_and_size(self):
        with pytest.raises(ValueError):
            WorkloadProfile(classes=[], response_size=100)
        with pytest.raises(ValueError):
            WorkloadProfile(classes=[RequestClass("a", 1)], response_size=0)

    def test_uniform_profile_single_class(self):
        profile = uniform_profile(fanout=5, response_size=100)
        rng = random.Random(1)
        for _ in range(20):
            req = profile.make_request(rng)
            assert req.fanout == 5
            assert req.response_size == 100
            assert req.klass == "default"
        assert profile.max_fanout == 5
        assert profile.mean_fanout == 5.0

    def test_lfan_sfan_mix_ratio(self):
        profile = lfan_sfan_profile(5, 3, 100, lfan_share=0.5)
        rng = random.Random(1)
        counts = Counter(profile.make_request(rng).klass
                         for _ in range(4000))
        assert counts["Lfan"] == pytest.approx(2000, rel=0.1)
        assert counts["Sfan"] == pytest.approx(2000, rel=0.1)
        assert profile.max_fanout == 5
        assert profile.mean_fanout == pytest.approx(4.0)

    def test_lfan_share_validation(self):
        with pytest.raises(ValueError):
            lfan_sfan_profile(5, 3, 100, lfan_share=1.0)

    def test_key_chooser_attaches_keys(self):
        keys = iter(f"key{i}" for i in range(100))
        profile = uniform_profile(3, 100, key_chooser=lambda: next(keys))
        req = profile.make_request(random.Random(1))
        assert req.keys == ["key0", "key1", "key2"]

    def test_no_keys_by_default(self):
        profile = uniform_profile(3, 100)
        req = profile.make_request(random.Random(1))
        assert req.keys is None

    def test_unique_request_ids(self):
        profile = uniform_profile(2, 100)
        rng = random.Random(1)
        ids = {profile.make_request(rng).request_id for _ in range(50)}
        assert len(ids) == 50


@given(st.integers(min_value=1, max_value=20),
       st.integers(min_value=1, max_value=20),
       st.floats(min_value=0.05, max_value=0.95),
       st.integers(min_value=0, max_value=2**31))
def test_mix_only_produces_declared_classes(lfan, sfan, share, seed):
    """Property: every drawn request belongs to a declared class and has
    that class's fanout."""
    profile = lfan_sfan_profile(lfan, sfan, 256, lfan_share=share)
    rng = random.Random(seed)
    fanout_by_class = {"Lfan": lfan, "Sfan": sfan}
    for _ in range(30):
        req = profile.make_request(rng)
        assert req.klass in fanout_by_class
        assert req.fanout == fanout_by_class[req.klass]
