"""Tests for the closed-loop and open-loop workload generators."""

import pytest

from repro.core.doubleface import DoubleFaceServer
from repro.datastore.cluster import DatastoreCluster
from repro.sim.kernel import Simulator
from repro.sim.metrics import Metrics
from repro.sim.params import CostParams
from repro.sim.rng import RngStreams
from repro.workload.closed_loop import ClosedLoopWorkload
from repro.workload.open_loop import PoissonWorkload
from repro.workload.profiles import uniform_profile


def build_env(seed=42, **param_overrides):
    sim = Simulator()
    metrics = Metrics()
    params = CostParams().with_overrides(**param_overrides)
    rng = RngStreams(seed)
    cluster = DatastoreCluster(sim, metrics, params, rng, n_shards=4)
    server = DoubleFaceServer(sim, metrics, params, cluster, rng, reactors=1)
    server.start()
    return sim, metrics, params, server, rng


class TestClosedLoop:
    def test_drives_requests_and_records_latency(self):
        sim, metrics, params, server, rng = build_env()
        profile = uniform_profile(2, 100)
        workload = ClosedLoopWorkload(sim, metrics, params, server, profile,
                                      concurrency=5, rng_streams=rng)
        workload.start()
        sim.run(until=0.5)
        completed = metrics.raw_count("client.completed")
        assert completed > 50
        assert metrics.latency("client.rt").raw_count == completed

    def test_concurrency_bounds_in_flight(self):
        """Closed loop: in-flight requests never exceed the user count."""
        sim, metrics, params, server, rng = build_env()
        profile = uniform_profile(2, 100)
        workload = ClosedLoopWorkload(sim, metrics, params, server, profile,
                                      concurrency=3, rng_streams=rng)
        workload.start()
        sim.run(until=0.5)
        sent = metrics.raw_count("server.requests")
        done = metrics.raw_count("client.completed")
        assert sent - done <= 3

    def test_rejects_bad_concurrency_and_double_start(self):
        sim, metrics, params, server, rng = build_env()
        profile = uniform_profile(1, 100)
        with pytest.raises(ValueError):
            ClosedLoopWorkload(sim, metrics, params, server, profile,
                               concurrency=0, rng_streams=rng)
        workload = ClosedLoopWorkload(sim, metrics, params, server, profile,
                                      concurrency=1, rng_streams=rng)
        workload.start()
        with pytest.raises(RuntimeError):
            workload.start()

    def test_deterministic_given_seed(self):
        def run(seed):
            sim, metrics, params, server, rng = build_env(seed=seed)
            profile = uniform_profile(2, 100)
            ClosedLoopWorkload(sim, metrics, params, server, profile,
                               concurrency=4, rng_streams=rng).start()
            sim.run(until=0.3)
            return metrics.raw_count("client.completed")

        assert run(7) == run(7)


class TestOpenLoop:
    def test_rate_tracks_users_over_think_time(self):
        sim, metrics, params, server, rng = build_env()
        profile = uniform_profile(2, 100)
        workload = PoissonWorkload(sim, metrics, params, server, profile,
                                   users=100, think_time_mean=1.0,
                                   rng_streams=rng)
        assert workload.offered_rate == pytest.approx(100.0)
        workload.start()
        sim.run(until=5.0)
        rate = metrics.raw_count("client.completed") / 5.0
        # Response times are tiny relative to think time, so the
        # completion rate approximates users/think.
        assert rate == pytest.approx(100.0, rel=0.15)

    def test_validation(self):
        sim, metrics, params, server, rng = build_env()
        profile = uniform_profile(1, 100)
        with pytest.raises(ValueError):
            PoissonWorkload(sim, metrics, params, server, profile,
                            users=0, think_time_mean=1.0, rng_streams=rng)
        with pytest.raises(ValueError):
            PoissonWorkload(sim, metrics, params, server, profile,
                            users=1, think_time_mean=0.0, rng_streams=rng)

    def test_arrivals_are_spread_not_synchronized(self):
        """Session start staggering: arrivals in the first think period
        should not all land at once."""
        sim, metrics, params, server, rng = build_env()
        profile = uniform_profile(1, 100)
        PoissonWorkload(sim, metrics, params, server, profile,
                        users=50, think_time_mean=2.0,
                        rng_streams=rng).start()
        sim.run(until=1.0)
        first_wave = metrics.raw_count("server.requests")
        assert 5 < first_wave < 50
