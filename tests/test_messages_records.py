"""Unit tests for message types and record materialisation."""

import pytest
from hypothesis import given, strategies as st

from repro.datastore.records import (RecordSchema, materialize_record,
                                     record_size)
from repro.messages import HttpRequest, HttpResponse, Query, QueryResponse


class TestMessages:
    def test_request_ids_unique(self):
        a = HttpRequest(fanout=1, response_size=10)
        b = HttpRequest(fanout=1, response_size=10)
        assert a.request_id != b.request_id

    def test_wire_sizes_positive(self):
        req = HttpRequest(fanout=3, response_size=100)
        resp = HttpResponse(request_id=req.request_id, payload_size=300)
        q = Query(request_id=1, shard_id=0, op="get", response_size=100)
        qr = QueryResponse(request_id=1, shard_id=0, payload_size=100)
        for msg in (req, resp, q, qr):
            assert msg.wire_size > 0

    def test_http_response_includes_payload(self):
        small = HttpResponse(request_id=1, payload_size=0)
        large = HttpResponse(request_id=1, payload_size=10_000)
        assert large.wire_size - small.wire_size == 10_000

    def test_query_response_carries_context(self):
        ctx = object()
        qr = QueryResponse(request_id=1, shard_id=2, payload_size=10,
                           context=ctx)
        assert qr.context is ctx


class TestRecordSchema:
    def test_ycsb_geometry(self):
        schema = RecordSchema(field_count=10, field_size=100)
        assert schema.record_bytes == 1000
        assert record_size(schema) == 1000 + schema.key_size
        assert schema.field_names() == tuple(f"field{i}" for i in range(10))

    def test_materialize_deterministic(self):
        schema = RecordSchema(field_count=3, field_size=16)
        a = materialize_record(schema, "user1")
        b = materialize_record(schema, "user1")
        assert a == b
        assert all(len(v) == 16 for v in a.values())

    def test_materialize_distinct_per_key_and_field(self):
        schema = RecordSchema(field_count=2, field_size=16)
        a = materialize_record(schema, "user1")
        b = materialize_record(schema, "user2")
        assert a["field0"] != b["field0"]
        assert a["field0"] != a["field1"]


@given(st.integers(min_value=1, max_value=32),
       st.integers(min_value=1, max_value=512))
def test_record_sizes_consistent(field_count, field_size):
    """Property: materialised bytes always match the schema's claim."""
    schema = RecordSchema(field_count=field_count, field_size=field_size)
    record = materialize_record(schema, "k")
    assert sum(len(v) for v in record.values()) == schema.record_bytes
