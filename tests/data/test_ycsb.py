"""Unit tests for the YCSB dataset generator and key distributions."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.data.ycsb import UniformGenerator, YCSBDataset, ZipfianGenerator


class TestZipfianGenerator:
    def test_range(self):
        gen = ZipfianGenerator(1000, random.Random(1))
        for _ in range(2000):
            assert 0 <= gen.next_index() < 1000

    def test_skew_toward_low_indexes(self):
        gen = ZipfianGenerator(10_000, random.Random(1))
        counts = Counter(gen.next_index() for _ in range(20_000))
        # Index 0 must be by far the most popular.
        assert counts[0] > counts.get(100, 0)
        top10 = sum(counts[i] for i in range(10))
        assert top10 > 0.2 * 20_000  # heavy head

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0, random.Random(1))
        with pytest.raises(ValueError):
            ZipfianGenerator(10, random.Random(1), theta=1.5)

    def test_deterministic(self):
        a = ZipfianGenerator(1000, random.Random(5))
        b = ZipfianGenerator(1000, random.Random(5))
        assert [a.next_index() for _ in range(50)] == \
               [b.next_index() for _ in range(50)]

    def test_large_keyspace_constructs_quickly(self):
        gen = ZipfianGenerator(20_000_000, random.Random(1))
        assert 0 <= gen.next_index() < 20_000_000


class TestUniformGenerator:
    def test_range_and_coverage(self):
        gen = UniformGenerator(50, random.Random(2))
        seen = {gen.next_index() for _ in range(2000)}
        assert seen.issubset(set(range(50)))
        assert len(seen) == 50

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            UniformGenerator(0, random.Random(1))


class TestYCSBDataset:
    def test_paper_geometry(self):
        ds = YCSBDataset()
        assert ds.records_per_shard == 1_000_000
        assert ds.n_shards == 20
        assert ds.record_bytes == 1000  # ten 100-byte fields
        assert ds.total_records == 20_000_000

    def test_key_format(self):
        ds = YCSBDataset()
        assert ds.key_for(0) == "user000000000000"
        assert ds.key_for(123) == "user000000000123"
        with pytest.raises(IndexError):
            ds.key_for(ds.total_records)

    def test_scramble_stays_in_range(self):
        ds = YCSBDataset(records_per_shard=1000, n_shards=4)
        for i in range(500):
            assert 0 <= ds.scramble(i) < ds.total_records

    def test_key_chooser_zipfian_scrambles_hot_keys(self):
        ds = YCSBDataset(records_per_shard=10_000, n_shards=2)
        chooser = ds.key_chooser(random.Random(1), "zipfian")
        keys = [chooser() for _ in range(3000)]
        counts = Counter(keys)
        # Hot keys exist but are not clustered at index 0.
        hottest, n = counts.most_common(1)[0]
        assert n > 5
        assert hottest != ds.key_for(0) or True  # scrambled location

    def test_key_chooser_uniform(self):
        ds = YCSBDataset(records_per_shard=100, n_shards=2)
        chooser = ds.key_chooser(random.Random(1), "uniform")
        keys = {chooser() for _ in range(2000)}
        assert len(keys) > 150

    def test_unknown_distribution(self):
        ds = YCSBDataset()
        with pytest.raises(ValueError):
            ds.key_chooser(random.Random(1), "pareto")

    def test_materialize(self):
        ds = YCSBDataset(records_per_shard=10, n_shards=1)
        records = list(ds.materialize(5))
        assert len(records) == 5
        for key, value in records:
            assert key.startswith("user")
            assert len(value) == ds.record_bytes
        # Deterministic.
        assert records == list(ds.materialize(5))

    def test_op_rule(self):
        ds = YCSBDataset()
        assert ds.op_for_size(100) == "get"
        assert ds.op_for_size(20 * 1024) == "scan"


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=100_000),
       st.integers(min_value=0, max_value=2**31))
def test_zipfian_always_in_range(n, seed):
    """Property: every draw is a valid index for any keyspace size."""
    gen = ZipfianGenerator(n, random.Random(seed))
    for _ in range(200):
        assert 0 <= gen.next_index() < n
