"""Unit tests for the synthetic DBLP co-author dataset."""

import random
from collections import Counter

import pytest

from repro.data.dblp import CoAuthorPair, DBLPDataset


class TestDBLPDataset:
    def test_paper_geometry(self):
        ds = DBLPDataset()
        assert ds.n_pairs == 7_000_000
        assert ds.tuple_bytes == 30 * 1024
        assert ds.n_shards == 20
        # ~20 GB per shard, as in the paper.
        assert ds.shard_bytes == pytest.approx(20 * 2**30, rel=0.55)

    def test_author_names(self):
        ds = DBLPDataset(n_authors=100)
        assert ds.author_name(0) == "author00000000"
        with pytest.raises(IndexError):
            ds.author_name(100)

    def test_pair_is_deterministic_and_distinct(self):
        ds = DBLPDataset(n_pairs=1000, n_authors=50)
        for i in range(100):
            a1, b1 = ds.pair_for(i)
            a2, b2 = ds.pair_for(i)
            assert (a1, b1) == (a2, b2)
            assert a1 != b1

    def test_pair_bounds(self):
        ds = DBLPDataset(n_pairs=10)
        with pytest.raises(IndexError):
            ds.pair_for(10)

    def test_popularity_is_skewed(self):
        ds = DBLPDataset(n_pairs=5000, n_authors=1000)
        firsts = Counter(ds.pair_for(i)[0] for i in range(2000))
        top = firsts.most_common(10)
        bottom_share = sum(1 for c in firsts.values() if c == 1)
        assert top[0][1] > 5          # prolific authors exist
        assert bottom_share > 100     # long tail exists

    def test_key_chooser(self):
        ds = DBLPDataset(n_pairs=500, n_authors=100)
        chooser = ds.key_chooser(random.Random(3))
        keys = [chooser() for _ in range(50)]
        assert all("|" in k for k in keys)
        assert len(set(keys)) > 25

    def test_materialize(self):
        ds = DBLPDataset(n_pairs=20, n_authors=10, tuple_bytes=256)
        pairs = list(ds.materialize(5))
        assert len(pairs) == 5
        for pair in pairs:
            assert isinstance(pair, CoAuthorPair)
            assert len(pair.payload) == 256
            assert pair.key == f"{pair.author_a}|{pair.author_b}"
        assert pairs == list(ds.materialize(5))

    def test_op_rule(self):
        ds = DBLPDataset()
        assert ds.op_for_size(30 * 1024) == "get"
        assert ds.op_for_size(100 * 1024) == "scan"
