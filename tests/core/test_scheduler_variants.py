"""Tests for the ablation scheduler variants."""

import pytest

from repro.core.scheduling import (DeferIncompleteScheduler,
                                   StableFanoutScheduler)
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.messages import HttpRequest, QueryResponse
from tests.core.test_scheduling import _State, request, response


class TestStableFanoutScheduler:
    def test_completable_first_without_sjf(self):
        sched = StableFanoutScheduler()
        big = _State(remaining=4)
        small = _State(remaining=2)
        # Big arrives first: stable variant keeps it ahead of small.
        batch = [response(big)] * 4 + [response(small)] * 2
        ordered = sched.order(batch)
        assert [ev[1].context for ev in ordered[:4]] == [big] * 4

    def test_incomplete_still_last(self):
        sched = StableFanoutScheduler()
        pending = _State(remaining=9)
        done = _State(remaining=1)
        ordered = sched.order([response(pending), response(done)])
        assert ordered[0][1].context is done

    def test_permutation(self):
        sched = StableFanoutScheduler()
        batch = [request(), response(_State(1)), response(_State(7))]
        ordered = sched.order(list(batch))
        assert sorted(id(m) for _c, m in ordered) == \
               sorted(id(m) for _c, m in batch)


class TestDeferIncompleteScheduler:
    def test_incomplete_events_deferred(self):
        sched = DeferIncompleteScheduler()
        pending = _State(remaining=9)
        done = _State(remaining=1)
        batch = [response(pending), response(done), request()]
        now = sched.order(batch)
        deferred = sched.take_deferred()
        assert [ev[1].context for ev in now
                if isinstance(ev[1], QueryResponse)] == [done]
        assert [ev[1].context for ev in deferred] == [pending]

    def test_all_incomplete_batch_processed_anyway(self):
        sched = DeferIncompleteScheduler()
        pending = _State(remaining=9)
        batch = [response(pending), response(pending)]
        now = sched.order(batch)
        assert len(now) == 2
        assert sched.take_deferred() == []

    def test_deferred_resets_between_batches(self):
        sched = DeferIncompleteScheduler()
        pending = _State(remaining=9)
        sched.order([response(pending), request()])
        assert len(sched.take_deferred()) == 1
        assert sched.take_deferred() == []

    def test_end_to_end_with_doubleface(self):
        """The reactor loop re-queues deferred events and every request
        still completes."""
        from repro.core.doubleface import DoubleFaceServer
        from repro.datastore.cluster import DatastoreCluster
        from repro.sim.kernel import Simulator
        from repro.sim.metrics import Metrics
        from repro.sim.params import CostParams
        from repro.sim.rng import RngStreams
        from repro.workload.closed_loop import ClosedLoopWorkload
        from repro.workload.profiles import uniform_profile

        sim = Simulator()
        metrics = Metrics()
        params = CostParams()
        rng = RngStreams(42)
        cluster = DatastoreCluster(sim, metrics, params, rng, n_shards=5)
        server = DoubleFaceServer(sim, metrics, params, cluster, rng,
                                  reactors=1,
                                  scheduler=DeferIncompleteScheduler())
        server.start()
        ClosedLoopWorkload(sim, metrics, params, server,
                           uniform_profile(4, 100), 8, rng).start()
        sim.run(until=0.5)
        completed = metrics.raw_count("client.completed")
        assert completed > 20
        # Conservation: responses processed == 4 x completed (+ in flight).
        responses = metrics.raw_count("server.fanout_responses")
        assert responses >= 4 * completed
