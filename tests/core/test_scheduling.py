"""Unit and property tests for the fanout-aware batch scheduler."""

import pytest
from hypothesis import given, strategies as st

from repro.core.scheduling import FanoutAwareScheduler, FifoScheduler
from repro.messages import HttpRequest, QueryResponse


class _State:
    """Stand-in for RequestState: only `remaining` matters."""

    __slots__ = ("remaining",)

    def __init__(self, remaining):
        self.remaining = remaining


def response(state, rid=0):
    return ("chan", QueryResponse(request_id=rid, shard_id=0,
                                  payload_size=100, context=state))


def request(fanout=2):
    return ("chan", HttpRequest(fanout=fanout, response_size=100))


class TestFifoScheduler:
    def test_preserves_order(self):
        sched = FifoScheduler()
        batch = [request(), response(_State(1)), request()]
        assert sched.order(batch) == batch

    def test_returns_copy(self):
        sched = FifoScheduler()
        batch = [request()]
        out = sched.order(batch)
        assert out == batch
        assert out is not batch


class TestFanoutAwareScheduler:
    def test_trivial_batches_untouched(self):
        sched = FanoutAwareScheduler()
        assert sched.order([]) == []
        single = [request()]
        assert sched.order(single) == single

    def test_completable_before_incomplete(self):
        sched = FanoutAwareScheduler()
        done = _State(remaining=1)
        pending = _State(remaining=5)
        batch = [response(pending), response(done)]
        ordered = sched.order(batch)
        assert ordered[0][1].context is done
        assert ordered[-1][1].context is pending

    def test_paper_figure_12_scenario(self):
        """Fanout-3 and fanout-8 requests complete in the batch; the
        fanout-5 request has only 3 of 5 responses present and goes
        last."""
        sched = FanoutAwareScheduler()
        f3 = _State(remaining=3)
        f8 = _State(remaining=8)
        f5 = _State(remaining=5)
        batch = []
        batch += [response(f5)] * 3          # incomplete (3 of 5)
        batch += [response(f3)] * 3          # completable
        batch += [response(f8)] * 8          # completable
        ordered = sched.order(batch)
        states = [ev[1].context for ev in ordered]
        # First the fanout-3 request (fewest outstanding), then the
        # fanout-8 one, then the incomplete fanout-5 events.
        assert states[:3] == [f3] * 3
        assert states[3:11] == [f8] * 8
        assert states[11:] == [f5] * 3

    def test_sjf_among_completables(self):
        sched = FanoutAwareScheduler()
        big = _State(remaining=4)
        small = _State(remaining=2)
        batch = [response(big)] * 4 + [response(small)] * 2
        ordered = sched.order(batch)
        assert [ev[1].context for ev in ordered[:2]] == [small, small]

    def test_requests_between_completable_and_incomplete(self):
        sched = FanoutAwareScheduler()
        done = _State(remaining=1)
        pending = _State(remaining=9)
        batch = [response(pending), request(), response(done)]
        ordered = sched.order(batch)
        kinds = ["done" if (isinstance(m, QueryResponse)
                            and m.context is done)
                 else ("pending" if isinstance(m, QueryResponse)
                       else "request")
                 for (_c, m) in ordered]
        assert kinds == ["done", "request", "pending"]

    def test_permutation_only(self):
        sched = FanoutAwareScheduler()
        states = [_State(remaining=i % 3 + 1) for i in range(10)]
        batch = [response(s, rid=i) for i, s in enumerate(states)]
        ordered = sched.order(batch)
        assert sorted(id(ev[1]) for ev in ordered) == \
               sorted(id(ev[1]) for ev in batch)

    def test_stability_within_tier(self):
        sched = FanoutAwareScheduler()
        a, b = _State(remaining=1), _State(remaining=1)
        batch = [response(a, rid=1), response(b, rid=2)]
        ordered = sched.order(batch)
        assert [ev[1].request_id for ev in ordered] == [1, 2]

    def test_diagnostics_counters(self):
        sched = FanoutAwareScheduler()
        done = _State(remaining=1)
        pending = _State(remaining=5)
        sched.order([response(pending), response(done)])
        assert sched.batches == 1
        assert sched.promoted >= 1
        assert sched.deferred >= 1


@st.composite
def batches(draw):
    events = []
    n_requests = draw(st.integers(min_value=0, max_value=4))
    for _ in range(n_requests):
        events.append(request(draw(st.integers(min_value=1, max_value=8))))
    n_groups = draw(st.integers(min_value=0, max_value=5))
    for g in range(n_groups):
        remaining = draw(st.integers(min_value=1, max_value=6))
        present = draw(st.integers(min_value=1, max_value=6))
        state = _State(remaining=remaining)
        events.extend(response(state, rid=g) for _ in range(present))
    # Shuffle deterministically via hypothesis permutation.
    return draw(st.permutations(events))


@given(batches())
def test_order_is_always_a_permutation(batch):
    """Property: scheduling never drops, duplicates, or invents events."""
    sched = FanoutAwareScheduler()
    ordered = sched.order(list(batch))
    assert sorted(id(m) for (_c, m) in ordered) == \
           sorted(id(m) for (_c, m) in batch)


@given(batches())
def test_completable_events_precede_incomplete_ones(batch):
    """Property: every completable-group event is ordered before every
    incomplete-group event."""
    sched = FanoutAwareScheduler()
    counts = {}
    for _c, m in batch:
        if isinstance(m, QueryResponse):
            counts[id(m.context)] = counts.get(id(m.context), 0) + 1

    def tier(message):
        if not isinstance(message, QueryResponse):
            return 1  # request
        if counts[id(message.context)] >= message.context.remaining:
            return 0  # completable
        return 2      # incomplete

    ordered = sched.order(list(batch))
    tiers = [tier(m) for (_c, m) in ordered]
    assert tiers == sorted(tiers)
