"""Behavioural tests for the DoubleFaceAD server."""

import pytest

from repro.core.doubleface import DoubleFaceServer
from repro.core.handlers import EventHandler, FrontendHandler, TaskHandler
from repro.core.scheduling import FifoScheduler
from repro.datastore.cluster import DatastoreCluster
from repro.messages import HttpRequest
from repro.sim.kernel import Simulator
from repro.sim.metrics import Metrics
from repro.sim.params import CostParams
from repro.sim.rng import RngStreams
from repro.workload.closed_loop import ClosedLoopWorkload
from repro.workload.profiles import uniform_profile


def build(reactors=2, scheduler=None, business_logic=None, seed=42,
          n_shards=5, **overrides):
    sim = Simulator()
    metrics = Metrics()
    params = CostParams().with_overrides(**overrides)
    rng = RngStreams(seed)
    cluster = DatastoreCluster(sim, metrics, params, rng, n_shards=n_shards)
    server = DoubleFaceServer(sim, metrics, params, cluster, rng,
                              reactors=reactors, scheduler=scheduler,
                              business_logic=business_logic)
    return sim, metrics, params, rng, server


def drive(server, sim, metrics, params, rng, concurrency=6, until=0.5,
          fanout=3):
    server.start()
    profile = uniform_profile(fanout, 100)
    ClosedLoopWorkload(sim, metrics, params, server, profile,
                       concurrency, rng).start()
    sim.run(until=until)


class TestDoubleFaceServer:
    def test_completes_requests_single_reactor(self):
        sim, metrics, params, rng, server = build(reactors=1)
        drive(server, sim, metrics, params, rng)
        assert metrics.raw_count("client.completed") > 20

    def test_ncopy_distributes_upstream_connections(self):
        sim, metrics, params, rng, server = build(reactors=3)
        drive(server, sim, metrics, params, rng, concurrency=7)
        counts = [r.upstream_count for r in server.reactors]
        assert sum(counts) == 7
        assert max(counts) - min(counts) <= 1  # round-robin

    def test_each_reactor_has_private_downstream_conns(self):
        sim, metrics, params, rng, server = build(reactors=2, n_shards=4)
        server.start()
        assert all(len(r.downstream) == 4 for r in server.reactors)
        conns = {id(c) for r in server.reactors for c in r.downstream}
        assert len(conns) == 8  # no sharing across reactors

    def test_almost_no_context_switches_with_one_reactor_per_core(self):
        """The integrated design's headline property: reactor threads
        never hand work across threads.  (A handful of switches remain
        because the scheduler does not pin threads to cores.)"""
        sim, metrics, params, rng, server = build(reactors=2, app_cores=2)
        drive(server, sim, metrics, params, rng)
        completed = metrics.raw_count("client.completed")
        assert metrics.raw_count("cpu.app.ctx_switches") < 0.05 * completed
        assert metrics.cpu.busy_by_category.get("lock", 0.0) == 0.0

    def test_blocking_select_no_spurious(self):
        sim, metrics, params, rng, server = build(reactors=1)
        drive(server, sim, metrics, params, rng)
        stats = server.selectors()[0].stats()
        assert stats["spurious"] == 0

    def test_fifo_scheduler_accepted(self):
        sim, metrics, params, rng, server = build(scheduler=FifoScheduler())
        drive(server, sim, metrics, params, rng)
        assert metrics.raw_count("client.completed") > 20

    def test_rejects_zero_reactors(self):
        with pytest.raises(ValueError):
            build(reactors=0)

    def test_inflight_tracking_drains(self):
        sim, metrics, params, rng, server = build(reactors=1)
        drive(server, sim, metrics, params, rng, until=0.4)
        # Let in-flight work complete with no new requests: stop driving
        # by advancing a little; closed-loop users immediately re-issue,
        # so just bound the in-flight count instead.
        total_inflight = sum(len(r.inflight) for r in server.reactors)
        assert total_inflight <= 6


class TestPluggability:
    def test_business_logic_hook_runs(self):
        calls = []

        def logic(reactor, request):
            calls.append(request.request_id)
            yield reactor.thread.execute(1e-6)

        sim, metrics, params, rng, server = build(business_logic=logic)
        drive(server, sim, metrics, params, rng)
        assert len(calls) == metrics.raw_count("server.requests")

    def test_register_handler_replaces(self):
        sim, metrics, params, rng, server = build()

        class CountingHandler(FrontendHandler):
            def __init__(self):
                super().__init__()
                self.seen = 0

            def handle(self, reactor, channel, message):
                self.seen += 1
                yield from super().handle(reactor, channel, message)

        handler = CountingHandler()
        server.register_handler("upstream", handler)
        drive(server, sim, metrics, params, rng)
        assert handler.seen == metrics.raw_count("server.requests") > 0

    def test_register_handler_type_checked(self):
        _sim, _m, _p, _r, server = build()
        with pytest.raises(TypeError):
            server.register_handler("upstream", lambda *a: None)

    def test_task_events_run_callables(self):
        sim, metrics, params, rng, server = build(reactors=1)
        server.start()
        ran = []

        def task(reactor):
            ran.append(reactor.index)
            yield reactor.thread.execute(1e-6)

        def inject():
            yield from server.reactors[0].post(None, task)

        sim.process(inject())
        sim.run(until=0.1)
        assert ran == [0]

    def test_task_handler_rejects_non_callable(self):
        sim, metrics, params, rng, server = build(reactors=1)
        server.start()

        def inject():
            yield from server.reactors[0].post(None, "not callable")

        sim.process(inject())
        with pytest.raises(TypeError):
            sim.run(until=0.1)

    def test_unknown_channel_kind_rejected(self):
        _sim, _m, _p, _r, server = build()
        assert isinstance(server.handlers["task"], TaskHandler)
        assert isinstance(server.handlers["upstream"], EventHandler)
