"""Tests for experiment configs and the runner."""

import math

import pytest

from repro.experiments.config import (DATASTORE_KINDS, SERVER_KINDS,
                                      ExperimentConfig)
from repro.experiments.runner import PERCENTILES, build_params, run_experiment


class TestExperimentConfig:
    def test_defaults_valid(self):
        config = ExperimentConfig()
        assert config.server in SERVER_KINDS
        assert config.datastore in DATASTORE_KINDS
        assert config.label == config.server

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(server="mystery")
        with pytest.raises(ValueError):
            ExperimentConfig(datastore="oracle")
        with pytest.raises(ValueError):
            ExperimentConfig(workload="batch")
        with pytest.raises(ValueError):
            ExperimentConfig(fanout=21, n_shards=20)
        with pytest.raises(ValueError):
            ExperimentConfig(lfan=5)  # sfan missing
        with pytest.raises(ValueError):
            ExperimentConfig(duration=0)

    def test_build_params_overrides(self):
        config = ExperimentConfig(params={"app_cores": 4,
                                          "request_cpu": 1e-3})
        params = build_params(config)
        assert params.app_cores == 4
        assert params.request_cpu == 1e-3

    def test_build_params_hbase_slower(self):
        mongo = build_params(ExperimentConfig(datastore="mongodb"))
        hbase = build_params(ExperimentConfig(datastore="hbase"))
        assert hbase.point_lookup_mean > mongo.point_lookup_mean

    def test_pool_size_plumbing(self):
        params = build_params(ExperimentConfig(type1_pool_size=8,
                                               aio_pool_max=9))
        assert params.type1_pool_size == 8
        assert params.aio_pool_max == 9


class TestRunExperiment:
    @pytest.mark.parametrize("server", SERVER_KINDS)
    def test_every_server_kind_runs(self, server):
        config = ExperimentConfig(server=server, concurrency=5, fanout=3,
                                  warmup=0.1, duration=0.3)
        result = run_experiment(config)
        assert result.throughput > 0
        assert 0.0 <= result.cpu_utilization <= 1.001
        assert not math.isnan(result.percentiles[99.0])
        assert result.completed == pytest.approx(
            result.throughput * result.window)

    def test_deterministic_across_runs(self):
        config = ExperimentConfig(concurrency=8, warmup=0.1, duration=0.3,
                                  seed=11)
        a = run_experiment(config)
        b = run_experiment(config)
        assert a.throughput == b.throughput
        assert a.percentiles == b.percentiles
        assert a.ctx_switches_per_sec == b.ctx_switches_per_sec

    def test_seed_changes_results(self):
        base = ExperimentConfig(concurrency=8, warmup=0.1, duration=0.3)
        a = run_experiment(base)
        b = run_experiment(ExperimentConfig(concurrency=8, warmup=0.1,
                                            duration=0.3, seed=99))
        # Closed-loop completion counts can coincide at low load; the
        # latency distribution reflects the different service draws.
        assert a.mean_rt != b.mean_rt

    def test_open_loop_runs(self):
        config = ExperimentConfig(workload="open", users=20, think_time=0.2,
                                  warmup=0.2, duration=0.5)
        result = run_experiment(config)
        assert result.throughput > 0

    def test_lfan_sfan_classes_reported(self):
        config = ExperimentConfig(lfan=5, sfan=3, concurrency=5,
                                  warmup=0.1, duration=0.4)
        result = run_experiment(config)
        assert "Lfan" in result.class_percentiles
        assert "Sfan" in result.class_percentiles
        for klass in ("Lfan", "Sfan"):
            for q in PERCENTILES:
                assert result.class_percentiles[klass][q] > 0

    def test_thread_sampler(self):
        config = ExperimentConfig(concurrency=5, warmup=0.1, duration=0.3,
                                  thread_sample_period=0.01)
        result = run_experiment(config)
        assert len(result.thread_samples) >= 25

    def test_selector_stats_present_for_reactor_servers(self):
        config = ExperimentConfig(server="netty", concurrency=5,
                                  warmup=0.1, duration=0.3)
        result = run_experiment(config)
        names = {s["name"] for s in result.selector_stats}
        assert any("frontend" in n for n in names)
        assert any("backend" in n for n in names)

    def test_large_shards_slow_down_responses(self):
        small = run_experiment(ExperimentConfig(
            concurrency=5, warmup=0.1, duration=0.4))
        large = run_experiment(ExperimentConfig(
            concurrency=5, warmup=0.1, duration=0.4, large_shards=True))
        assert large.mean_rt > small.mean_rt

    def test_selector_stats_gated_by_config(self):
        """keep_selector_stats=False drops the raw dicts but keeps the
        aggregates computed from them."""
        kw = dict(server="netty", concurrency=5, warmup=0.1, duration=0.3)
        kept = run_experiment(ExperimentConfig(**kw))
        gated = run_experiment(ExperimentConfig(keep_selector_stats=False,
                                                **kw))
        assert gated.selector_stats == []
        assert gated.selects_per_sec == kept.selects_per_sec
        assert gated.selects_per_sec > 0
        assert gated.throughput == kept.throughput

    def test_latency_sketch_close_to_exact(self):
        """Sketch-mode percentiles track the exact ones within a few
        percent on a real run; throughput is untouched."""
        kw = dict(concurrency=20, warmup=0.2, duration=1.0)
        exact = run_experiment(ExperimentConfig(**kw))
        sketch = run_experiment(ExperimentConfig(latency_sketch=True, **kw))
        assert sketch.throughput == exact.throughput
        assert sketch.completed == exact.completed
        for q in (50.0, 90.0, 99.0):
            assert sketch.percentiles[q] == pytest.approx(
                exact.percentiles[q], rel=0.1)
