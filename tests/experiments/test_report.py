"""Tests for the text-report rendering helpers."""

import math
import random

import pytest

from repro.experiments.report import (fmt, normalize, render_breakdown,
                                      render_flame, render_hedge_delays,
                                      render_series, render_table)


class TestFmt:
    def test_number_formats(self):
        assert fmt(3.14159, width=8) == "    3.14"
        assert fmt(None, width=4) == "   -"
        assert fmt(float("nan"), width=4) == "   -"
        assert fmt("x", width=3) == "  x"


class TestRenderTable:
    def test_contains_headers_and_cells(self):
        text = render_table("Title", ["a", "b"], [[1, 2.5], ["x", 100.0]])
        assert "Title" in text
        assert "=" * len("Title") in text
        lines = text.splitlines()
        assert "a" in lines[2] and "b" in lines[2]
        assert "2.50" in text
        assert "100" in text

    def test_nan_rendered_as_dash(self):
        text = render_table("T", ["v"], [[float("nan")]])
        assert "-" in text.splitlines()[-1]

    def test_alignment_consistent(self):
        text = render_table("T", ["col"], [[1], [22], [333]])
        lines = text.splitlines()[2:]
        assert len({len(line) for line in lines if line.strip()}) == 1


class TestRenderSeries:
    def test_one_row_per_x(self):
        text = render_series("S", "x", [1, 2, 3],
                             {"a": [10.0, 20.0, 30.0],
                              "b": [1.0, 2.0, 3.0]})
        lines = [l for l in text.splitlines() if l and not
                 l.startswith(("S", "=", "-"))]
        assert len(lines) == 4  # header + 3 rows

    def test_short_series_padded_with_nan(self):
        text = render_series("S", "x", [1, 2], {"a": [10.0]})
        assert "-" in text.splitlines()[-1]


_CATEGORIES = ("network", "service", "cpu_queue", "selector_wait",
               "retry_hedge", "driver")


def _summary(counts=(4.0,), classes=("Lfan",)):
    """Hand-built trace summary with exactly controlled numbers."""
    table = {}
    for klass, count in zip(classes, counts):
        table[klass] = {
            "count": count, "rt_sum": 0.01 * count,
            "breakdown": {"network": 0.002 * count,
                          "service": 0.005 * count,
                          "cpu_queue": 0.001 * count,
                          "selector_wait": 0.0015 * count,
                          "retry_hedge": 0.0,
                          "driver": 0.0005 * count}}
    return {"classes": table}


class TestRenderBreakdown:
    def test_golden_snapshot(self):
        text = render_breakdown("T", {"run": _summary()})
        assert text == "\n".join([
            "T",
            "=",
            "  label  class  n  rt [ms]  network [ms]  service [ms]"
            "  cpu_queue [ms]  selector_wait [ms]  retry_hedge [ms]"
            "  driver [ms]",
            "-" * 121,
            "    run   Lfan  4    10.00          2.00          5.00"
            "            1.00                1.50             0.000"
            "        0.500",
        ])

    def test_skips_none_and_zero_count_classes(self):
        text = render_breakdown("T", {
            "missing": None,
            "run": _summary(counts=(4.0, 0.0), classes=("Lfan", "Sfan"))})
        assert "Lfan" in text
        assert "Sfan" not in text
        assert "missing" not in text

    def test_appends_hedge_delay_table_when_nonempty(self):
        delays = {"run": {0: 0.002}}
        text = render_breakdown("T", {"run": _summary()},
                                hedge_delays=delays)
        assert "learned per-shard hedge delays" in text
        plain = render_breakdown("T", {"run": _summary()},
                                 hedge_delays={"run": {}})
        assert "hedge delays" not in plain

    def test_from_real_tracer(self):
        # The hand-built summary shape matches build_summary's output.
        from repro.trace import K_PARSE, Tracer, build_summary
        tracer = Tracer(random.Random(5), sample_rate=1.0)
        trace = tracer.begin("default", now=0.0)
        trace.add(K_PARSE, 0.0, 0.001)
        tracer.finish(trace, rt=0.004)
        text = render_breakdown("T", {"real": build_summary(tracer)})
        assert "real" in text and "default" in text and "4.00" in text


class TestRenderHedgeDelays:
    def test_golden_snapshot(self):
        text = render_hedge_delays(
            "H", {"run": {3: 0.004, 1: 0.002, 2: 0.0085}})
        assert text == "\n".join([
            "H",
            "=",
            "  label  shards  min [ms]  med [ms]  max [ms]"
            "        per-shard [ms]",
            "-" * 67,
            "    run       3      2.00      4.00      8.50"
            "  1:2.00 2:8.50 3:4.00",
        ])

    def test_shards_sorted_and_empty_labels_skipped(self):
        text = render_hedge_delays("H", {"empty": {}, "run": {2: 0.001,
                                                             0: 0.003}})
        assert "empty" not in text
        assert text.index("0:3.00") < text.index("2:1.00")


class TestRenderFlame:
    def _flame(self):
        from repro.trace import (F_SUBQUERY, FRAME_NAMES, K_ROOT,
                                 K_SERVICE)
        return {"frames": list(FRAME_NAMES),
                "tables": {"default": {"measure": {
                    "paths": [[K_ROOT], [K_ROOT, F_SUBQUERY, K_SERVICE]],
                    "count": [2.0, 5.0],
                    "self": [0.0, 0.01],
                    "total": [0.01, 0.01]}}}}

    def test_golden_snapshot(self):
        text = render_flame("F", {"run": self._flame()}, top=5)
        assert text == "\n".join([
            "F",
            "=",
            "  label    class    phase                   path  n"
            "  self [ms]  mean [us]",
            "-" * 73,
            "    run  default  measure  root;subquery;service  5"
            "      10.00       2000",
        ])

    def test_zero_self_paths_hidden_and_top_k_respected(self):
        flame = self._flame()
        text = render_flame("F", {"run": flame}, top=5)
        assert "root;subquery;service" in text
        assert ";".join(["root"]) + "  " not in text  # structural row
        # top=0 keeps the header only.
        empty = render_flame("F", {"run": flame}, top=0)
        assert "service" not in empty

    def test_none_flames_skipped(self):
        text = render_flame("F", {"a": None, "run": self._flame()})
        assert "run" in text


class TestNormalize:
    def test_pointwise_division(self):
        series = {"base": [2.0, 4.0], "other": [1.0, 8.0]}
        out = normalize(series, "base")
        assert out["base"] == [1.0, 1.0]
        assert out["other"] == [0.5, 2.0]

    def test_zero_baseline_gives_nan(self):
        out = normalize({"base": [0.0], "x": [1.0]}, "base")
        assert math.isnan(out["x"][0])

    def test_missing_baseline_rejected(self):
        with pytest.raises(KeyError):
            normalize({"a": [1.0]}, "missing")
