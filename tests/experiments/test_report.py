"""Tests for the text-report rendering helpers."""

import math

import pytest

from repro.experiments.report import fmt, normalize, render_series, render_table


class TestFmt:
    def test_number_formats(self):
        assert fmt(3.14159, width=8) == "    3.14"
        assert fmt(None, width=4) == "   -"
        assert fmt(float("nan"), width=4) == "   -"
        assert fmt("x", width=3) == "  x"


class TestRenderTable:
    def test_contains_headers_and_cells(self):
        text = render_table("Title", ["a", "b"], [[1, 2.5], ["x", 100.0]])
        assert "Title" in text
        assert "=" * len("Title") in text
        lines = text.splitlines()
        assert "a" in lines[2] and "b" in lines[2]
        assert "2.50" in text
        assert "100" in text

    def test_nan_rendered_as_dash(self):
        text = render_table("T", ["v"], [[float("nan")]])
        assert "-" in text.splitlines()[-1]

    def test_alignment_consistent(self):
        text = render_table("T", ["col"], [[1], [22], [333]])
        lines = text.splitlines()[2:]
        assert len({len(line) for line in lines if line.strip()}) == 1


class TestRenderSeries:
    def test_one_row_per_x(self):
        text = render_series("S", "x", [1, 2, 3],
                             {"a": [10.0, 20.0, 30.0],
                              "b": [1.0, 2.0, 3.0]})
        lines = [l for l in text.splitlines() if l and not
                 l.startswith(("S", "=", "-"))]
        assert len(lines) == 4  # header + 3 rows

    def test_short_series_padded_with_nan(self):
        text = render_series("S", "x", [1, 2], {"a": [10.0]})
        assert "-" in text.splitlines()[-1]


class TestNormalize:
    def test_pointwise_division(self):
        series = {"base": [2.0, 4.0], "other": [1.0, 8.0]}
        out = normalize(series, "base")
        assert out["base"] == [1.0, 1.0]
        assert out["other"] == [0.5, 2.0]

    def test_zero_baseline_gives_nan(self):
        out = normalize({"base": [0.0], "x": [1.0]}, "base")
        assert math.isnan(out["x"][0])

    def test_missing_baseline_rejected(self):
        with pytest.raises(KeyError):
            normalize({"a": [1.0]}, "missing")
