"""Tests for the columnar result transport (repro.experiments.transport).

Three load-bearing properties:

1. **Codec identity.**  ``decode_result(encode_result(r))`` rebuilds
   every ``ExperimentResult`` field exactly — float for float, dict
   order included — from any buffer source (the array itself, raw
   bytes, a shared-memory view).
2. **Ring correctness.**  The bump-allocator ring hands out
   non-overlapping regions, restarts only at drain points, and refuses
   (rather than corrupts) when full — the caller's inline fallback
   keeps runs correct at any ring size, including absurdly small ones.
3. **End-to-end equivalence.**  ``transport="shm"``, ``"pickle"``, and
   the serial path produce byte-identical results for the same
   configs, all the way up to a golden-pinned exhibit.
"""

import dataclasses
import json
import pickle
from array import array
from pathlib import Path

import pytest

from repro.experiments import parallel
from repro.experiments.cli import build_parser
from repro.experiments.config import ExperimentConfig, ExperimentResult
from repro.experiments.parallel import (BatchExecutor, resolve_transport,
                                        run_experiments)
from repro.experiments.transport import (ShmRing, decode_result,
                                         encode_result, shm_available)

GOLDEN = Path(__file__).parent / "golden_tab2_quick_seed42.json"

needs_shm = pytest.mark.skipif(not shm_available(),
                               reason="no shared memory here")


def make_result(n_latency=40, n_thread=10) -> ExperimentResult:
    """A fully-populated result: every field non-trivial, deterministic."""
    qs = (50.0, 90.0, 99.0)
    return ExperimentResult(
        config=ExperimentConfig(server="doubleface", concurrency=8,
                                keep_latency_samples=True),
        throughput=123.5,
        percentiles={q: q / 100.0 for q in qs},
        class_percentiles={"lfan": {q: q * 2.0 for q in qs},
                           "sfan": {q: q * 3.0 for q in qs}},
        mean_rt=0.0125,
        cpu_utilization=0.875,
        cpu_shares={"app": 0.5, "lock": 0.25, "select": 0.25},
        ctx_switches_per_sec=4096.0,
        avg_running_threads=17.5,
        selector_stats=[{"selects": 10, "wakeups": 3}],
        selects_per_sec=250.0,
        select_cpu_share=0.0625,
        pool_spawns=12.0,
        completed=5000.0,
        window=30.0,
        thread_times=array("d", (i * 0.5 for i in range(n_thread))),
        thread_values=array("d", (float(i % 7) for i in range(n_thread))),
        latency_times=array("d", (i * 1e-3 for i in range(n_latency))),
        latency_values=array("d", (0.001 * (1 + i % 13)
                                   for i in range(n_latency))),
        fault_counters={"faults.injected": 42.0, "resilience.hedges": 7.0},
    )


class TestCodecIdentity:
    def test_round_trip_every_field(self):
        original = make_result()
        header, columns = encode_result(original)
        rebuilt = decode_result(header, columns)
        assert dataclasses.asdict(rebuilt) == dataclasses.asdict(original)
        # Dict insertion order survives too (asdict equality alone
        # would accept a reordering).
        assert list(rebuilt.percentiles) == list(original.percentiles)
        assert list(rebuilt.class_percentiles) == \
            list(original.class_percentiles)
        assert list(rebuilt.cpu_shares) == list(original.cpu_shares)
        assert list(rebuilt.fault_counters) == list(original.fault_counters)

    def test_round_trip_from_bytes(self):
        """The inline fallback ships raw bytes; decode must accept any
        buffer-protocol source."""
        original = make_result()
        header, columns = encode_result(original)
        blob = memoryview(columns).cast("B").tobytes()
        rebuilt = decode_result(header, blob)
        assert dataclasses.asdict(rebuilt) == dataclasses.asdict(original)

    def test_round_trip_empty_collections(self):
        """A quick-mode result ships no samples, no classes, no faults."""
        original = make_result(n_latency=0, n_thread=0)
        original = dataclasses.replace(original, class_percentiles={},
                                       fault_counters={}, selector_stats=[])
        header, columns = encode_result(original)
        rebuilt = decode_result(header, columns)
        assert dataclasses.asdict(rebuilt) == dataclasses.asdict(original)
        assert rebuilt.latency_samples == []
        assert rebuilt.thread_samples == []

    def test_header_is_small_and_picklable(self):
        """The header must stay O(1) in the sample count — it rides the
        result pipe on every point."""
        small = pickle.dumps(encode_result(make_result(n_latency=10))[0],
                             pickle.HIGHEST_PROTOCOL)
        large = pickle.dumps(encode_result(make_result(n_latency=10_000))[0],
                             pickle.HIGHEST_PROTOCOL)
        # Only the count integers grow — a few bytes, not O(samples).
        assert len(large) - len(small) < 16

    def test_short_buffer_rejected(self):
        header, columns = encode_result(make_result())
        truncated = memoryview(columns).cast("B").tobytes()[:-8]
        with pytest.raises(ValueError):
            decode_result(header, truncated)

    def test_row_view_properties(self):
        """The (time, value) tuple views stay available on top of the
        columnar storage — report/figures consume them unchanged."""
        result = make_result(n_latency=3, n_thread=2)
        assert result.thread_samples == [(0.0, 0.0), (0.5, 1.0)]
        assert result.latency_samples == \
            list(zip(result.latency_times, result.latency_values))


@needs_shm
class TestShmRing:
    def test_write_view_round_trip(self):
        ring = ShmRing.create(4096)
        try:
            columns = array("d", [1.5, 2.5, 3.5])
            offset, nbytes = ring.write(columns)
            view = ring.view(offset, nbytes)
            try:
                out = array("d")
                out.frombytes(bytes(view))
                assert out == columns
            finally:
                view.release()
            ring.release(nbytes)
        finally:
            ring.destroy()

    def test_reservations_do_not_overlap(self):
        ring = ShmRing.create(4096)
        try:
            a = ring.reserve(100)
            b = ring.reserve(100)
            assert a == 0
            assert b >= 104  # 100 rounded up to the 8-byte boundary
        finally:
            ring.destroy()

    def test_full_ring_returns_none(self):
        ring = ShmRing.create(64)
        try:
            assert ring.reserve(64) == 0
            assert ring.reserve(8) is None
            assert ring.write(array("d", [1.0])) is None
            # Oversized requests fail even on an empty ring.
            assert ring.reserve(65) is None
        finally:
            ring.destroy()

    def test_restart_only_at_drain_point(self):
        ring = ShmRing.create(64)
        try:
            assert ring.reserve(40) == 0
            assert ring.reserve(24) == 40
            ring.release(40)
            # 24 bytes still outstanding: no restart, so no room.
            assert ring.reserve(40) is None
            ring.release(24)
            # Fully drained: the cursor restarts from 0.
            assert ring.reserve(40) == 0
        finally:
            ring.destroy()

    def test_destroy_idempotent_and_unlinks(self):
        from multiprocessing import shared_memory
        ring = ShmRing.create(1024)
        name = ring.spec().name
        ring.destroy()
        ring.destroy()  # second call is a no-op, not an error
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


class TestResolveTransport:
    def test_none_picks_a_valid_transport(self):
        assert resolve_transport(None) in ("shm", "pickle")

    def test_explicit_pickle_passthrough(self):
        assert resolve_transport("pickle") == "pickle"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            resolve_transport("carrier-pigeon")

    def test_shm_degrades_when_unavailable(self, monkeypatch):
        monkeypatch.setattr(parallel, "shm_available", lambda: False)
        assert parallel.resolve_transport("shm") == "pickle"
        assert parallel.resolve_transport(None) == "pickle"


def _grid(seed=7):
    """Cheap heterogeneous grid with bulky per-point payloads: raw
    latency columns on, thread sampler on."""
    return [ExperimentConfig(server=server, concurrency=conc, fanout=3,
                             response_size=100, warmup=0.2, duration=0.4,
                             seed=seed, keep_latency_samples=True)
            for server in ("aio", "doubleface")
            for conc in (4, 16)]


class TestTransportEquivalence:
    def test_shm_equals_pickle_equals_serial(self):
        serial = run_experiments(_grid(), jobs=1)
        shm = run_experiments(_grid(), jobs=2, transport="shm")
        pickled = run_experiments(_grid(), jobs=2, transport="pickle")
        for ours, via_shm, via_pickle in zip(serial, shm, pickled):
            want = dataclasses.asdict(ours)
            assert dataclasses.asdict(via_shm) == want
            assert dataclasses.asdict(via_pickle) == want
        assert len(serial[0].latency_times) > 0

    @needs_shm
    def test_tiny_ring_forces_inline_fallback(self):
        """A ring too small for even one point's columns: every result
        takes the inline-bytes fallback and runs stay identical."""
        serial = run_experiments(_grid(), jobs=1)
        cramped = run_experiments(_grid(), jobs=2, transport="shm",
                                  ring_bytes=256)
        for ours, theirs in zip(serial, cramped):
            assert dataclasses.asdict(ours) == dataclasses.asdict(theirs)

    @needs_shm
    def test_batch_executor_shm_matches_serial_and_cleans_up(self):
        from multiprocessing import shared_memory
        serial = run_experiments(_grid()[:2], jobs=1)
        with BatchExecutor(jobs=2, transport="shm") as executor:
            assert executor.transport == "shm"
            name = executor._ring.spec().name
            batch = executor.run(_grid()[:2])
        for ours, theirs in zip(serial, batch):
            assert dataclasses.asdict(ours) == dataclasses.asdict(theirs)
        # The context exit closed the pool and unlinked the segment.
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    @needs_shm
    def test_batch_executor_error_path_destroys_ring(self):
        from multiprocessing import shared_memory
        poisoned = dataclasses.replace(_grid()[0],
                                       params={"no_such_param": 1})
        with pytest.raises(TypeError):
            with BatchExecutor(jobs=2, transport="shm") as executor:
                name = executor._ring.spec().name
                executor.run([poisoned])
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


class TestCliTransportFlag:
    def test_default_is_auto(self):
        assert build_parser().parse_args([]).transport is None

    def test_accepts_both_transports(self):
        parser = build_parser()
        assert parser.parse_args(["--transport", "shm"]).transport == "shm"
        assert parser.parse_args(
            ["--transport", "pickle"]).transport == "pickle"

    def test_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--transport", "json"])


@needs_shm
class TestGoldenOverShm:
    def test_tab2_byte_identical_over_shm_workers(self):
        """The acceptance bar: a parallel shm-transport exhibit renders
        byte-identical output to the pinned serial golden."""
        from repro.experiments.figures import run_exhibit
        golden = json.loads(GOLDEN.read_text())
        result = run_exhibit("tab2", quick=True, seed=42, jobs=2,
                             transport="shm")
        assert result.text == golden["text"]
        assert result.data == golden["data"]
