"""Tests for the parallel experiment runner.

The load-bearing property is *determinism*: fanning a grid out over
worker processes must produce results byte-identical to the serial
path, in the same (submission) order, because every exhibit's rendered
rows are assembled positionally from the result list.
"""

import dataclasses
import time

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import (BatchExecutor, _chunksize,
                                        resolve_jobs, run_experiments)


def _tiny_grid(seed=7):
    """A cheap but heterogeneous grid: three architectures, two
    concurrency levels."""
    return [ExperimentConfig(server=server, concurrency=conc, fanout=3,
                             response_size=100, warmup=0.2, duration=0.4,
                             seed=seed)
            for server in ("aio", "netty", "doubleface")
            for conc in (4, 16)]


class TestResolveJobs:
    def test_explicit_value_passthrough(self):
        assert resolve_jobs(3) == 3

    def test_zero_and_none_mean_cpu_count(self):
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(None) == resolve_jobs(0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)


class TestChunksize:
    def test_spreads_work_across_workers(self):
        # 100 points over 4 workers: several chunks per worker, and no
        # chunk so large one worker serialises the tail.
        size = _chunksize(100, 4)
        assert 1 <= size <= 100 // 4

    def test_never_zero(self):
        assert _chunksize(1, 8) == 1


class TestSerialFallback:
    def test_empty_grid(self):
        assert run_experiments([], jobs=4) == []

    def test_single_config_stays_in_process(self):
        (result,) = run_experiments(_tiny_grid()[:1], jobs=4)
        assert result.completed > 0

    def test_preserves_submission_order(self):
        configs = _tiny_grid()
        results = run_experiments(configs, jobs=1)
        assert [r.config for r in results] == configs


class TestParallelDeterminism:
    """Same seed => identical ExperimentResult under jobs=1 vs jobs=4."""

    def test_parallel_equals_serial(self):
        configs = _tiny_grid(seed=11)
        serial = run_experiments(configs, jobs=1)
        parallel = run_experiments(_tiny_grid(seed=11), jobs=4)
        assert len(serial) == len(parallel)
        for ours, theirs in zip(serial, parallel):
            # Exact float equality, not approx: both sides replay the
            # same deterministic simulation.
            assert dataclasses.asdict(ours) == dataclasses.asdict(theirs)

    def test_different_seeds_differ(self):
        # Sanity check that the equality above is not vacuous.
        a = run_experiments(_tiny_grid(seed=11)[:1], jobs=1)
        b = run_experiments(_tiny_grid(seed=12)[:1], jobs=1)
        assert a[0].throughput != b[0].throughput


def _poisoned_config():
    """A config that constructs fine but blows up inside the worker:
    ``params`` overrides are applied via ``CostParams.with_overrides``
    at run time, so an unknown field name raises there, not here."""
    return ExperimentConfig(server="doubleface", concurrency=4, fanout=3,
                            response_size=100, warmup=0.2, duration=0.4,
                            seed=7, params={"no_such_param": 1})


class TestBatchExecutorErrorPaths:
    def test_poisoned_config_raises_in_worker(self):
        # Precondition for the tests below: the failure really happens
        # inside run_experiment, after config validation passed.
        with pytest.raises(TypeError):
            run_experiments([_poisoned_config()], jobs=1)

    def test_exit_terminates_pool_after_batch_error(self):
        """A failed batch must tear the pool down promptly instead of
        close()-joining behind queued work — the ``--exhibit all``
        hang fixed in this revision."""
        good = _tiny_grid()[:1]
        with pytest.raises(TypeError):
            with BatchExecutor(jobs=2) as executor:
                # Queue extra work so a graceful close() would have to
                # drain it; terminate() must not wait for these.
                for _ in range(16):
                    executor._pool.apply_async(time.sleep, (0.2,))
                executor.run(good + [_poisoned_config()] + good)
        # The pool is gone: further submissions fail immediately
        # rather than hanging.
        with pytest.raises(ValueError):
            executor._pool.apply_async(int)

    def test_clean_exit_still_closes_gracefully(self):
        with BatchExecutor(jobs=2) as executor:
            (result,) = executor.run(_tiny_grid()[:1])
            assert result.completed > 0
        with pytest.raises(ValueError):
            executor._pool.apply_async(int)
