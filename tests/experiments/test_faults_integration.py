"""Integration guarantees for the repro.faults subsystem.

Three load-bearing properties:

1. **Zero cost when off.**  With ``faults=None`` / ``resilience=None``
   (the defaults), every pre-existing exhibit must render byte-identical
   output to the pre-faults codebase — pinned by a golden file recorded
   before the subsystem landed.
2. **Determinism under faults.**  An active :class:`FaultConfig` plus
   :class:`ResilienceConfig` must stay float-identical between
   ``jobs=1`` and ``jobs=4``: fault windows and jitter come from named
   ``RngStreams``, never from wall-clock or process identity.
3. **Config validation.**  Bad shapes fail fast at construction with
   actionable messages.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import run_exhibit
from repro.experiments.parallel import run_experiments
from repro.faults import FaultConfig, ResilienceConfig

GOLDEN = Path(__file__).parent / "golden_tab2_quick_seed42.json"


class TestGoldenWithFaultsOff:
    def test_tab2_byte_identical_to_pre_faults_golden(self):
        golden = json.loads(GOLDEN.read_text())
        result = run_exhibit("tab2", quick=True, seed=42, jobs=1)
        assert result.exhibit == golden["exhibit"]
        assert result.text == golden["text"]
        assert result.data == golden["data"]


def _fault_grid(seed=11):
    """A cheap grid with every resilience mechanism engaged."""
    faults = FaultConfig(slow_shards=2, slow_factor=100.0,
                         slow_mean_on=0.2, slow_mean_off=0.3)
    resilience = ResilienceConfig(subquery_deadline=5e-3, max_retries=2,
                                  backoff_base=0.5e-3, backoff_cap=2e-3,
                                  hedge_percentile=95.0,
                                  hedge_min_samples=50)
    return [ExperimentConfig(server=server, concurrency=16, fanout=5,
                             response_size=100, warmup=0.2, duration=0.5,
                             seed=seed, faults=faults,
                             resilience=resilience, replicas_per_shard=2)
            for server in ("doubleface", "netty", "aio")]


def _rack_grid(seed=11):
    """A cheap grid with replica-aware routing engaged on top of
    correlated rack faults — the full routing/hedging/failover path."""
    faults = FaultConfig(rack_slow_racks=1, rack_slow_factor=100.0,
                         rack_slow_mean_on=0.15, rack_slow_mean_off=0.15)
    resilience = ResilienceConfig(subquery_deadline=5e-3, max_retries=2,
                                  backoff_base=0.5e-3, backoff_cap=2e-3,
                                  hedge_percentile=95.0,
                                  hedge_min_samples=50)
    return [ExperimentConfig(server=server, concurrency=16, fanout=5,
                             response_size=100, warmup=0.2, duration=0.5,
                             seed=seed, faults=faults,
                             resilience=resilience, replicas_per_shard=2,
                             racks=2, replica_policy="least_outstanding")
            for server in ("doubleface", "netty", "aio", "type1",
                           "threadbased")]


class TestFaultDeterminism:
    def test_fault_grid_parallel_equals_serial(self):
        serial = run_experiments(_fault_grid(), jobs=1)
        parallel = run_experiments(_fault_grid(), jobs=4)
        for ours, theirs in zip(serial, parallel):
            assert dataclasses.asdict(ours) == dataclasses.asdict(theirs)

    def test_faults_engage(self):
        # The determinism assertion above must not be vacuously about a
        # fault-free run: the resilience machinery actually fired.
        # (Since the per-attempt latency fix the learned hedge delay
        # converges near the healthy percentile — well under the 5 ms
        # deadline — so the engaged mechanism here is hedging, which
        # rescues slow sub-queries before any deadline can fire.)
        (result,) = run_experiments(_fault_grid()[:1], jobs=1)
        counters = result.fault_counters
        assert counters.get("resilience.hedges", 0) > 0
        assert counters.get("resilience.hedge_wins", 0) > 0

    def test_hedging_exhibit_parallel_equals_serial(self):
        serial = run_exhibit("hedging", quick=True, seed=42, jobs=1)
        parallel = run_exhibit("hedging", quick=True, seed=42, jobs=4)
        assert serial.text == parallel.text
        assert serial.data == parallel.data

    def test_rack_grid_parallel_equals_serial(self):
        """Replica-aware routing under rack faults is still a pure
        function of the seed: the selector's cursors and in-flight
        counts live inside the worker, never shared across processes."""
        serial = run_experiments(_rack_grid(), jobs=1)
        parallel = run_experiments(_rack_grid(), jobs=4)
        for ours, theirs in zip(serial, parallel):
            assert dataclasses.asdict(ours) == dataclasses.asdict(theirs)

    def test_rack_grid_engages_routing(self):
        # Not vacuous: rack windows slowed queries, hedges crossed to
        # the other rack, and failovers rotated replicas.
        results = run_experiments(_rack_grid(), jobs=1)
        for result in results:
            counters = result.fault_counters
            assert counters.get("faults.rack_slowed_queries", 0) > 0, \
                result.config.server
            assert counters.get("resilience.hedges", 0) > 0, \
                result.config.server


def _attribution_grid(seed=11):
    """Rack-fault grid with ``hedge_policy="attribution"``: the
    per-(shard, replica) digest feeds per-shard hedge delays, layered
    on routing, failover, and backoff jitter."""
    faults = FaultConfig(rack_slow_racks=1, rack_slow_factor=100.0,
                         rack_slow_mean_on=0.15, rack_slow_mean_off=0.15)
    resilience = ResilienceConfig(subquery_deadline=5e-3, max_retries=2,
                                  backoff_base=0.5e-3, backoff_cap=2e-3,
                                  hedge_percentile=95.0,
                                  hedge_min_samples=50,
                                  hedge_policy="attribution",
                                  digest_min_samples=16)
    return [ExperimentConfig(server=server, concurrency=16, fanout=5,
                             response_size=100, warmup=0.2, duration=0.5,
                             seed=seed, faults=faults,
                             resilience=resilience, replicas_per_shard=2,
                             racks=2, replica_policy="least_outstanding")
            for server in ("doubleface", "netty", "aio")]


class TestAttributionDeterminism:
    def test_attribution_grid_shm_parallel_equals_serial(self):
        """The attribution digest is plain float arithmetic on the
        winning attempts' wire stamps — no RNG, no wall clock — so
        jobs=1 and jobs=4 over the shm columnar transport stay
        float-identical, learned per-shard delays included."""
        serial = run_experiments(_attribution_grid(), jobs=1)
        parallel = run_experiments(_attribution_grid(), jobs=4,
                                   transport="shm")
        for ours, theirs in zip(serial, parallel):
            assert dataclasses.asdict(ours) == dataclasses.asdict(theirs)

    def test_attribution_engages_and_exports_delays(self):
        # Not vacuous: hedges fired, and the digest converged enough to
        # export per-shard delays through the result.
        (result,) = run_experiments(_attribution_grid()[:1], jobs=1)
        assert result.fault_counters.get("resilience.hedges", 0) > 0
        assert result.hedge_delays
        assert all(delay > 0 for delay in result.hedge_delays.values())

    def test_adaptive_hedge_exhibit_parallel_equals_serial(self):
        serial = run_exhibit("adaptive_hedge", quick=True, seed=42, jobs=1)
        parallel = run_exhibit("adaptive_hedge", quick=True, seed=42,
                               jobs=4, transport="shm")
        assert serial.text == parallel.text
        assert serial.data == parallel.data


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(concurrency=0),
        dict(concurrency=-4),
        dict(fanout=0),
        dict(response_size=0),
        dict(n_shards=0),
        dict(users=0),
        dict(think_time=0.0),
        dict(replicas_per_shard=0),
        dict(racks=0),
        dict(replica_policy="sticky"),
    ])
    def test_bad_shapes_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExperimentConfig(server="doubleface", **kwargs)

    def test_unknown_server_lists_valid_kinds(self):
        with pytest.raises(ValueError, match="valid:.*doubleface"):
            ExperimentConfig(server="tomcat")

    def test_unknown_replica_policy_lists_valid_policies(self):
        with pytest.raises(ValueError, match="least_outstanding"):
            ExperimentConfig(server="doubleface", replica_policy="sticky")
