"""Tests for the exhibit registry and the CLI plumbing.

Full exhibit runs live in ``benchmarks/``; here we verify the registry,
argument handling, and one fast exhibit end-to-end.
"""

import pytest

from repro.experiments.cli import build_parser, main
from repro.experiments.figures import EXHIBITS, run_exhibit, run_exhibits


class TestRegistry:
    def test_all_paper_exhibits_registered(self):
        expected = {"fig04", "fig05", "fig07", "fig09", "fig13", "fig14",
                    "fig15", "fig16", "fig17", "tab1", "tab2", "tab3",
                    "fault_tail", "hedging", "fault_open", "ewma_route",
                    "adaptive_hedge"}
        assert set(EXHIBITS) == expected

    def test_unknown_exhibit_rejected(self):
        with pytest.raises(KeyError):
            run_exhibit("fig99")


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.exhibit == "all"
        assert not args.full
        assert args.seed == 42
        assert args.jobs == 1

    def test_flags(self):
        args = build_parser().parse_args(
            ["--exhibit", "tab2", "--full", "--seed", "7", "--jobs", "4"])
        assert args.exhibit == "tab2"
        assert args.full
        assert args.seed == 7
        assert args.jobs == 4

    def test_unknown_exhibit_exit_code(self, capsys):
        assert main(["--exhibit", "nope"]) == 2

    def test_negative_jobs_exit_code(self, capsys):
        assert main(["--exhibit", "tab2", "--jobs", "-1"]) == 2

    def test_trace_defaults(self):
        args = build_parser().parse_args([])
        assert not args.trace
        assert args.trace_sample == 0.01
        assert args.trace_out is None

    def test_trace_flags(self):
        args = build_parser().parse_args(
            ["--trace", "--trace-sample", "0.25",
             "--trace-out", "/tmp/t.json"])
        assert args.trace
        assert args.trace_sample == 0.25
        assert args.trace_out == "/tmp/t.json"

    def test_bad_trace_sample_exit_code(self, capsys):
        assert main(["--exhibit", "tab2", "--trace",
                     "--trace-sample", "0"]) == 2
        assert main(["--exhibit", "tab2", "--trace",
                     "--trace-sample", "1.5"]) == 2

    def test_trace_out_requires_trace(self, capsys):
        assert main(["--exhibit", "tab2", "--trace-out", "/tmp/t"]) == 2


class TestObservabilityFlags:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.flame_out is None
        assert not args.obs
        assert args.obs_period == 0.01
        assert args.prom_out is None

    def test_flags(self):
        args = build_parser().parse_args(
            ["--trace", "--flame-out", "/tmp/f.collapsed", "--obs",
             "--obs-period", "0.02", "--prom-out", "/tmp/p.txt"])
        assert args.flame_out == "/tmp/f.collapsed"
        assert args.obs
        assert args.obs_period == 0.02
        assert args.prom_out == "/tmp/p.txt"

    def test_flame_out_requires_trace(self, capsys):
        assert main(["--exhibit", "tab2",
                     "--flame-out", "/tmp/f"]) == 2

    def test_prom_out_requires_obs(self, capsys):
        assert main(["--exhibit", "tab2", "--prom-out", "/tmp/p"]) == 2

    def test_bad_obs_period_exit_code(self, capsys):
        assert main(["--exhibit", "tab2", "--obs",
                     "--obs-period", "0"]) == 2
        assert main(["--exhibit", "tab2", "--obs",
                     "--obs-period", "-0.5"]) == 2

    def test_artifacts_written_with_parent_dirs(self, tmp_path, capsys):
        """End to end: one observed exhibit, all three exporters, every
        output under a directory that does not exist yet — and each
        artifact passes its own schema validator."""
        from repro.trace.schema import check_path
        trace = tmp_path / "a" / "trace.json"
        flame = tmp_path / "b" / "flame.collapsed"
        prom = tmp_path / "c" / "prom.txt"
        code = main(["--exhibit", "tab3", "--trace",
                     "--trace-sample", "0.5",
                     "--trace-out", str(trace),
                     "--flame-out", str(flame),
                     "--obs", "--prom-out", str(prom)])
        assert code == 0
        for path in (trace, flame, prom):
            assert path.is_file()
            check_path(str(path))
        out = capsys.readouterr().out
        assert "phase track" in out

    def test_unwritable_output_exits_1(self, tmp_path, capsys):
        """A plain file as a parent path component fails with a
        one-line error and exit code 1 (chmod tricks are useless when
        the suite runs as root, so use NotADirectoryError instead)."""
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        bad = blocker / "sub" / "trace.json"
        code = main(["--exhibit", "tab3", "--trace",
                     "--trace-sample", "0.5",
                     "--trace-out", str(bad)])
        assert code == 1
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert f"cannot write {bad}" in err


class TestExhibitRun:
    def test_tab3_end_to_end(self, capsys):
        """tab3 is a representative fast exhibit: run it and check both
        the rendered text and the structured data."""
        result = run_exhibit("tab3", quick=True)
        assert result.exhibit == "tab3"
        assert "Table 3" in result.text
        for case in ("OneCase", "TwoCase", "FourCase"):
            assert case in result.data
            assert result.data[case]["throughput"] > 0
        # The imbalance signature: OneCase is backend-starved (frontend
        # makes many more selects per event than the backend side).
        one = result.data["OneCase"]
        four = result.data["FourCase"]
        one_backend_eps = one["backend_events"] / max(one["backend_selects"], 1)
        four_backend_eps = (four["backend_events"]
                            / max(four["backend_selects"], 1))
        assert one_backend_eps > four_backend_eps

    def test_exhibit_parallel_matches_serial(self):
        """Same seed => identical exhibit (text and data) whether the
        grid runs serially or over worker processes."""
        serial = run_exhibit("tab2", quick=True, seed=42, jobs=1)
        parallel = run_exhibit("tab2", quick=True, seed=42, jobs=2)
        assert parallel.text == serial.text
        assert parallel.data == serial.data

    def test_interleaved_exhibits_match_standalone(self):
        """run_exhibits over one shared pool returns the same text and
        data as each exhibit run on its own."""
        batch = run_exhibits(["tab2", "tab3"], quick=True, seed=42, jobs=2)
        assert list(batch) == ["tab2", "tab3"]
        for name in ("tab2", "tab3"):
            alone = run_exhibit(name, quick=True, seed=42, jobs=1)
            assert batch[name].text == alone.text
            assert batch[name].data == alone.data

    def test_interleaved_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            run_exhibits(["tab2", "nope"], quick=True, jobs=2)

    def test_interleaved_poisoned_exhibit_fails_fast(self, monkeypatch):
        """An exhibit whose config blows up inside a worker must fail
        the whole batch with the original error chained — not hang the
        shared pool in close()/join() behind queued points."""
        from repro.experiments import figures
        from repro.experiments.config import ExperimentConfig

        def poisoned(quick=True, seed=42, jobs=1):
            config = ExperimentConfig(server="doubleface", concurrency=4,
                                      fanout=3, response_size=100,
                                      warmup=0.2, duration=0.4, seed=seed,
                                      params={"no_such_param": 1})
            figures._run_points([("only", config)], jobs)
            raise AssertionError("unreachable: the worker raised")

        monkeypatch.setitem(figures.EXHIBITS, "poisoned", poisoned)
        with pytest.raises(RuntimeError, match="poisoned") as excinfo:
            run_exhibits(["tab3", "poisoned"], quick=True, seed=42, jobs=2)
        assert isinstance(excinfo.value.__cause__, TypeError)
