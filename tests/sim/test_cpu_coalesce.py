"""Coalesced-stint scheduling must be invisible.

When a core starts a stint with an empty run queue, the scheduler
replaces per-quantum slice events with one completion event
(``Cpu(coalesce=True)``, the default).  The invariant is strict
equality, not approximation: every observable — completion instants,
context-switch counts, per-category busy seconds, the time-weighted
load integral, windowed shares — must be **float-for-float identical**
to the per-quantum schedule, at the end of the run *and* at any
observation instant in the middle of a coalesced stint.
"""

import random

from repro.sim.cpu import Cpu
from repro.sim.kernel import Simulator
from repro.sim.metrics import Metrics
from repro.sim.params import CostParams
from repro.sim.threads import SimThread

#: Default quantum is 1 ms; amounts below span 1..12 quanta.
Q = CostParams().quantum


def run_workload(script, cores=2, coalesce=True, probe_times=(),
                 window_at=None, use_execute_then=False):
    """Run *script* and capture every scheduler observable.

    *script* is one ``(start_delay, [(amount, category), ...])`` tuple
    per thread.  *probe_times* are instants at which mid-run state is
    sampled (hitting a coalesced stint mid-flight forces the deferred
    charges to commit).  *window_at* marks the measurement window at
    that instant, like the harness's warm-up cut.
    """
    sim = Simulator()
    metrics = Metrics()
    cpu = Cpu(sim, metrics, CostParams(), cores=cores, coalesce=coalesce)
    completions = []
    probes = []

    def runner(tid, start_delay, jobs):
        thread = SimThread(cpu)
        if start_delay:
            yield sim.timeout(start_delay)
        for jid, (amount, category) in enumerate(jobs):
            if use_execute_then:
                # Bridge the callback back to an awaitable event: the
                # callback fires at the same instant execute()'s event
                # would succeed, so submission times stay identical.
                from repro.sim.kernel import Event
                done = Event(sim)
                cpu.execute_then(thread, amount, category,
                                 lambda _: done.succeed(), None)
                yield done
            else:
                yield cpu.execute(thread, amount, category)
            completions.append((tid, jid, sim.now))

    for tid, (start_delay, jobs) in enumerate(script):
        sim.process(runner(tid, start_delay, jobs))

    def probe(_):
        acct = metrics.cpu
        probes.append((sim.now, acct.total_busy_ever,
                       dict(acct.busy_by_category),
                       cpu.load_snapshot(), cpu.runnable_count))

    for when in probe_times:
        sim.call_later(when, probe)
    if window_at is not None:
        sim.call_later(window_at,
                       lambda _: metrics.mark_window_start(sim.now))
    sim.run()
    acct = metrics.cpu
    return {
        "completions": completions,
        "probes": probes,
        "counters": metrics.counters,
        "busy": dict(acct.busy_by_category),
        "total_busy_ever": acct.total_busy_ever,
        "windowed": acct.windowed(),
        "load_integral": cpu.load_snapshot(),
        "end_time": sim.now,
    }


def assert_identical(script, **kw):
    """Assert the coalesced run equals the sliced run exactly."""
    sliced = run_workload(script, coalesce=False, **kw)
    coalesced = run_workload(script, coalesce=True, **kw)
    assert coalesced == sliced
    return coalesced


class TestScriptedIdentity:
    def test_single_long_job(self):
        result = assert_identical([(0.0, [(8 * Q, "app")])], cores=1)
        assert len(result["completions"]) == 1

    def test_sub_quantum_job_and_exact_quantum_job(self):
        assert_identical([(0.0, [(0.4 * Q, "app"), (Q, "app")])], cores=1)

    def test_parallel_uncontended_threads(self):
        assert_identical([(0.0, [(8 * Q, "app")]),
                          (0.0, [(11 * Q, "io")])], cores=2)

    def test_decoalesce_on_midstint_arrival(self):
        """A second thread waking mid-stint must tear the coalesced
        stint down and preempt on the original quantum boundary."""
        assert_identical([(0.0, [(10 * Q, "app")]),
                          (3.5 * Q, [(4 * Q, "app")])], cores=1)

    def test_decoalesce_then_recoalesce(self):
        """After the interloper finishes, the long job's next stint
        is uncontended again and re-coalesces."""
        assert_identical([(0.0, [(12 * Q, "app")]),
                          (2.3 * Q, [(0.5 * Q, "app")])], cores=1)

    def test_three_threads_two_cores_staggered(self):
        assert_identical([(0.0, [(6 * Q, "app"), (3 * Q, "app")]),
                          (0.7 * Q, [(9 * Q, "io")]),
                          (4.1 * Q, [(5 * Q, "app")])], cores=2)

    def test_back_to_back_jobs_same_thread(self):
        assert_identical([(0.0, [(3 * Q, "app"), (5 * Q, "io"),
                                 (2 * Q, "app")])], cores=1)

    def test_zero_amount_jobs_interleaved(self):
        assert_identical([(0.0, [(3 * Q, "app"), (0.0, "app"),
                                 (4 * Q, "app")]),
                          (1.2 * Q, [(0.0, "io"), (2 * Q, "io")])],
                         cores=1)


class TestMidStintObservation:
    def test_probes_inside_coalesced_stint(self):
        """Reads of busy time mid-stint commit the deferred slice
        charges — totals at each probe instant must match the sliced
        schedule's eagerly-charged totals."""
        result = assert_identical(
            [(0.0, [(10 * Q, "app")])], cores=1,
            probe_times=[1.5 * Q, 4.6 * Q, 7.25 * Q])
        assert len(result["probes"]) == 3
        # The probes really did observe partial progress.
        busies = [p[1] for p in result["probes"]]
        assert busies == sorted(busies)
        assert 0.0 < busies[0] < busies[-1] < 10 * Q

    def test_probes_with_two_cpus_interleaved_stints(self):
        assert_identical(
            [(0.0, [(9 * Q, "app")]), (0.25 * Q, [(7 * Q, "io")])],
            cores=2, probe_times=[2.45 * Q, 5.1 * Q])

    def test_window_mark_inside_stint(self):
        """The harness's warm-up cut can land mid-stint; windowed
        shares must still match the sliced schedule."""
        result = assert_identical(
            [(0.0, [(10 * Q, "app"), (4 * Q, "app")])], cores=1,
            window_at=6.5 * Q)
        assert result["windowed"]["app"] < result["busy"]["app"]


class TestExecuteThen:
    def test_callback_fires_at_slice_schedule_instant(self):
        assert_identical([(0.0, [(8 * Q, "app")])], cores=1,
                         use_execute_then=True)

    def test_execute_then_matches_execute_accounting(self):
        script = [(0.0, [(6 * Q, "app"), (3 * Q, "io")]),
                  (1.1 * Q, [(5 * Q, "app")])]
        via_event = run_workload(script, cores=1, coalesce=True)
        via_callback = run_workload(script, cores=1, coalesce=True,
                                    use_execute_then=True)
        assert via_callback == via_event

    def test_pure_charge_without_callback(self):
        sim = Simulator()
        metrics = Metrics()
        cpu = Cpu(sim, metrics, CostParams(), cores=1)
        cpu.execute_then(SimThread(cpu), 3 * Q, "app")
        sim.run()
        assert metrics.cpu.busy_by_category["app"] == 3 * Q


class TestZeroFastPath:
    def _run(self, with_zeros):
        sim = Simulator()
        metrics = Metrics()
        cpu = Cpu(sim, metrics, CostParams(), cores=1)
        thread = SimThread(cpu)

        def proc():
            yield cpu.execute(thread, 2 * Q, "app")
            if with_zeros:
                for _ in range(50):
                    yield cpu.execute(thread, 0.0, "app")
            yield cpu.execute(thread, 3 * Q, "app")

        sim.process(proc())
        sim.run()
        return sim, metrics, cpu

    def test_zero_work_leaves_accounting_unchanged(self):
        """Zero-length executes between real jobs must not add context
        switches, busy time, or load-integral area."""
        _, m_plain, cpu_plain = self._run(with_zeros=False)
        _, m_zeros, cpu_zeros = self._run(with_zeros=True)
        assert m_zeros.counters == m_plain.counters
        assert dict(m_zeros.cpu.busy_by_category) == \
            dict(m_plain.cpu.busy_by_category)
        assert cpu_zeros.load_snapshot() == cpu_plain.load_snapshot()

    def test_zero_work_same_instant(self):
        sim = Simulator()
        metrics = Metrics()
        cpu = Cpu(sim, metrics, CostParams(), cores=1)
        thread = SimThread(cpu)
        instants = []

        def proc():
            yield cpu.execute(thread, 0.0, "app")
            instants.append(sim.now)

        sim.process(proc())
        sim.run()
        assert instants == [0.0]

    def test_fall_through_when_core_owes_a_switch(self):
        """When the only idle core last ran another thread, the zero
        execute takes the scheduled path and pays the context switch,
        exactly as before the fast path existed."""
        sim = Simulator()
        metrics = Metrics()
        cpu = Cpu(sim, metrics, CostParams(), cores=1)
        a, b = SimThread(cpu), SimThread(cpu)
        done = []

        def warm():
            yield cpu.execute(a, Q, "app")
            done.append("a")

        def zero():
            yield sim.timeout(2 * Q)  # after A finished: core.last_thread is A
            yield cpu.execute(b, 0.0, "app")
            done.append("b")

        sim.process(warm())
        sim.process(zero())
        sim.run()
        assert done == ["a", "b"]
        assert metrics.counters["cpu.app.ctx_switches"] == 1.0
        assert metrics.cpu.busy_by_category["ctx_switch"] > 0.0


class TestRandomizedIdentity:
    def test_random_workloads_match_slice_for_slice(self):
        """Fuzz the schedule space: random thread counts, stagger,
        core counts, categories, and amounts spanning zero, sub-, and
        multi-quantum jobs.  Every draw must be float-identical."""
        for seed in range(12):
            rng = random.Random(1000 + seed)
            cores = rng.randint(1, 3)
            script = []
            for _ in range(rng.randint(1, 5)):
                jobs = []
                for _ in range(rng.randint(1, 4)):
                    kind = rng.random()
                    if kind < 0.15:
                        amount = 0.0
                    elif kind < 0.45:
                        amount = rng.uniform(0.05, 0.999) * Q
                    else:
                        amount = rng.uniform(1.0, 12.0) * Q
                    jobs.append((amount, rng.choice(["app", "io"])))
                script.append((rng.uniform(0.0, 6.0) * Q, jobs))
            probe_times = sorted(rng.uniform(0.5, 15.0) * Q
                                 for _ in range(3))
            assert_identical(script, cores=cores, probe_times=probe_times)
