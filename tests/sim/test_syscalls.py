"""Unit tests for the selector (select()/epoll) model."""

import pytest

from repro.sim.cpu import Cpu
from repro.sim.kernel import Simulator
from repro.sim.metrics import Metrics
from repro.sim.params import CostParams
from repro.sim.syscalls import Selector
from repro.sim.threads import SimThread


@pytest.fixture
def env():
    sim = Simulator()
    metrics = Metrics()
    params = CostParams().with_overrides(app_cores=1)
    cpu = Cpu(sim, metrics, params)
    selector = Selector(sim, cpu, metrics, params, "sel")
    thread = SimThread(cpu, "reactor")
    return sim, metrics, params, cpu, selector, thread


class TestSelect:
    def test_returns_pending_events_immediately(self, env):
        sim, metrics, _p, _cpu, selector, thread = env
        ch = selector.open_channel("upstream")
        ch.deliver("a")
        ch.deliver("b")

        def proc():
            batch = yield from selector.select(thread)
            return batch

        p = sim.process(proc())
        sim.run()
        assert [msg for _c, msg in p.value] == ["a", "b"]

    def test_blocks_until_delivery(self, env):
        sim, _m, _p, _cpu, selector, thread = env
        ch = selector.open_channel("downstream")

        def producer():
            yield sim.timeout(1.0)
            ch.deliver("late")

        def proc():
            batch = yield from selector.select(thread)
            return (sim.now, [m for _c, m in batch])

        p = sim.process(proc())
        sim.process(producer())
        sim.run()
        when, msgs = p.value
        assert msgs == ["late"]
        assert when >= 1.0

    def test_timeout_returns_empty_and_counts_spurious(self, env):
        sim, metrics, _p, _cpu, selector, thread = env

        def proc():
            batch = yield from selector.select(thread, timeout=0.01)
            return batch

        p = sim.process(proc())
        sim.run()
        assert p.value == []
        assert metrics.raw_count("selector.sel.spurious") == 1

    def test_batch_accumulates_while_reactor_busy(self, env):
        sim, _m, _p, cpu, selector, thread = env
        ch = selector.open_channel("downstream")
        batches = []

        def producer():
            for i in range(6):
                yield sim.timeout(0.001)
                ch.deliver(i)

        def reactor():
            got = 0
            while got < 6:
                batch = yield from selector.select(thread)
                batches.append(len(batch))
                got += len(batch)
                # Long processing lets events pile up for the next select.
                yield cpu.execute(thread, 0.003)

        sim.process(producer())
        sim.process(reactor())
        sim.run()
        assert sum(batches) == 6
        assert max(batches) > 1  # batching happened

    def test_select_charges_cpu(self, env):
        sim, metrics, params, _cpu, selector, thread = env
        ch = selector.open_channel("upstream")
        ch.deliver("x")

        def proc():
            yield from selector.select(thread)

        sim.process(proc())
        sim.run()
        expected = params.select_base_cost + params.select_per_event_cost
        assert metrics.cpu.busy_by_category["select"] == pytest.approx(expected)

    def test_netty_style_probe_counts_extra_select(self, env):
        """A finite-timeout select that has to wait issues a selectNow
        probe first: two syscalls for one wake-up."""
        sim, metrics, _p, _cpu, selector, thread = env
        ch = selector.open_channel("downstream")

        def producer():
            yield sim.timeout(0.001)
            ch.deliver("x")

        def proc():
            batch = yield from selector.select(thread, timeout=1.0)
            return batch

        p = sim.process(proc())
        sim.process(producer())
        sim.run()
        assert len(p.value) == 1
        assert metrics.raw_count("selector.sel.selects") == 2  # probe + real


class TestPost:
    def test_post_delivers_task_event(self, env):
        sim, metrics, _p, _cpu, selector, thread = env
        other = SimThread(thread.cpu, "poster")

        def poster():
            yield from selector.post(other, "job")

        def proc():
            batch = yield from selector.select(thread)
            channel, msg = batch[0]
            return (channel.kind, msg)

        p = sim.process(proc())
        sim.process(poster())
        sim.run()
        assert p.value == ("task", "job")
        assert metrics.raw_count("selector.sel.wakeups") == 1

    def test_post_without_thread_skips_charge(self, env):
        sim, metrics, _p, _cpu, selector, thread = env

        def poster():
            yield from selector.post(None, "job")

        sim.process(poster())
        sim.run()
        assert metrics.cpu.busy_by_category.get("syscall", 0.0) == 0.0


class TestStats:
    def test_events_per_select(self, env):
        sim, _m, _p, _cpu, selector, thread = env
        ch = selector.open_channel("upstream")
        for i in range(4):
            ch.deliver(i)

        def proc():
            yield from selector.select(thread)

        sim.process(proc())
        sim.run()
        stats = selector.stats()
        assert stats["selects"] == 1
        assert stats["events"] == 4
        assert stats["events_per_select"] == pytest.approx(4.0)

    def test_stats_zero_division_safe(self, env):
        _sim, _m, _p, _cpu, selector, _t = env
        assert selector.stats()["events_per_select"] == 0.0
