"""Unit tests for metrics: counters, latency recorders, CPU accounting."""

import math
import random

import pytest
from hypothesis import given, strategies as st

from repro.sim.metrics import (SKETCH_PERCENTILES, CpuAccounting,
                               LatencyRecorder, Metrics, TimeSeries)


class TestLatencyRecorder:
    def test_empty_is_nan(self):
        r = LatencyRecorder()
        assert math.isnan(r.percentile(99.0))
        assert math.isnan(r.mean())
        assert math.isnan(r.maximum())

    def test_single_sample(self):
        r = LatencyRecorder()
        r.record(0.0, 5.0)
        assert r.percentile(0.0) == 5.0
        assert r.percentile(100.0) == 5.0
        assert r.mean() == 5.0

    def test_median_interpolates(self):
        r = LatencyRecorder()
        for v in (1.0, 2.0, 3.0, 4.0):
            r.record(0.0, v)
        assert r.percentile(50.0) == pytest.approx(2.5)

    def test_out_of_range_rejected(self):
        r = LatencyRecorder()
        r.record(0.0, 1.0)
        with pytest.raises(ValueError):
            r.percentile(101.0)

    def test_window_excludes_warmup(self):
        r = LatencyRecorder()
        r.record(0.5, 100.0)  # warm-up sample
        r.record(1.5, 1.0)
        r.start_at = 1.0
        assert len(r) == 1
        assert r.maximum() == 1.0
        assert r.raw_count == 2

    def test_cdf_points(self):
        r = LatencyRecorder()
        for v in range(1, 101):
            r.record(0.0, float(v))
        points = r.cdf_points([50.0, 99.0])
        assert points[0][0] == 50.0
        assert points[0][1] == pytest.approx(50.5)
        assert points[1][1] == pytest.approx(99.01)

    def test_sorted_window_is_cached_across_queries(self):
        r = LatencyRecorder()
        for v in (3.0, 1.0, 2.0):
            r.record(0.0, v)
        first = r._window_sorted()
        assert first == [1.0, 2.0, 3.0]
        # No new samples, no window move: the same list object serves
        # every percentile/mean/len query.
        assert r._window_sorted() is first

    def test_cache_invalidated_by_record(self):
        r = LatencyRecorder()
        r.record(0.0, 5.0)
        assert r.percentile(100.0) == 5.0
        r.record(0.0, 9.0)
        assert r.percentile(100.0) == 9.0
        assert r.mean() == pytest.approx(7.0)
        assert len(r) == 2

    def test_cache_invalidated_by_start_at_change(self):
        r = LatencyRecorder()
        r.record(0.5, 100.0)
        r.record(1.5, 1.0)
        assert r.maximum() == 100.0
        r.start_at = 1.0
        assert r.maximum() == 1.0
        assert len(r) == 1
        r.start_at = 0.0
        assert len(r) == 2

    def test_aggregates_agree_with_uncached_reference(self):
        r = LatencyRecorder()
        samples = [(0.1 * i, float((7 * i) % 13)) for i in range(50)]
        for t, v in samples:
            r.record(t, v)
        r.start_at = 2.0
        reference = [v for (t, v) in samples if t >= 2.0]
        assert len(r) == len(reference)
        assert r.mean() == pytest.approx(sum(reference) / len(reference))
        assert r.maximum() == max(reference)


class TestColumnarBuffers:
    """The array-backed storage behind LatencyRecorder/TimeSeries: the
    columnar views must cut the same window the scalar queries do."""

    def test_window_columns_arrival_order(self):
        r = LatencyRecorder()
        for t, v in ((0.5, 9.0), (1.5, 3.0), (2.5, 1.0), (3.5, 2.0)):
            r.record(t, v)
        r.start_at = 1.0
        times, values = r.window_columns()
        assert list(times) == [1.5, 2.5, 3.5]
        assert list(values) == [3.0, 1.0, 2.0]

    def test_window_columns_empty(self):
        times, values = LatencyRecorder().window_columns()
        assert len(times) == 0 and len(values) == 0

    def test_window_columns_sketch_stores_nothing(self):
        r = LatencyRecorder(sketch=True)
        for i in range(100):
            r.record(float(i), 1.0)
        times, values = r.window_columns()
        assert len(times) == 0 and len(values) == 0

    def test_non_monotone_record_falls_back_to_scan(self):
        """Hand-built recorders may append out of time order; the
        bisect window cut only holds for monotone times, so the
        recorder must detect the disorder and still answer every
        query from a full scan."""
        r = LatencyRecorder()
        samples = [(3.0, 30.0), (1.0, 10.0), (4.0, 40.0), (2.0, 20.0)]
        for t, v in samples:
            r.record(t, v)
        r.start_at = 2.0
        reference = sorted(v for (t, v) in samples if t >= 2.0)
        assert r._window_sorted() == reference
        assert len(r) == 3
        assert r.maximum() == 40.0
        assert r.mean() == pytest.approx(sum(reference) / 3)
        times, values = r.window_columns()
        assert list(zip(times, values)) == [(3.0, 30.0), (4.0, 40.0),
                                            (2.0, 20.0)]

    def test_cdf_points_sketch_close_to_exact(self):
        """Sketch-mode cdf_points tracks the exact recorder's curve
        within tolerance (the quick-exhibit memory-bound path)."""
        rng = random.Random(3)
        values = [rng.lognormvariate(0.0, 1.0) for _ in range(20000)]
        exact = LatencyRecorder()
        sketch = LatencyRecorder(sketch=True)
        for i, v in enumerate(values):
            exact.record(float(i), v)
            sketch.record(float(i), v)
        for (q, want), (q2, got) in zip(exact.cdf_points(SKETCH_PERCENTILES),
                                        sketch.cdf_points(SKETCH_PERCENTILES)):
            assert q == q2
            tol = 0.15 if q >= 99.9 else 0.05
            assert got == pytest.approx(want, rel=tol), f"p{q}"


class TestTimeSeries:
    def test_append_and_window(self):
        ts = TimeSeries()
        for t in range(5):
            ts.append(float(t), float(t * 10))
        assert len(ts) == 5
        assert ts.window(1.0, 3.0) == [(1.0, 10.0), (2.0, 20.0)]

    def test_window_out_of_window_edges(self):
        """Regression for the bisect cut: boundaries are start <= t <
        end, and windows entirely before/after the data are empty
        rather than wrapping or raising."""
        ts = TimeSeries()
        for t in (1.0, 2.0, 3.0):
            ts.append(t, t * 10)
        assert ts.window(0.0, 0.5) == []
        assert ts.window(3.5, 9.0) == []
        assert ts.window(2.0, 2.0) == []
        assert ts.window(1.0, 3.0) == [(1.0, 10.0), (2.0, 20.0)]
        assert ts.window(0.0, 99.0) == [(1.0, 10.0), (2.0, 20.0),
                                        (3.0, 30.0)]

    def test_columns_match_window(self):
        ts = TimeSeries()
        for t in range(5):
            ts.append(float(t), float(t * 10))
        times, values = ts.columns(1.0, 3.0)
        assert list(zip(times, values)) == ts.window(1.0, 3.0)
        all_times, all_values = ts.columns()
        assert len(all_times) == len(ts) == len(all_values)

    def test_out_of_order_rejected(self):
        ts = TimeSeries()
        ts.append(1.0, 1.0)
        with pytest.raises(ValueError):
            ts.append(0.5, 2.0)

    def test_mean(self):
        ts = TimeSeries()
        ts.append(0.0, 2.0)
        ts.append(1.0, 4.0)
        assert ts.mean() == pytest.approx(3.0)
        assert math.isnan(ts.mean(10.0, 20.0))


class TestCpuAccounting:
    def test_charge_and_shares(self):
        cpu = CpuAccounting()
        cpu.charge("app", 0.7)
        cpu.charge("select", 0.3)
        assert cpu.total_busy() == pytest.approx(1.0)
        assert cpu.category_share("select") == pytest.approx(0.3)

    def test_negative_charge_rejected(self):
        cpu = CpuAccounting()
        with pytest.raises(ValueError):
            cpu.charge("app", -1.0)

    def test_window_subtraction(self):
        cpu = CpuAccounting()
        cpu.charge("app", 1.0)
        cpu.mark_window_start(10.0)
        cpu.charge("app", 0.5)
        assert cpu.windowed()["app"] == pytest.approx(0.5)

    def test_utilization(self):
        cpu = CpuAccounting()
        cpu.mark_window_start(0.0)
        cpu.charge("app", 1.0)
        assert cpu.utilization(2.0, cores=1) == pytest.approx(0.5)
        assert cpu.utilization(2.0, cores=2) == pytest.approx(0.25)

    def test_utilization_empty_window(self):
        cpu = CpuAccounting()
        cpu.mark_window_start(5.0)
        assert cpu.utilization(5.0, cores=1) == 0.0

    def test_share_of_empty_is_zero(self):
        cpu = CpuAccounting()
        assert cpu.category_share("app") == 0.0

    def test_total_busy_ever_monotone(self):
        cpu = CpuAccounting()
        cpu.charge("a", 1.0)
        first = cpu.total_busy_ever
        cpu.charge("b", 2.0)
        assert cpu.total_busy_ever == pytest.approx(first + 2.0)


class TestMetrics:
    def test_counters_window(self):
        m = Metrics()
        m.add("x", 5)
        m.mark_window_start(1.0)
        m.add("x", 3)
        assert m.count("x") == 3
        assert m.raw_count("x") == 8

    def test_rate(self):
        m = Metrics()
        m.mark_window_start(1.0)
        m.add("done", 10)
        assert m.rate("done", 3.0) == pytest.approx(5.0)
        assert m.rate("done", 1.0) == 0.0

    def test_latency_inherits_window(self):
        m = Metrics()
        m.mark_window_start(2.0)
        recorder = m.latency("rt")
        recorder.record(1.0, 99.0)
        recorder.record(3.0, 1.0)
        assert len(recorder) == 1

    def test_mark_window_resets_existing_recorders(self):
        m = Metrics()
        recorder = m.latency("rt")
        recorder.record(0.5, 10.0)
        m.mark_window_start(1.0)
        assert len(recorder) == 0

    def test_timeseries_identity(self):
        m = Metrics()
        assert m.timeseries("a") is m.timeseries("a")
        assert m.timeseries("a") is not m.timeseries("b")


@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
                min_size=1, max_size=200))
def test_percentile_bounds_and_monotonicity(values):
    """Property: percentiles lie within [min, max] and are monotone in q."""
    r = LatencyRecorder()
    for v in values:
        r.record(0.0, v)
    qs = [0.0, 10.0, 50.0, 90.0, 99.0, 100.0]
    ps = [r.percentile(q) for q in qs]
    assert ps == sorted(ps)
    assert ps[0] == pytest.approx(min(values))
    assert ps[-1] == pytest.approx(max(values))


@given(st.lists(st.tuples(st.sampled_from(["a", "b", "c"]),
                          st.floats(min_value=0, max_value=1,
                                    allow_nan=False)),
                min_size=1, max_size=100))
def test_cpu_shares_sum_to_one(charges):
    """Property: category shares always sum to 1 when anything was
    charged."""
    cpu = CpuAccounting()
    for cat, amount in charges:
        cpu.charge(cat, amount)
    if cpu.total_busy() > 0:
        total = sum(cpu.category_share(c) for c in ("a", "b", "c"))
        assert total == pytest.approx(1.0)


class TestLatencySketch:
    """P-squared sketch mode: bounded memory, estimates within
    tolerance of the exact recorder."""

    @staticmethod
    def _pair(values):
        exact = LatencyRecorder()
        sketch = LatencyRecorder(sketch=True)
        for i, v in enumerate(values):
            exact.record(float(i), v)
            sketch.record(float(i), v)
        return exact, sketch

    @staticmethod
    def _heavy_tail(n, seed=7):
        rng = random.Random(seed)
        return [rng.lognormvariate(0.0, 1.0) for _ in range(n)]

    def test_empty_is_nan(self):
        r = LatencyRecorder(sketch=True)
        assert math.isnan(r.percentile(99.0))
        assert math.isnan(r.mean())
        assert math.isnan(r.maximum())
        assert len(r) == 0

    def test_small_window_is_exact(self):
        """Below the seed-buffer size every query is answered exactly."""
        values = self._heavy_tail(50)
        exact, sketch = self._pair(values)
        for q in (0.0, 12.5, 50.0, 90.0, 99.9, 100.0):
            assert sketch.percentile(q) == pytest.approx(
                exact.percentile(q))

    def test_tracked_percentiles_within_tolerance(self):
        """20k heavy-tailed samples: every tracked percentile agrees
        with the exact recorder within a few percent."""
        values = self._heavy_tail(20000)
        exact, sketch = self._pair(values)
        for q in SKETCH_PERCENTILES:
            want = exact.percentile(q)
            got = sketch.percentile(q)
            tol = 0.15 if q >= 99.9 else 0.05
            assert got == pytest.approx(want, rel=tol), f"p{q}"

    def test_untracked_percentile_interpolates(self):
        values = self._heavy_tail(20000)
        exact, sketch = self._pair(values)
        # Untracked percentiles interpolate between tracked marks:
        # looser tolerance, but monotone and inside [min, max].
        qs = [0.0, 25.0, 60.0, 85.0, 97.0, 99.5, 100.0]
        ps = [sketch.percentile(q) for q in qs]
        assert ps == sorted(ps)
        assert ps[0] == pytest.approx(min(values))
        assert ps[-1] == pytest.approx(max(values))
        assert sketch.percentile(85.0) == pytest.approx(
            exact.percentile(85.0), rel=0.2)

    def test_mean_max_count_match_exact(self):
        values = self._heavy_tail(5000)
        exact, sketch = self._pair(values)
        assert len(sketch) == len(exact)
        assert sketch.mean() == pytest.approx(exact.mean())
        assert sketch.maximum() == exact.maximum()

    def test_stores_no_samples(self):
        _, sketch = self._pair(self._heavy_tail(5000))
        assert len(sketch._times) == 0
        assert len(sketch._values) == 0
        assert sketch.is_sketch

    def test_window_move_resets_sketch(self):
        """Moving start_at forward (the harness's warm-up cut) restarts
        the sketch; warm-up samples stop influencing estimates."""
        r = LatencyRecorder(sketch=True)
        for i in range(100):
            r.record(float(i), 1000.0)     # warm-up junk
        r.start_at = 100.0
        assert len(r) == 0
        for i in range(100, 200):
            r.record(float(i), 1.0)
        assert r.maximum() == 1.0
        assert r.percentile(50.0) == pytest.approx(1.0)
        assert r.raw_count == 200

    def test_record_before_window_ignored(self):
        r = LatencyRecorder(sketch=True)
        r.start_at = 10.0
        r.record(5.0, 99.0)
        assert len(r) == 0
        r.record(10.0, 2.0)
        assert len(r) == 1

    def test_metrics_flag_propagates(self):
        m = Metrics(latency_sketch=True)
        assert m.latency("rt").is_sketch
        assert not Metrics().latency("rt").is_sketch

    def test_cdf_points_sketch(self):
        _, sketch = self._pair(self._heavy_tail(2000))
        points = sketch.cdf_points(SKETCH_PERCENTILES)
        assert [q for q, _v in points] == list(SKETCH_PERCENTILES)
        vs = [v for _q, v in points]
        assert vs == sorted(vs)
