"""Unit tests for the CPU scheduler model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.cpu import Cpu
from repro.sim.kernel import Simulator
from repro.sim.metrics import Metrics
from repro.sim.params import CostParams
from repro.sim.threads import SimThread


def make_cpu(cores=1, **overrides):
    sim = Simulator()
    metrics = Metrics()
    params = CostParams().with_overrides(app_cores=cores, **overrides)
    cpu = Cpu(sim, metrics, params)
    return sim, metrics, cpu


class TestBasicExecution:
    def test_single_job_takes_its_duration(self):
        sim, _m, cpu = make_cpu()
        t = SimThread(cpu)

        def proc():
            yield cpu.execute(t, 0.005)
            return sim.now

        p = sim.process(proc())
        sim.run()
        assert p.value == pytest.approx(0.005)

    def test_zero_work_completes(self):
        sim, _m, cpu = make_cpu()
        t = SimThread(cpu)

        def proc():
            yield cpu.execute(t, 0.0)
            return "done"

        p = sim.process(proc())
        sim.run()
        assert p.value == "done"

    def test_negative_work_rejected(self):
        _sim, _m, cpu = make_cpu()
        t = SimThread(cpu)
        with pytest.raises(ValueError):
            cpu.execute(t, -1.0)

    def test_needs_at_least_one_core(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Cpu(sim, Metrics(), CostParams(), cores=0)

    def test_two_threads_share_one_core(self):
        sim, _m, cpu = make_cpu(cores=1, ctx_switch_cost=0.0,
                                ctx_cache_penalty=0.0,
                                resume_reload_fraction=0.0)
        a, b = SimThread(cpu, "a"), SimThread(cpu, "b")

        def proc(thread):
            yield cpu.execute(thread, 0.010)
            return sim.now

        pa = sim.process(proc(a))
        pb = sim.process(proc(b))
        sim.run()
        # Total work is 20 ms on one core; the later finisher ends at 20 ms.
        assert max(pa.value, pb.value) == pytest.approx(0.020)

    def test_two_threads_run_in_parallel_on_two_cores(self):
        sim, _m, cpu = make_cpu(cores=2)
        a, b = SimThread(cpu, "a"), SimThread(cpu, "b")

        def proc(thread):
            yield cpu.execute(thread, 0.010)
            return sim.now

        pa = sim.process(proc(a))
        pb = sim.process(proc(b))
        sim.run()
        assert pa.value == pytest.approx(0.010)
        assert pb.value == pytest.approx(0.010)


class TestContextSwitchAccounting:
    def test_continuation_does_not_switch(self):
        """A thread issuing back-to-back work keeps the core for free."""
        sim, m, cpu = make_cpu()
        t = SimThread(cpu)

        def proc():
            for _ in range(10):
                yield cpu.execute(t, 0.0001)

        sim.process(proc())
        sim.run()
        assert m.raw_count("cpu.app.ctx_switches") == 0

    def test_alternation_counts_switches(self):
        sim, m, cpu = make_cpu(cores=1)
        a, b = SimThread(cpu, "a"), SimThread(cpu, "b")

        def proc(thread, other_done):
            for _ in range(3):
                yield cpu.execute(thread, 0.002)  # 2 ms > quantum
            return True

        sim.process(proc(a, None))
        sim.process(proc(b, None))
        sim.run()
        assert m.raw_count("cpu.app.ctx_switches") > 0

    def test_switch_cost_charged_to_ctx_category(self):
        sim, m, cpu = make_cpu(cores=1, ctx_switch_cost=1e-6,
                               ctx_cache_penalty=0.0,
                               resume_reload_fraction=0.0)
        a, b = SimThread(cpu, "a"), SimThread(cpu, "b")

        def proc(thread):
            yield cpu.execute(thread, 0.003)

        sim.process(proc(a))
        sim.process(proc(b))
        sim.run()
        switches = m.raw_count("cpu.app.ctx_switches")
        assert m.cpu.busy_by_category["ctx_switch"] == pytest.approx(
            switches * 1e-6)

    def test_cache_penalty_grows_with_runnable_count(self):
        """More runnable threads -> costlier switches (Fig. 4 mechanism)."""
        def total_ctx_cpu(n_threads):
            sim, m, cpu = make_cpu(cores=1, ctx_switch_cost=1e-6,
                                   ctx_cache_penalty=50e-6,
                                   ctx_cache_threads=10)
            threads = [SimThread(cpu, f"t{i}") for i in range(n_threads)]

            def proc(thread):
                for _ in range(3):
                    yield cpu.execute(thread, 0.0015)

            for t in threads:
                sim.process(proc(t))
            sim.run()
            switches = m.raw_count("cpu.app.ctx_switches")
            return m.cpu.busy_by_category["ctx_switch"] / max(switches, 1)

        assert total_ctx_cpu(12) > total_ctx_cpu(2)


class TestFairnessAndLoad:
    def test_quantum_preemption_interleaves_long_jobs(self):
        sim, _m, cpu = make_cpu(cores=1, quantum=1e-3)
        a, b = SimThread(cpu, "a"), SimThread(cpu, "b")
        finish = {}

        def proc(name, thread):
            yield cpu.execute(thread, 0.005)
            finish[name] = sim.now

        sim.process(proc("a", a))
        sim.process(proc("b", b))
        sim.run()
        # With preemptive sharing both finish near 10 ms; without it, one
        # would finish at 5 ms.
        assert finish["a"] > 0.008
        assert finish["b"] > 0.008

    def test_runnable_count_tracks_queue(self):
        sim, _m, cpu = make_cpu(cores=1)
        threads = [SimThread(cpu, f"t{i}") for i in range(5)]
        for t in threads:
            cpu.execute(t, 0.010)
        assert cpu.runnable_count == 5
        sim.run()
        assert cpu.runnable_count == 0

    def test_load_snapshot_monotone(self):
        sim, _m, cpu = make_cpu()
        t = SimThread(cpu)
        cpu.execute(t, 0.010)
        sim.run(until=0.005)
        first = cpu.load_snapshot()
        sim.run(until=0.006)
        second = cpu.load_snapshot()
        assert second >= first

    def test_utilization_full_when_saturated(self):
        sim, m, cpu = make_cpu(cores=1)
        t = SimThread(cpu)
        cpu.execute(t, 1.0)
        m.mark_window_start(0.0)
        sim.run(until=0.5)
        assert cpu.utilization() == pytest.approx(1.0, abs=0.01)

    def test_work_conserving_across_cores(self):
        """No core idles while the run queue is non-empty."""
        sim, m, cpu = make_cpu(cores=2, ctx_switch_cost=0.0,
                               ctx_cache_penalty=0.0,
                               resume_reload_fraction=0.0)
        threads = [SimThread(cpu, f"t{i}") for i in range(4)]
        for t in threads:
            cpu.execute(t, 0.010)
        m.mark_window_start(0.0)
        sim.run()
        # 40 ms of work over 2 cores = done at 20 ms, 100% busy.
        assert sim.now == pytest.approx(0.020)


@settings(deadline=None, max_examples=30)
@given(st.lists(st.floats(min_value=1e-6, max_value=5e-3, allow_nan=False),
                min_size=1, max_size=20),
       st.integers(min_value=1, max_value=4))
def test_cpu_conserves_work(amounts, cores):
    """Property: total charged CPU equals total requested work (plus
    explicit switch overhead), and every job completes."""
    sim = Simulator()
    metrics = Metrics()
    params = CostParams().with_overrides(app_cores=cores)
    cpu = Cpu(sim, metrics, params)
    done = []
    for i, amount in enumerate(amounts):
        t = SimThread(cpu, f"t{i}")
        ev = cpu.execute(t, amount)
        ev.add_callback(lambda e: done.append(1))
    sim.run()
    assert len(done) == len(amounts)
    busy = metrics.cpu.busy_by_category
    useful = busy.get("app", 0.0)
    assert useful == pytest.approx(sum(amounts), rel=1e-9)
