"""Unit tests for connections and endpoints."""

import pytest

from repro.sim.cpu import Cpu
from repro.sim.kernel import Simulator
from repro.sim.metrics import Metrics
from repro.sim.network import Connection, InboxEndpoint, QueueEndpoint
from repro.sim.params import CostParams
from repro.sim.resources import Queue
from repro.sim.threads import SimThread


@pytest.fixture
def env():
    sim = Simulator()
    metrics = Metrics()
    params = CostParams().with_overrides(app_cores=1)
    cpu = Cpu(sim, metrics, params)
    return sim, metrics, params, cpu


class TestConnection:
    def test_delivery_latency_and_transfer(self, env):
        sim, metrics, params, cpu = env
        inbox = Queue(sim)
        conn = Connection(sim, metrics, params, latency=1e-3)
        conn.attach("b", QueueEndpoint(inbox))

        def proc():
            yield from conn.send(None, "hello", 125_000, to_side="b")
            msg = yield inbox.get()
            return (sim.now, msg)

        p = sim.process(proc())
        sim.run()
        when, msg = p.value
        assert msg == "hello"
        # 1 ms latency + 125 kB / 125 MB/s = 1 ms transfer.
        assert when == pytest.approx(2e-3)

    def test_send_charges_syscall(self, env):
        sim, metrics, params, cpu = env
        thread = SimThread(cpu)
        inbox = Queue(sim)
        conn = Connection(sim, metrics, params)
        conn.attach("b", QueueEndpoint(inbox))

        def proc():
            yield from conn.send(thread, "x", 10, to_side="b")

        sim.process(proc())
        sim.run()
        assert metrics.cpu.busy_by_category["syscall"] == pytest.approx(
            params.send_syscall_cost)

    def test_send_without_thread_is_free(self, env):
        sim, metrics, params, cpu = env
        inbox = Queue(sim)
        conn = Connection(sim, metrics, params)
        conn.attach("b", QueueEndpoint(inbox))

        def proc():
            yield from conn.send(None, "x", 10, to_side="b")

        sim.process(proc())
        sim.run()
        assert metrics.cpu.busy_by_category.get("syscall", 0.0) == 0.0

    def test_unattached_side_rejected(self, env):
        sim, metrics, params, _cpu = env
        conn = Connection(sim, metrics, params)

        def proc():
            yield from conn.send(None, "x", 10, to_side="a")

        sim.process(proc())
        with pytest.raises(RuntimeError, match="not attached"):
            sim.run()

    def test_bad_side_name_rejected(self, env):
        sim, metrics, params, _cpu = env
        conn = Connection(sim, metrics, params)
        with pytest.raises(ValueError):
            conn.attach("c", QueueEndpoint(Queue(sim)))

    def test_bidirectional(self, env):
        sim, metrics, params, _cpu = env
        qa, qb = Queue(sim), Queue(sim)
        conn = Connection(sim, metrics, params)
        conn.attach("a", QueueEndpoint(qa))
        conn.attach("b", QueueEndpoint(qb))

        def proc():
            yield from conn.send(None, "to-b", 10, to_side="b")
            yield from conn.send(None, "to-a", 10, to_side="a")
            got_b = yield qb.get()
            got_a = yield qa.get()
            return (got_a, got_b)

        p = sim.process(proc())
        sim.run()
        assert p.value == ("to-a", "to-b")

    def test_message_counters(self, env):
        sim, metrics, params, _cpu = env
        inbox = Queue(sim)
        conn = Connection(sim, metrics, params)
        conn.attach("b", QueueEndpoint(inbox))

        def proc():
            yield from conn.send(None, "x", 100, to_side="b")
            yield from conn.send(None, "y", 200, to_side="b")

        sim.process(proc())
        sim.run()
        assert metrics.raw_count("net.messages") == 2
        assert metrics.raw_count("net.bytes") == 300

    def test_in_order_delivery(self, env):
        sim, metrics, params, _cpu = env
        inbox = Queue(sim)
        conn = Connection(sim, metrics, params)
        conn.attach("b", QueueEndpoint(inbox))

        def proc():
            for i in range(5):
                yield from conn.send(None, i, 10, to_side="b")
            got = []
            for _ in range(5):
                got.append((yield inbox.get()))
            return got

        p = sim.process(proc())
        sim.run()
        assert p.value == [0, 1, 2, 3, 4]


class TestInboxEndpoint:
    def test_recv_returns_message_and_charges(self, env):
        sim, metrics, params, cpu = env
        thread = SimThread(cpu)
        inbox = InboxEndpoint(sim, cpu, params)
        inbox.deliver("msg")

        def proc():
            msg = yield from inbox.recv(thread)
            return msg

        p = sim.process(proc())
        sim.run()
        assert p.value == "msg"
        assert metrics.cpu.busy_by_category["syscall"] == pytest.approx(
            params.recv_syscall_cost)

    def test_blocking_recv_pays_wake_futex(self, env):
        sim, metrics, params, cpu = env
        thread = SimThread(cpu)
        inbox = InboxEndpoint(sim, cpu, params)

        def producer():
            yield sim.timeout(0.01)
            inbox.deliver("late")

        def proc():
            msg = yield from inbox.recv(thread)
            return msg

        p = sim.process(proc())
        sim.process(producer())
        sim.run()
        assert p.value == "late"
        assert metrics.cpu.busy_by_category["lock"] == pytest.approx(
            params.futex_cost)
        assert metrics.raw_count("net.blocking_recv_wakes") == 1

    def test_nonblocking_recv_skips_futex(self, env):
        sim, metrics, params, cpu = env
        thread = SimThread(cpu)
        inbox = InboxEndpoint(sim, cpu, params)
        inbox.deliver("ready")

        def proc():
            return (yield from inbox.recv(thread))

        sim.process(proc())
        sim.run()
        assert metrics.cpu.busy_by_category.get("lock", 0.0) == 0.0
