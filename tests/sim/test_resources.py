"""Unit tests for waitable queues and semaphores."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.kernel import Simulator
from repro.sim.resources import (Queue, QueueTimeout, Semaphore,
                                 queue_get_with_timeout)


@pytest.fixture
def sim():
    return Simulator()


class TestQueue:
    def test_put_then_get(self, sim):
        q = Queue(sim)
        q.put("x")
        ev = q.get()
        assert ev.triggered
        assert ev.value == "x"

    def test_get_blocks_until_put(self, sim):
        q = Queue(sim)

        def getter():
            value = yield q.get()
            return (sim.now, value)

        def putter():
            yield sim.timeout(1.0)
            q.put("late")

        p = sim.process(getter())
        sim.process(putter())
        sim.run()
        assert p.value == (1.0, "late")

    def test_fifo_item_order(self, sim):
        q = Queue(sim)
        for i in range(5):
            q.put(i)
        got = [q.get().value for _ in range(5)]
        assert got == [0, 1, 2, 3, 4]

    def test_fifo_waiter_order(self, sim):
        q = Queue(sim)
        results = []

        def getter(name):
            value = yield q.get()
            results.append((name, value))

        sim.process(getter("first"))
        sim.process(getter("second"))
        sim.run()
        q.put("a")
        q.put("b")
        sim.run()
        assert results == [("first", "a"), ("second", "b")]

    def test_lifo_waiter_order(self, sim):
        q = Queue(sim, wake_order="lifo")
        results = []

        def getter(name):
            value = yield q.get()
            results.append((name, value))

        sim.process(getter("old"))
        sim.process(getter("young"))
        sim.run()
        q.put("a")
        sim.run()
        assert results == [("young", "a")]

    def test_unknown_wake_order_rejected(self, sim):
        with pytest.raises(ValueError):
            Queue(sim, wake_order="random")

    def test_put_front(self, sim):
        q = Queue(sim)
        q.put(1)
        q.put_front(0)
        assert q.get().value == 0
        assert q.get().value == 1

    def test_drain(self, sim):
        q = Queue(sim)
        q.put(1)
        q.put(2)
        assert q.drain() == [1, 2]
        assert len(q) == 0

    def test_len_and_waiting(self, sim):
        q = Queue(sim)
        assert len(q) == 0
        q.get()  # now one waiter
        assert q.waiting == 1
        q.put("x")  # consumed by the waiter
        assert len(q) == 0
        assert q.waiting == 0


class TestQueueTimeout:
    def test_get_with_timeout_success(self, sim):
        q = Queue(sim)

        def proc():
            value = yield from queue_get_with_timeout(sim, q, 5.0)
            return value

        def putter():
            yield sim.timeout(1.0)
            q.put("in-time")

        p = sim.process(proc())
        sim.process(putter())
        sim.run()
        assert p.value == "in-time"

    def test_get_with_timeout_expires(self, sim):
        q = Queue(sim)

        def proc():
            try:
                yield from queue_get_with_timeout(sim, q, 1.0)
            except QueueTimeout:
                return "timed out"

        p = sim.process(proc())
        sim.run()
        assert p.value == "timed out"
        assert sim.now >= 1.0

    def test_item_not_lost_after_abandoned_getter(self, sim):
        q = Queue(sim)

        def loser():
            try:
                yield from queue_get_with_timeout(sim, q, 1.0)
            except QueueTimeout:
                return "lost"

        p = sim.process(loser())
        sim.run()
        assert p.value == "lost"
        # A put after the timeout must not vanish into the dead getter.
        q.put("survivor")
        ev = q.get()
        assert ev.triggered
        assert ev.value == "survivor"

    def test_immediate_item_wins(self, sim):
        q = Queue(sim)
        q.put("ready")

        def proc():
            value = yield from queue_get_with_timeout(sim, q, 1.0)
            return value

        p = sim.process(proc())
        sim.run()
        assert p.value == "ready"


class TestSemaphore:
    def test_initial_count(self, sim):
        s = Semaphore(sim, 2)
        assert s.count == 2
        with pytest.raises(ValueError):
            Semaphore(sim, -1)

    def test_acquire_release_cycle(self, sim):
        s = Semaphore(sim, 1)
        assert s.acquire().triggered
        assert s.count == 0
        s.release()
        assert s.count == 1

    def test_blocking_acquire(self, sim):
        s = Semaphore(sim, 1)
        order = []

        def holder():
            yield s.acquire()
            yield sim.timeout(1.0)
            order.append(("holder releases", sim.now))
            s.release()

        def waiter():
            yield s.acquire()
            order.append(("waiter acquired", sim.now))

        sim.process(holder())
        sim.process(waiter())
        sim.run()
        assert order == [("holder releases", 1.0), ("waiter acquired", 1.0)]

    def test_try_acquire(self, sim):
        s = Semaphore(sim, 1)
        assert s.try_acquire()
        assert not s.try_acquire()
        s.release()
        assert s.try_acquire()

    def test_waiting_count(self, sim):
        s = Semaphore(sim, 0)

        def waiter():
            yield s.acquire()

        sim.process(waiter())
        sim.run()
        assert s.waiting == 1


@given(st.lists(st.integers(), min_size=0, max_size=100))
def test_queue_preserves_all_items_in_order(items):
    """Property: what goes in comes out, once each, in FIFO order."""
    sim = Simulator()
    q = Queue(sim)
    for item in items:
        q.put(item)
    out = []
    while len(q):
        out.append(q.get().value)
    assert out == items


@given(st.integers(min_value=1, max_value=20),
       st.integers(min_value=1, max_value=40))
def test_semaphore_never_exceeds_capacity(capacity, n_procs):
    """Property: at most `capacity` holders at any instant."""
    sim = Simulator()
    sem = Semaphore(sim, capacity)
    holding = [0]
    peak = [0]

    def proc():
        yield sem.acquire()
        holding[0] += 1
        peak[0] = max(peak[0], holding[0])
        yield sim.timeout(1.0)
        holding[0] -= 1
        sem.release()

    for _ in range(n_procs):
        sim.process(proc())
    sim.run()
    assert peak[0] <= capacity
    assert holding[0] == 0
