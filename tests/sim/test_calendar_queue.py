"""Randomized equivalence tests for the calendar-queue scheduler.

The kernel's calendar queue (active list + bucket ring + far-heap
fallback + lazy cancellation) must dispatch in exactly the same
``(time, seq)`` total order as a plain binary heap.  These tests drive
~10k mixed schedule/cancel operations through the real
:class:`Simulator` and through a minimal reference heap model, and
assert identical dispatch order, dispatch times, and event counts.

The ``bucket_width`` parametrization forces every placement path:

- a tiny width sends nearly everything through the far-heap fallback
  (every delay is beyond one ring revolution),
- the default width exercises the bucket ring plus far overflow,
- a huge width keeps everything in the insort-active path (every delay
  maps to virtual bucket 0).
"""

import heapq
import random

import pytest

from repro.sim.kernel import CountdownLatch, SimulationError, Simulator

#: Widths covering the far-heap fallback, the bucket ring, and the
#: all-active paths (see module docstring).
WIDTHS = (1e-9, 1e-4, 1e6)


class ReferenceHeap:
    """The pre-calendar scheduler: one binary heap of (t, seq) entries,
    with the same lazy-cancellation contract (cancelled entries are
    skipped without counting)."""

    def __init__(self):
        self.heap = []
        self.seq = 0
        self.now = 0.0
        self.count = 0

    def schedule(self, delay, token):
        self.seq += 1
        entry = [self.now + delay, self.seq, token, True]
        heapq.heappush(self.heap, entry)
        return entry

    @staticmethod
    def cancel(entry):
        entry[3] = False

    def drain(self, trace):
        while self.heap:
            t, _seq, token, live = heapq.heappop(self.heap)
            if not live:
                continue
            self.now = t
            self.count += 1
            trace.append((t, token))


def _run_mixed_schedule(width, seed, ops):
    """Drive an identical randomized op sequence through both kernels
    and return (sim_trace, ref_trace, sim, ref)."""
    rng = random.Random(seed)
    sim = Simulator(bucket_width=width)
    ref = ReferenceHeap()
    sim_trace, ref_trace = [], []

    def observe(event):
        sim_trace.append((sim.now, event._value))

    timeouts = []  # (sim timeout, ref entry) still cancellable
    # Mixed delay bands: same-instant bursts, sub-bucket, multi-bucket,
    # and far-future entries, so every container sees traffic under
    # every width.
    bands = ((0.0, 0.0), (0.0, 5e-5), (0.0, 1e-2), (0.5, 2.0), (50.0, 90.0))
    for token in range(ops):
        action = rng.random()
        if action < 0.25 and timeouts:
            timeout, entry = timeouts.pop(rng.randrange(len(timeouts)))
            timeout.cancel()
            ref.cancel(entry)
            continue
        low, high = bands[rng.randrange(len(bands))]
        delay = rng.uniform(low, high)
        timeout = sim.timeout(delay, value=token)
        timeout.add_callback(observe)
        entry = ref.schedule(delay, token)
        timeouts.append((timeout, entry))

    sim.run()
    ref.drain(ref_trace)
    return sim_trace, ref_trace, sim, ref


@pytest.mark.parametrize("width", WIDTHS)
@pytest.mark.parametrize("seed", [1, 7, 2026])
def test_mixed_schedule_cancel_matches_reference_heap(width, seed):
    sim_trace, ref_trace, sim, ref = _run_mixed_schedule(width, seed, 3500)
    assert sim_trace == ref_trace
    assert sim._event_count == ref.count
    assert sim.now == ref.now


@pytest.mark.parametrize("width", WIDTHS)
def test_interleaved_run_and_schedule_matches_reference(width):
    """Schedule in phases with run(until=...) between them, so fresh
    entries land behind the consumed horizon (the insort-active path)
    as well as ahead of it."""
    rng = random.Random(99)
    sim = Simulator(bucket_width=width)
    ref = ReferenceHeap()
    sim_trace, ref_trace = [], []

    def observe(event):
        sim_trace.append((sim.now, event._value))

    token = 0
    for phase in range(8):
        for _ in range(300):
            delay = rng.choice((0.0, rng.uniform(0, 1e-3),
                                rng.uniform(0, 3.0)))
            sim.timeout(delay, value=token).add_callback(observe)
            ref.schedule(delay, token)
            token += 1
        bound = sim.now + rng.uniform(0.1, 1.0)
        sim.run(until=bound)
        while ref.heap and ref.heap[0][0] <= bound:
            t, _seq, tok, live = heapq.heappop(ref.heap)
            if not live:
                continue
            ref.now = t
            ref.count += 1
            ref_trace.append((t, tok))
        ref.now = bound
    sim.run()
    ref.drain(ref_trace)
    assert sim_trace == ref_trace
    assert sim._event_count == ref.count


@pytest.mark.parametrize("width", WIDTHS)
def test_resize_preserves_order_under_load(width):
    """Push enough entries to force grow and shrink resizes; order and
    counts must survive every re-placement."""
    sim = Simulator(bucket_width=width)
    fired = []
    total = 6000
    for i in range(total):
        # Spread over ~0.6 s, with ties every 10th entry.
        delay = (i // 10) * 1e-3
        sim.timeout(delay, value=i).add_callback(
            lambda e: fired.append((sim.now, e._value)))
    sim.run()
    assert fired == sorted(fired)
    assert [v for _t, v in fired] == sorted(
        range(total), key=lambda i: ((i // 10) * 1e-3, i))
    assert sim._event_count == total


def test_cancelled_head_does_not_advance_clock():
    sim = Simulator()
    first = sim.timeout(1.0)
    last = sim.timeout(2.0)
    first.cancel()
    sim.run()
    assert sim.now == 2.0
    assert not first.processed
    assert last.processed
    assert sim._event_count == 1


def test_cancel_after_fire_is_noop():
    sim = Simulator()
    timeout = sim.timeout(0.5)
    sim.run()
    assert timeout.processed
    timeout.cancel()  # must not raise or un-process
    assert timeout.processed


def test_cancelled_entries_are_invisible_to_peek():
    sim = Simulator()
    doomed = sim.timeout(1.0)
    sim.timeout(3.0)
    assert sim.peek() == 1.0
    doomed.cancel()
    assert sim.peek() == 3.0


class TestCountdownLatch:
    def test_counts_down_to_trigger(self):
        sim = Simulator()
        latch = sim.latch(3)
        for i in range(3):
            assert not latch.triggered
            assert latch.remaining == 3 - i
            latch.count_down()
        assert latch.triggered
        sim.run()
        assert latch.processed

    def test_zero_count_succeeds_immediately(self):
        sim = Simulator()
        latch = sim.latch(0)
        assert latch.triggered

    def test_negative_count_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            CountdownLatch(sim, -1)

    def test_overdraw_rejected(self):
        sim = Simulator()
        latch = sim.latch(1)
        latch.count_down()
        with pytest.raises(SimulationError):
            latch.count_down()

    def test_usable_as_event_callback(self):
        sim = Simulator()
        latch = sim.latch(2)
        done_at = []
        latch.add_callback(lambda e: done_at.append(sim.now))
        for delay in (1.0, 4.0):
            sim.timeout(delay).add_callback(latch.count_down)
        sim.run()
        assert done_at == [4.0]

    def test_fanout_join_with_call_later(self):
        sim = Simulator()

        def request(width):
            latch = sim.latch(width)
            for i in range(width):
                sim.call_later(0.001 * (i + 1), latch.count_down)
            yield latch
            return sim.now

        proc = sim.process(request(20))
        sim.run()
        assert proc.value == pytest.approx(0.020)


class TestCallLater:
    def test_fires_in_time_seq_order_with_timeouts(self):
        sim = Simulator()
        order = []
        sim.timeout(1.0).add_callback(lambda e: order.append("timeout"))
        sim.call_later(1.0, order.append, "call_later")
        sim.run()
        assert order == ["timeout", "call_later"]
        assert sim._event_count == 2

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.call_later(-0.1, lambda arg: None)

    def test_far_future_call(self):
        sim = Simulator()
        seen = []
        sim.call_later(1000.0, seen.append, 42)
        sim.run()
        assert seen == [42]
        assert sim.now == 1000.0
