"""Unit tests for threads, mutexes, and worker pools."""

import pytest

from repro.sim.cpu import Cpu
from repro.sim.kernel import Simulator
from repro.sim.metrics import Metrics
from repro.sim.params import CostParams
from repro.sim.threads import (FixedPool, Mutex, OnDemandPool, SimThread,
                               locked_section)


@pytest.fixture
def env():
    sim = Simulator()
    metrics = Metrics()
    params = CostParams().with_overrides(app_cores=2)
    cpu = Cpu(sim, metrics, params)
    return sim, metrics, params, cpu


class TestMutex:
    def test_uncontended_acquire_is_instant(self, env):
        sim, metrics, params, cpu = env
        m = Mutex(sim, cpu, metrics, params, "m")
        t = SimThread(cpu)

        def proc():
            yield from m.acquire(t)
            held_at = sim.now
            yield from m.release(t)
            return held_at

        p = sim.process(proc())
        sim.run()
        assert p.ok
        assert metrics.raw_count("mutex.m.contended") == 0

    def test_mutual_exclusion(self, env):
        sim, metrics, params, cpu = env
        m = Mutex(sim, cpu, metrics, params, "m")
        inside = [0]
        peak = [0]

        def proc(thread):
            yield from m.acquire(thread)
            inside[0] += 1
            peak[0] = max(peak[0], inside[0])
            yield sim.timeout(0.001)
            inside[0] -= 1
            yield from m.release(thread)

        for i in range(5):
            sim.process(proc(SimThread(cpu, f"t{i}")))
        sim.run()
        assert peak[0] == 1
        assert not m.locked

    def test_contention_counted_and_charged(self, env):
        sim, metrics, params, cpu = env
        m = Mutex(sim, cpu, metrics, params, "hot")

        def proc(thread):
            yield from m.acquire(thread)
            yield sim.timeout(0.01)
            yield from m.release(thread)

        sim.process(proc(SimThread(cpu, "a")))
        sim.process(proc(SimThread(cpu, "b")))
        sim.run()
        assert metrics.raw_count("mutex.hot.contended") == 1
        assert metrics.cpu.busy_by_category["lock"] > 0

    def test_release_by_non_owner_rejected(self, env):
        sim, metrics, params, cpu = env
        m = Mutex(sim, cpu, metrics, params, "m")
        a, b = SimThread(cpu, "a"), SimThread(cpu, "b")

        def proc():
            yield from m.acquire(a)
            yield from m.release(b)

        sim.process(proc())
        with pytest.raises(RuntimeError, match="released by"):
            sim.run()

    def test_locked_section_serialises_work(self, env):
        sim, metrics, params, cpu = env
        m = Mutex(sim, cpu, metrics, params, "m")
        finish = []

        def proc(thread):
            yield from locked_section(thread, m, 0.002)
            finish.append(sim.now)

        for i in range(3):
            sim.process(proc(SimThread(cpu, f"t{i}")))
        sim.run()
        # Three 2 ms critical sections cannot overlap.
        assert max(finish) >= 0.006 * 0.999


class TestFixedPool:
    def test_rejects_empty_pool(self, env):
        sim, metrics, params, cpu = env
        with pytest.raises(ValueError):
            FixedPool(sim, cpu, metrics, params, 0)

    def test_runs_submitted_tasks(self, env):
        sim, metrics, params, cpu = env
        pool = FixedPool(sim, cpu, metrics, params, 4, name="fp")
        submitter = SimThread(cpu, "sub")
        ran = []

        def make_task(i):
            def task(worker):
                yield worker.execute(0.0001)
                ran.append(i)
            return task

        def proc():
            for i in range(10):
                yield from pool.submit(submitter, make_task(i))

        sim.process(proc())
        sim.run()
        assert sorted(ran) == list(range(10))
        assert metrics.raw_count("pool.fp.completed") == 10

    def test_worker_count_is_static(self, env):
        sim, metrics, params, cpu = env
        pool = FixedPool(sim, cpu, metrics, params, 3, name="fp")
        assert pool.worker_count == 3
        sim.run(until=1.0)
        assert pool.worker_count == 3  # no termination, no spawn

    def test_parallelism_bounded_by_pool_size(self, env):
        sim, metrics, params, cpu = env
        pool = FixedPool(sim, cpu, metrics, params, 2, name="fp")
        submitter = SimThread(cpu, "sub")
        running = [0]
        peak = [0]

        def task(worker):
            running[0] += 1
            peak[0] = max(peak[0], running[0])
            yield sim.timeout(0.01)
            running[0] -= 1

        def proc():
            for _ in range(6):
                yield from pool.submit(submitter, task)

        sim.process(proc())
        sim.run()
        assert peak[0] <= 2


class TestOnDemandPool:
    def test_spawns_on_demand(self, env):
        sim, metrics, params, cpu = env
        pool = OnDemandPool(sim, cpu, metrics, params, max_size=8, name="od")
        submitter = SimThread(cpu, "sub")
        assert pool.worker_count == 0

        def task(worker):
            yield sim.timeout(0.005)

        def proc():
            for _ in range(3):
                yield from pool.submit(submitter, task)

        sim.process(proc())
        sim.run(until=0.004)
        assert pool.worker_count == 3
        assert metrics.raw_count("pool.od.spawned") == 3

    def test_spawn_charges_thread_init(self, env):
        sim, metrics, params, cpu = env
        pool = OnDemandPool(sim, cpu, metrics, params, max_size=8, name="od")
        submitter = SimThread(cpu, "sub")

        def task(worker):
            yield worker.execute(0.0001)

        def proc():
            yield from pool.submit(submitter, task)

        sim.process(proc())
        sim.run(until=0.01)
        assert metrics.cpu.busy_by_category["thread_init"] == pytest.approx(
            params.thread_spawn_cost)

    def test_idle_workers_terminate(self, env):
        sim, metrics, params, cpu = env
        pool = OnDemandPool(sim, cpu, metrics, params, max_size=8,
                            idle_timeout=0.01, name="od")
        submitter = SimThread(cpu, "sub")

        def task(worker):
            yield worker.execute(0.0001)

        def proc():
            yield from pool.submit(submitter, task)

        sim.process(proc())
        sim.run(until=1.0)
        assert pool.worker_count == 0
        assert metrics.raw_count("pool.od.terminated") == 1

    def test_max_size_respected(self, env):
        sim, metrics, params, cpu = env
        pool = OnDemandPool(sim, cpu, metrics, params, max_size=2, name="od")
        submitter = SimThread(cpu, "sub")

        def task(worker):
            yield sim.timeout(0.1)

        def proc():
            for _ in range(10):
                yield from pool.submit(submitter, task)

        sim.process(proc())
        sim.run(until=0.05)
        assert pool.worker_count == 2

    def test_idle_worker_reused_not_respawned(self, env):
        sim, metrics, params, cpu = env
        pool = OnDemandPool(sim, cpu, metrics, params, max_size=8,
                            idle_timeout=1.0, name="od")
        submitter = SimThread(cpu, "sub")

        def task(worker):
            yield worker.execute(0.0001)

        def proc():
            for _ in range(5):
                yield from pool.submit(submitter, task)
                yield sim.timeout(0.01)  # let the worker go idle again

        sim.process(proc())
        sim.run(until=0.2)
        assert metrics.raw_count("pool.od.spawned") == 1
        assert metrics.raw_count("pool.od.completed") == 5
