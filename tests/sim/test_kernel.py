"""Unit tests for the discrete-event simulation kernel."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.kernel import (AllOf, AnyOf, Event, Process, SimulationError,
                              Simulator, Timeout)


@pytest.fixture
def sim():
    return Simulator()


class TestEvent:
    def test_starts_pending(self, sim):
        ev = sim.event()
        assert not ev.triggered
        assert not ev.processed
        assert ev.value is None

    def test_succeed_carries_value(self, sim):
        ev = sim.event()
        ev.succeed(42)
        assert ev.triggered
        assert ev.value == 42
        assert ev.ok

    def test_double_trigger_rejected(self, sim):
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()
        with pytest.raises(SimulationError):
            ev.fail(RuntimeError("nope"))

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_fail_records_exception(self, sim):
        ev = sim.event()
        exc = ValueError("boom")
        ev.fail(exc)
        assert ev.triggered
        assert not ev.ok
        assert ev.exception is exc

    def test_callback_after_processed_runs_immediately(self, sim):
        ev = sim.event()
        ev.succeed(7)
        sim.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == [7]

    def test_callbacks_run_in_registration_order(self, sim):
        ev = sim.event()
        order = []
        ev.add_callback(lambda e: order.append(1))
        ev.add_callback(lambda e: order.append(2))
        ev.succeed()
        sim.run()
        assert order == [1, 2]


class TestTimeout:
    def test_fires_at_the_right_time(self, sim):
        times = []
        t = sim.timeout(1.5)
        t.add_callback(lambda e: times.append(sim.now))
        sim.run()
        assert times == [1.5]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-0.1)

    def test_timeout_value(self, sim):
        t = sim.timeout(0.1, value="done")
        sim.run()
        assert t.value == "done"

    def test_zero_delay_fires(self, sim):
        t = sim.timeout(0.0)
        sim.run()
        assert t.processed


class TestProcess:
    def test_return_value_becomes_event_value(self, sim):
        def proc():
            yield sim.timeout(1.0)
            return "finished"

        p = sim.process(proc())
        sim.run()
        assert p.ok
        assert p.value == "finished"
        assert not p.is_alive

    def test_receives_event_values(self, sim):
        def proc():
            value = yield sim.timeout(0.5, value="tick")
            return value

        p = sim.process(proc())
        sim.run()
        assert p.value == "tick"

    def test_processes_interleave_in_time_order(self, sim):
        trace = []

        def proc(name, delay):
            yield sim.timeout(delay)
            trace.append((name, sim.now))

        sim.process(proc("b", 2.0))
        sim.process(proc("a", 1.0))
        sim.run()
        assert trace == [("a", 1.0), ("b", 2.0)]

    def test_waiting_on_another_process(self, sim):
        def child():
            yield sim.timeout(1.0)
            return 99

        def parent():
            value = yield sim.process(child())
            return value + 1

        p = sim.process(parent())
        sim.run()
        assert p.value == 100

    def test_failure_propagates_to_waiter(self, sim):
        def child():
            yield sim.timeout(0.1)
            raise ValueError("child died")

        def parent():
            try:
                yield sim.process(child())
            except ValueError as exc:
                return f"caught {exc}"

        p = sim.process(parent())
        sim.run()
        assert p.value == "caught child died"

    def test_unobserved_failure_raises(self, sim):
        def proc():
            yield sim.timeout(0.1)
            raise RuntimeError("unobserved")

        sim.process(proc())
        with pytest.raises(RuntimeError, match="unobserved"):
            sim.run()

    def test_bad_yield_detected(self, sim):
        def proc():
            yield "not an event"

        sim.process(proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_yield_from_composition(self, sim):
        def helper():
            yield sim.timeout(0.5)
            return 10

        def proc():
            a = yield from helper()
            b = yield from helper()
            return a + b

        p = sim.process(proc())
        sim.run()
        assert p.value == 20
        assert sim.now == 1.0

    def test_requires_generator(self, sim):
        with pytest.raises(TypeError):
            Process(sim, lambda: None)


class TestAnyOfAllOf:
    def test_any_of_returns_first(self, sim):
        fast = sim.timeout(1.0, value="fast")
        slow = sim.timeout(2.0, value="slow")

        def proc():
            winner, value = yield sim.any_of([slow, fast])
            return value

        p = sim.process(proc())
        sim.run()
        assert p.value == "fast"
        assert sim.now == 2.0  # slow timeout still fires

    def test_any_of_empty_rejected(self, sim):
        with pytest.raises(ValueError):
            AnyOf(sim, [])

    def test_all_of_collects_in_order(self, sim):
        a = sim.timeout(2.0, value="a")
        b = sim.timeout(1.0, value="b")

        def proc():
            values = yield sim.all_of([a, b])
            return values

        p = sim.process(proc())
        sim.run()
        assert p.value == ["a", "b"]

    def test_all_of_empty_succeeds_immediately(self, sim):
        ev = AllOf(sim, [])
        sim.run()
        assert ev.ok
        assert ev.value == []

    def test_all_of_fails_on_child_failure(self, sim):
        good = sim.timeout(1.0)
        bad = sim.event()
        bad.fail(ValueError("bad child"))

        def proc():
            try:
                yield sim.all_of([good, bad])
            except ValueError:
                return "failed"

        p = sim.process(proc())
        sim.run()
        assert p.value == "failed"


class TestSimulatorRun:
    def test_run_until_advances_clock_exactly(self, sim):
        sim.timeout(0.25)
        sim.run(until=1.0)
        assert sim.now == 1.0

    def test_run_until_excludes_later_events(self, sim):
        seen = []
        t = sim.timeout(2.0)
        t.add_callback(lambda e: seen.append(sim.now))
        sim.run(until=1.0)
        assert seen == []
        sim.run(until=3.0)
        assert seen == [2.0]

    def test_run_until_past_rejected(self, sim):
        sim.run(until=1.0)
        with pytest.raises(ValueError):
            sim.run(until=0.5)

    def test_step_returns_false_when_empty(self, sim):
        assert sim.step() is False

    def test_peek(self, sim):
        assert sim.peek() is None
        sim.timeout(3.0)
        assert sim.peek() == 3.0

    def test_fifo_tie_break_is_deterministic(self, sim):
        order = []
        for i in range(10):
            t = sim.timeout(1.0, value=i)
            t.add_callback(lambda e: order.append(e.value))
        sim.run()
        assert order == list(range(10))


@given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0,
                                 allow_nan=False),
                       min_size=1, max_size=50))
def test_events_fire_in_nondecreasing_time_order(delays):
    """Property: no matter the scheduling order, callbacks observe a
    monotonically non-decreasing clock."""
    sim = Simulator()
    observed = []
    for d in delays:
        t = sim.timeout(d)
        t.add_callback(lambda e: observed.append(sim.now))
    sim.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)


@given(delays=st.lists(st.sampled_from([0.0, 0.5, 1.0, 2.0]),
                       min_size=1, max_size=60))
def test_tie_break_stable_under_fast_path(delays):
    """Property: event ordering is (time, seq) — among events scheduled
    for the same instant, creation order wins, no matter how ties are
    distributed.  Guards the run()-loop fast path against any change
    that would reorder the heap's tie-break."""
    sim = Simulator()
    fired = []
    for index, delay in enumerate(delays):
        t = sim.timeout(delay)
        t.add_callback(
            lambda e, index=index, delay=delay: fired.append((delay, index)))
    sim.run()
    # Sorting the schedule by (time, creation index) must reproduce the
    # observed firing order exactly.
    expected = sorted(((d, i) for i, d in enumerate(delays)))
    assert fired == expected
    assert sim._event_count == len(delays)


@given(delays=st.lists(st.floats(min_value=0.0, max_value=4.0,
                                 allow_nan=False),
                       min_size=1, max_size=40),
       until=st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
def test_run_until_matches_step_loop(delays, until):
    """Property: run(until=...) + run() is observationally identical to
    a manual step() loop — same firing trace, same _event_count, same
    clock.  Guards the unified run() loop against the two paths
    drifting apart."""

    def build():
        sim = Simulator()
        trace = []
        for i, d in enumerate(delays):
            sim.timeout(d).add_callback(
                lambda e, i=i: trace.append((sim.now, i)))
        return sim, trace

    fast_sim, fast_trace = build()
    fast_sim.run(until=until)
    mid_now = fast_sim.now
    fast_sim.run()

    slow_sim, slow_trace = build()
    while slow_sim.peek() is not None and slow_sim.peek() <= until:
        slow_sim.step()
    assert mid_now == until  # run(until) pins the clock
    slow_sim.now = until     # mirror the pin before draining
    while slow_sim.step():
        pass

    assert fast_trace == slow_trace
    assert fast_sim._event_count == slow_sim._event_count
    assert fast_sim.now == slow_sim.now


@given(st.lists(st.tuples(st.floats(min_value=0, max_value=10,
                                    allow_nan=False),
                          st.integers(min_value=0, max_value=5)),
                min_size=1, max_size=30))
def test_process_chains_preserve_causality(pairs):
    """Property: a process that waits on a chain of timeouts finishes at
    exactly the sum of the delays."""
    sim = Simulator()

    def proc(delays):
        for d in delays:
            yield sim.timeout(d)
        return sim.now

    delays = [d for d, _ in pairs]
    p = sim.process(proc(delays))
    sim.run()
    assert p.value == pytest.approx(sum(delays))


class TestKernelEdgeCases:
    """Edge semantics pinned down explicitly: zero-width latches,
    zero-delay call_later ordering, and cancelling a fired Timeout."""

    def test_latch_zero_fires_immediately(self):
        """latch(0) has nothing to wait for: it is born triggered and a
        waiter resumes at the current instant without advancing time."""
        sim = Simulator()
        latch = sim.latch(0)
        assert latch.triggered
        assert latch.remaining == 0
        resumed = []

        def waiter():
            yield latch
            resumed.append(sim.now)

        sim.process(waiter())
        sim.run()
        assert resumed == [0.0]
        assert sim.now == 0.0

    def test_latch_zero_inside_running_simulation(self):
        """A zero latch created mid-run fires at that same instant."""
        sim = Simulator()
        resumed = []

        def waiter():
            yield sim.timeout(0.5)
            yield sim.latch(0)
            resumed.append(sim.now)

        sim.process(waiter())
        sim.run()
        assert resumed == [0.5]

    def test_call_later_zero_delay_orders_by_scheduling_seq(self):
        """call_later(0, ...) entries and other same-time events fire in
        scheduling order: ties in time break by sequence number, and the
        bare-callback fast path must honour the same total order."""
        sim = Simulator()
        fired = []
        sim.call_later(0.0, fired.append, "first-bare")
        sim.timeout(0.0).add_callback(lambda _e: fired.append("timeout"))
        sim.call_later(0.0, fired.append, "second-bare")
        sim.run()
        assert fired == ["first-bare", "timeout", "second-bare"]

    def test_call_later_same_nonzero_time_interleaves_with_timeouts(self):
        """The (time, seq) order also holds at a shared future instant
        reached through different scheduling APIs."""
        sim = Simulator()
        fired = []
        sim.timeout(0.002).add_callback(lambda _e: fired.append("t1"))
        sim.call_later(0.002, fired.append, "c1")
        sim.timeout(0.002).add_callback(lambda _e: fired.append("t2"))
        sim.call_later(0.001, fired.append, "early")
        sim.run()
        assert fired == ["early", "t1", "c1", "t2"]

    def test_cancel_already_fired_timeout_is_noop(self):
        """cancel() after the timeout fired must not raise, must not
        un-process the event, and must not disturb later events."""
        sim = Simulator()
        fired = []
        timer = sim.timeout(0.001)
        timer.add_callback(lambda _e: fired.append(sim.now))
        sim.timeout(0.002).add_callback(lambda _e: fired.append(sim.now))
        sim.run(until=0.0015)
        assert fired == [0.001]
        assert timer.processed
        count_before = sim._event_count
        timer.cancel()
        timer.cancel()  # idempotent
        sim.run()
        assert fired == [0.001, 0.002]
        assert sim._event_count == count_before + 1

    def test_cancel_before_fire_skips_without_counting(self):
        """Contrast case: cancelling a pending timeout suppresses both
        the callback and the event count."""
        sim = Simulator()
        fired = []
        timer = sim.timeout(0.001)
        timer.add_callback(lambda _e: fired.append(sim.now))
        timer.cancel()
        sim.timeout(0.002).add_callback(lambda _e: fired.append(sim.now))
        sim.run()
        assert fired == [0.002]
        assert sim._event_count == 1
