"""Reproducibility guarantees of the named RNG streams.

``tests/sim/test_rng_params.py`` covers the basic stream API; this
module pins the properties the experiment harness leans on when it
fans grid points out to worker processes: the same (seed, name) pair
must yield the same draws in *any* process, regardless of hash
randomisation, platform defaults, or how many unrelated streams were
created first.
"""

import os
import subprocess
import sys

from repro.sim.rng import RngStreams

#: First three draws of stream "svc" under root seed 42 — pinned
#: literally so a change to the seed-derivation scheme (which would
#: silently invalidate every golden exhibit) fails loudly.
PINNED_SVC_DRAWS = [0.5576646185147413, 0.23899077599178564,
                    0.28066377318049096]

#: Seed of RngStreams(42).spawn("shard-0") under the sha256 derivation.
PINNED_SPAWN_SEED = 5057745982613045017


class TestPinnedDerivation:
    def test_stream_draws_pinned(self):
        stream = RngStreams(42).stream("svc")
        assert [stream.random() for _ in range(3)] == PINNED_SVC_DRAWS

    def test_spawn_seed_pinned(self):
        assert RngStreams(42).spawn("shard-0").seed == PINNED_SPAWN_SEED


class TestSpawn:
    def test_spawn_chain_is_deterministic(self):
        a = RngStreams(7).spawn("rack-1").spawn("shard-3").stream("svc")
        b = RngStreams(7).spawn("rack-1").spawn("shard-3").stream("svc")
        assert [a.random() for _ in range(8)] == \
               [b.random() for _ in range(8)]

    def test_child_streams_differ_from_parent(self):
        parent = RngStreams(7)
        child = parent.spawn("shard-0")
        assert [parent.stream("svc").random() for _ in range(4)] != \
               [child.stream("svc").random() for _ in range(4)]

    def test_siblings_are_independent(self):
        parent = RngStreams(7)
        a = parent.spawn("shard-0").stream("svc")
        b = parent.spawn("shard-1").stream("svc")
        assert [a.random() for _ in range(4)] != \
               [b.random() for _ in range(4)]

    def test_spawning_does_not_perturb_parent_streams(self):
        plain = RngStreams(7)
        before = [plain.stream("svc").random() for _ in range(5)]
        spawning = RngStreams(7)
        spawning.spawn("shard-0").stream("svc").random()
        after = [spawning.stream("svc").random() for _ in range(5)]
        assert before == after


class TestCrossProcess:
    """Draws must be identical across interpreter processes.

    The parallel exhibit runner re-creates RngStreams inside spawned
    workers; if stream derivation depended on anything process-local
    (hash randomisation being the classic trap for string-keyed
    seeding), serial and parallel runs would silently diverge.
    """

    SCRIPT = (
        "from repro.sim.rng import RngStreams\n"
        "r = RngStreams(42)\n"
        "svc = r.stream('svc')\n"
        "child = r.spawn('shard-0').stream('svc')\n"
        "print(repr([svc.random() for _ in range(3)]))\n"
        "print(repr([child.random() for _ in range(3)]))\n"
    )

    def _run(self, hashseed):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hashseed
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.join(os.path.dirname(__file__),
                                     "..", "..", "src"),
                        env.get("PYTHONPATH")) if p)
        out = subprocess.run(
            [sys.executable, "-c", self.SCRIPT], env=env,
            capture_output=True, text=True, check=True)
        return out.stdout

    def test_draws_stable_across_processes_and_hashseeds(self):
        runs = [self._run(hashseed) for hashseed in ("0", "1", "31337")]
        assert runs[0] == runs[1] == runs[2]
        in_process = RngStreams(42)
        svc = in_process.stream("svc")
        child = in_process.spawn("shard-0").stream("svc")
        expected = (repr([svc.random() for _ in range(3)]) + "\n"
                    + repr([child.random() for _ in range(3)]) + "\n")
        assert runs[0] == expected
