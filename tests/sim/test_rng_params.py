"""Unit tests for RNG streams and the cost-model dataclass."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sim.params import KB, CostParams
from repro.sim.rng import RngStreams, lognormal_from_mean_cv


class TestRngStreams:
    def test_streams_are_deterministic(self):
        a = RngStreams(7).stream("svc")
        b = RngStreams(7).stream("svc")
        assert [a.random() for _ in range(10)] == \
               [b.random() for _ in range(10)]

    def test_streams_are_independent_by_name(self):
        streams = RngStreams(7)
        x = streams.stream("x")
        y = streams.stream("y")
        assert [x.random() for _ in range(5)] != \
               [y.random() for _ in range(5)]

    def test_adding_consumer_does_not_perturb_existing(self):
        """The whole point of named streams: a new consumer must not
        shift the draws other consumers see."""
        only = RngStreams(7)
        seq_before = [only.stream("svc").random() for _ in range(5)]
        both = RngStreams(7)
        both.stream("new-consumer").random()
        seq_after = [both.stream("svc").random() for _ in range(5)]
        assert seq_before == seq_after

    def test_same_name_returns_same_stream(self):
        streams = RngStreams(1)
        assert streams.stream("a") is streams.stream("a")

    def test_spawn_derives_child_registry(self):
        parent = RngStreams(7)
        child1 = parent.spawn("shard-0")
        child2 = parent.spawn("shard-0")
        assert child1.seed == child2.seed
        assert parent.spawn("shard-1").seed != child1.seed


class TestLognormal:
    def test_zero_cv_is_deterministic(self):
        import random
        rng = random.Random(1)
        assert lognormal_from_mean_cv(rng, 2.0, 0.0) == 2.0

    def test_mean_matches_parameter(self):
        import random
        rng = random.Random(1)
        samples = [lognormal_from_mean_cv(rng, 3.0, 0.8)
                   for _ in range(20_000)]
        assert sum(samples) / len(samples) == pytest.approx(3.0, rel=0.05)

    def test_positive_mean_required(self):
        import random
        with pytest.raises(ValueError):
            lognormal_from_mean_cv(random.Random(1), 0.0, 1.0)

    @given(st.floats(min_value=1e-6, max_value=1e3),
           st.floats(min_value=0.01, max_value=5.0),
           st.integers(min_value=0, max_value=2**31))
    def test_always_positive(self, mean, cv, seed):
        import random
        value = lognormal_from_mean_cv(random.Random(seed), mean, cv)
        assert value > 0
        assert math.isfinite(value)


class TestCostParams:
    def test_with_overrides_returns_copy(self):
        base = CostParams()
        derived = base.with_overrides(app_cores=8)
        assert derived.app_cores == 8
        assert base.app_cores != 8 or base.app_cores == 8  # base unchanged
        assert base is not derived

    def test_unknown_override_rejected(self):
        with pytest.raises(TypeError):
            CostParams().with_overrides(warp_drive=1)

    def test_response_cost_scales_with_size(self):
        params = CostParams()
        small = params.response_process_cost(100)
        large = params.response_process_cost(20 * KB)
        assert large > small
        assert large - params.response_base_cost == pytest.approx(
            20 * params.response_per_kb_cost)

    def test_assemble_cost(self):
        params = CostParams()
        assert params.assemble_cost(0) == params.assemble_base_cost
        assert params.assemble_cost(2 * KB) == pytest.approx(
            params.assemble_base_cost + 2 * params.assemble_per_kb_cost)

    def test_transfer_time(self):
        params = CostParams()
        assert params.transfer_time(params.net_bandwidth) == pytest.approx(1.0)

    def test_defaults_sane(self):
        params = CostParams()
        assert params.app_cores >= 1
        assert 0 < params.ctx_switch_cost < params.quantum
        assert params.point_lookup_mean > 0
        assert params.large_shard_factor > 1.0
