"""Interned counter / charger handles versus the lazy string paths.

The scheduler hot path records through bound handles
(``Metrics.counter(name)`` / ``CpuAccounting.charger(category)``)
while cold paths keep calling ``metrics.add(name)`` — these tests pin
that both routes land in one coherent view, that interning migrates
(never loses or duplicates) earlier lazy counts, and that the ordering
the report layer leans on survives the handle layer.
"""

import pytest

from repro.sim.metrics import Counter, CpuAccounting, CpuCharger, Metrics


class TestCounterHandles:
    def test_handle_is_interned(self):
        metrics = Metrics()
        assert metrics.counter("x") is metrics.counter("x")

    def test_lazy_value_migrates_into_handle(self):
        metrics = Metrics()
        metrics.add("x", 3.0)
        handle = metrics.counter("x")
        assert handle.value == 3.0
        # The lazy slot is gone: no double counting in the merged view.
        assert metrics.counters == {"x": 3.0}

    def test_add_routes_to_existing_handle(self):
        metrics = Metrics()
        handle = metrics.counter("x")
        metrics.add("x", 2.0)
        handle.add(0.5)
        assert handle.value == 2.5
        assert metrics.raw_count("x") == 2.5

    def test_merged_view_spans_both_routes(self):
        metrics = Metrics()
        metrics.counter("interned").add(1.0)
        metrics.add("lazy", 2.0)
        assert metrics.counters == {"interned": 1.0, "lazy": 2.0}

    def test_interned_name_visible_at_zero(self):
        metrics = Metrics()
        metrics.counter("x")
        assert metrics.counters == {"x": 0.0}
        assert metrics.raw_count("x") == 0.0

    def test_counters_view_is_a_fresh_dict(self):
        metrics = Metrics()
        metrics.counter("x").add(1.0)
        view = metrics.counters
        view["x"] = 99.0
        view["y"] = 1.0
        assert metrics.counters == {"x": 1.0}

    def test_window_subtracts_warmup_for_both_routes(self):
        metrics = Metrics()
        metrics.counter("interned").add(4.0)
        metrics.add("lazy", 2.0)
        metrics.mark_window_start(10.0)
        metrics.counter("interned").add(1.0)
        metrics.add("lazy")
        assert metrics.count("interned") == 1.0
        assert metrics.count("lazy") == 1.0
        assert metrics.raw_count("interned") == 5.0

    def test_interning_after_window_mark_keeps_window_math(self):
        metrics = Metrics()
        metrics.add("x", 4.0)
        metrics.mark_window_start(10.0)
        metrics.counter("x").add(1.0)  # interned mid-run
        assert metrics.count("x") == 1.0

    def test_default_add_amount_is_one(self):
        counter = Counter("x")
        counter.add()
        counter.add()
        assert counter.value == 2.0


class TestChargerHandles:
    def test_charger_is_interned(self):
        acct = CpuAccounting()
        ch = acct.charger("app")
        assert isinstance(ch, CpuCharger)
        assert acct.charger("app") is ch

    def test_charge_and_handle_share_totals(self):
        acct = CpuAccounting()
        acct.charge("app", 1.0)
        acct.charger("app").add(0.5)
        assert acct.busy_by_category["app"] == 1.5
        assert acct.total_busy_ever == 1.5

    def test_negative_charge_rejected(self):
        acct = CpuAccounting()
        with pytest.raises(ValueError):
            acct.charge("app", -1.0)

    def test_busy_by_category_missing_key_reads_zero(self):
        acct = CpuAccounting()
        acct.charge("app", 1.0)
        view = acct.busy_by_category
        assert view["never-charged"] == 0.0  # defaultdict semantics
        # And the probe did not leak into the accounting:
        assert "never-charged" not in acct.busy_by_category or \
            acct.busy_by_category["never-charged"] == 0.0

    def test_windowed_order_is_first_charge_order(self):
        """The harness's cpu-share report iterates ``windowed()`` and
        float-sums shares, so category order must match the order of
        first charges — including handles created before any charge."""
        acct = CpuAccounting()
        never_charged = acct.charger("idle-handle")  # interned, no add
        acct.charge("b", 1.0)
        acct.charge("a", 1.0)
        never_charged.add(0.0)  # zero first charge still links
        acct.charge("c", 1.0)
        assert list(acct.windowed()) == ["b", "a", "idle-handle", "c"]

    def test_windowed_subtracts_warmup(self):
        acct = CpuAccounting()
        acct.charge("app", 2.0)
        acct.mark_window_start(5.0)
        acct.charge("app", 1.0)
        assert acct.windowed() == {"app": 1.0}
        assert acct.total_busy() == 1.0
        assert acct.busy_by_category["app"] == 3.0  # since start of run

    def test_category_share(self):
        acct = CpuAccounting()
        acct.charge("app", 3.0)
        acct.charge("ctx_switch", 1.0)
        assert acct.category_share("app") == pytest.approx(0.75)
        assert acct.category_share("missing") == 0.0
