"""Whole-system guarantees for repro.trace.

Four load-bearing properties:

1. **Observation only.**  A traced run's *measured* results are
   float-identical to the same run untraced: the sampler draws from its
   own named RNG stream and no hook feeds back into simulation
   behaviour.  (Tracing *off* is pinned even harder — byte-identical —
   by the pre-existing golden-tab2 test, since ``trace`` defaults off.)
2. **Determinism across workers.**  ``trace_summary`` is a pure
   function of the config seed: ``jobs=1`` equals ``jobs=4`` over the
   shared-memory columnar transport, float for float.
3. **Exact additivity on real traces.**  Every exemplar from a real
   multi-architecture run re-subtracts to exactly ``0.0``.
4. **Tail attribution.**  Under an injected slow shard, the slowest
   exemplars sit at/above p99 and charge the miss to the retry/hedge
   machinery of the critical sub-query — the paper-facing "where did
   my p99 go" answer.
"""

import dataclasses

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import run_experiments
from repro.experiments.runner import run_experiment
from repro.faults import FaultConfig, ResilienceConfig
from repro.trace import CATEGORIES, additivity_residual


def _config(server="doubleface", **kw):
    base = dict(server=server, concurrency=12, fanout=4, response_size=100,
                warmup=0.2, duration=0.5, seed=11)
    base.update(kw)
    return ExperimentConfig(**base)


def _measured_fields(result):
    """Everything except the observation outputs themselves."""
    fields = dataclasses.asdict(result)
    for observational in ("trace_summary", "config", "flame", "phases",
                          "obs_names", "obs_times", "obs_values"):
        fields.pop(observational)
    return fields


class TestObservationOnly:
    @pytest.mark.parametrize("server", ["doubleface", "netty", "aio",
                                        "type1", "threadbased"])
    def test_traced_run_measures_identically(self, server):
        untraced = run_experiment(_config(server))
        traced = run_experiment(_config(server, trace=True,
                                        trace_sample=0.5))
        assert traced.trace_summary is not None
        assert traced.trace_summary["sampled"] > 0
        assert _measured_fields(traced) == _measured_fields(untraced)

    def test_untraced_run_carries_no_summary(self):
        assert run_experiment(_config()).trace_summary is None

    def test_sample_rate_scales_the_sampled_set(self):
        full = run_experiment(_config(trace=True, trace_sample=1.0))
        thin = run_experiment(_config(trace=True, trace_sample=0.1))
        n_full = full.trace_summary["sampled"]
        n_thin = thin.trace_summary["sampled"]
        assert n_full == full.completed
        assert 0 < n_thin < n_full


class TestWorkerDeterminism:
    def _grid(self):
        return [_config(server, trace=True, trace_sample=0.5,
                        trace_exemplars=2)
                for server in ("doubleface", "netty", "aio")]

    def test_jobs4_shm_equals_serial(self):
        serial = run_experiments(self._grid(), jobs=1)
        parallel = run_experiments(self._grid(), jobs=4, transport="shm")
        for ours, theirs in zip(serial, parallel):
            assert dataclasses.asdict(ours) == dataclasses.asdict(theirs)

    def test_jobs4_pickle_equals_serial(self):
        serial = run_experiments(self._grid()[:1], jobs=1)
        parallel = run_experiments(self._grid()[:1], jobs=4,
                                   transport="pickle")
        assert dataclasses.asdict(serial[0]) == \
            dataclasses.asdict(parallel[0])


class TestRealTraceAdditivity:
    @pytest.mark.parametrize("server", ["doubleface", "netty", "aio",
                                        "type1", "threadbased"])
    def test_exemplars_resubtract_to_exact_zero(self, server):
        result = run_experiment(_config(server, trace=True,
                                        trace_sample=1.0,
                                        trace_exemplars=5))
        summary = result.trace_summary
        checked = 0
        for entry in summary["classes"].values():
            # Per-class sums are additive to float-sum accuracy (each
            # trace is exact; the aggregation reorders the additions).
            total = sum(entry["breakdown"][c] for c in CATEGORIES)
            assert total == pytest.approx(entry["rt_sum"], rel=1e-9)
            for exemplar in entry["exemplars"]:
                assert additivity_residual(
                    exemplar["rt"], exemplar["breakdown"]) == 0.0
                assert exemplar["spans"], "exemplars keep full span lists"
                checked += 1
        assert checked > 0

    def test_mean_rt_matches_trace_aggregate_at_full_sampling(self):
        result = run_experiment(_config(trace=True, trace_sample=1.0))
        entry = result.trace_summary["classes"]["default"]
        assert entry["count"] == result.completed
        assert entry["rt_sum"] / entry["count"] == \
            pytest.approx(result.mean_rt, rel=1e-9)


class TestFaultTailAttribution:
    def test_slow_shard_tail_charged_to_retry_hedge(self):
        faults = FaultConfig(slow_shards=2, slow_factor=100.0,
                             slow_mean_on=0.3, slow_mean_off=0.2)
        resilience = ResilienceConfig(subquery_deadline=5e-3,
                                      max_retries=2, backoff_base=0.5e-3,
                                      backoff_cap=2e-3,
                                      hedge_percentile=95.0,
                                      hedge_min_samples=50)
        result = run_experiment(_config(
            concurrency=16, fanout=5, duration=0.8, faults=faults,
            resilience=resilience, replicas_per_shard=2, trace=True,
            trace_sample=1.0, trace_exemplars=5))
        # Not vacuous: the resilience machinery fired.  (Since the
        # per-attempt latency fix the learned hedge converges near the
        # healthy percentile, so hedges rescue slow sub-queries before
        # the 5 ms deadline can schedule a retry.)
        assert result.fault_counters.get("resilience.hedges", 0) > 0
        assert result.fault_counters.get("resilience.hedge_wins", 0) > 0
        p99 = result.percentiles[99.0]
        exemplars = result.trace_summary["classes"]["default"]["exemplars"]
        assert len(exemplars) == 5
        slowest = exemplars[0]
        assert slowest["rt"] >= p99
        # The critical sub-query needed more than one wire attempt, and
        # the time lost waiting out the slow shard before the winning
        # resend is the single largest category.  (It no longer exceeds
        # half the rt: the converged hedge fires around 1.7 ms, well
        # before the 5 ms deadline, so the whole tail is shorter.)
        assert slowest["attempts"] >= 2
        breakdown = slowest["breakdown"]
        assert breakdown["retry_hedge"] == max(
            breakdown[c] for c in CATEGORIES)
        assert breakdown["retry_hedge"] > 0.25 * slowest["rt"]


class TestEwmaCrossRackRouting:
    def _run(self, policy):
        return run_experiment(_config(
            duration=1.2, warmup=0.4, replicas_per_shard=2, racks=2,
            replica_policy=policy, cross_rack_extra_latency=0.5e-3,
            trace=True, trace_sample=0.5))

    def test_ewma_learns_the_near_replica(self):
        primary = self._run("primary")
        ewma = self._run("ewma")
        assert ewma.mean_rt < primary.mean_rt
        # The win shows up exactly where the tracer says it should:
        # the per-request network share collapses once routing stops
        # paying the cross-rack spine tax on half the sub-queries.
        def net_per_request(result):
            entry = result.trace_summary["classes"]["default"]
            return entry["breakdown"]["network"] / entry["count"]
        assert net_per_request(ewma) < 0.5 * net_per_request(primary)
