"""Unit tests for the importable artifact validators
(:mod:`repro.trace.schema`, satellite of the observability PR): each
validator accepts the matching exporter's real output and rejects
targeted corruptions with a :class:`SchemaError`."""

import json
import random

import pytest

from repro.obs.prometheus import prometheus_snapshot
from repro.trace import (FlameAccumulator, K_PARSE, K_SERVICE, K_ROOT,
                         Tracer, build_flame, build_summary,
                         chrome_trace, collapsed_stacks, speedscope_doc)
from repro.trace.schema import (SchemaError, check_chrome_trace,
                                check_collapsed, check_path,
                                check_prometheus, check_speedscope,
                                main)


def _summary():
    tracer = Tracer(random.Random(5), sample_rate=1.0)
    trace = tracer.begin("default", now=0.0)
    trace.add(K_PARSE, 0.0, 0.001)
    trace.add(K_SERVICE, 0.001, 0.004, seq=0, attempt=0)
    tracer.finish(trace, rt=0.005)
    return build_summary(tracer)


def _flame():
    acc = FlameAccumulator()
    tracer = Tracer(random.Random(5), sample_rate=1.0)
    trace = tracer.begin("default", now=0.0)
    trace.add(K_PARSE, 0.0, 0.001)
    trace.add(K_SERVICE, 0.001, 0.004, seq=0, attempt=0)
    trace.add(K_ROOT, 0.0, 0.005)
    acc.fold(trace, "measure")
    return build_flame(acc)


class TestChromeTrace:
    def test_accepts_exporter_output(self):
        doc = chrome_trace({"run": _summary()})
        stats = check_chrome_trace(doc)
        assert stats["spans"] > 0
        assert stats["phase_marks"] == 0

    def test_accepts_phase_annotated_output(self):
        doc = chrome_trace({"run": _summary()},
                           phases={"run": [("warmup", 0.0, 0.2),
                                           ("measure", 0.2, 1.0)]})
        stats = check_chrome_trace(doc)
        assert stats["phase_marks"] == 4  # one X + one instant per phase

    def test_phases_without_summary_still_validate(self):
        doc = chrome_trace({"run": _summary()},
                           phases={"other": [("measure", 0.0, 1.0)]})
        assert check_chrome_trace(doc)["phase_marks"] == 2

    def test_rejects_unknown_span_kind(self):
        doc = chrome_trace({"run": _summary()})
        for event in doc["traceEvents"]:
            if event["ph"] == "X":
                event["name"] = "mystery"
                break
        with pytest.raises(SchemaError, match="unknown span kind"):
            check_chrome_trace(doc)

    def test_rejects_phase_mark_without_args(self):
        doc = chrome_trace({"run": _summary()},
                           phases={"run": [("measure", 0.0, 1.0)]})
        for event in doc["traceEvents"]:
            if event["name"].startswith("phase:"):
                event["args"] = {}
                break
        with pytest.raises(SchemaError, match="args.phase"):
            check_chrome_trace(doc)

    def test_rejects_unnamed_process(self):
        doc = chrome_trace({"run": _summary()})
        doc["traceEvents"] = [e for e in doc["traceEvents"]
                              if e.get("name") != "process_name"]
        with pytest.raises(SchemaError, match="process_name"):
            check_chrome_trace(doc)

    def test_rejects_empty(self):
        with pytest.raises(SchemaError):
            check_chrome_trace({"traceEvents": [],
                                "displayTimeUnit": "ms"})


class TestCollapsed:
    def test_accepts_exporter_output(self):
        stats = check_collapsed(collapsed_stacks({"run": _flame()}))
        assert stats["lines"] == 2

    def test_rejects_zero_weight(self):
        with pytest.raises(SchemaError, match="positive"):
            check_collapsed("a;root 0\n")

    def test_rejects_non_integer_weight(self):
        with pytest.raises(SchemaError, match="integer"):
            check_collapsed("a;root 1.5\n")

    def test_rejects_empty_frame(self):
        with pytest.raises(SchemaError, match="empty frame"):
            check_collapsed("a;;root 10\n")

    def test_rejects_unknown_leaf(self):
        with pytest.raises(SchemaError, match="leaf frame"):
            check_collapsed("a;not_a_span 10\n")

    def test_rejects_no_samples(self):
        with pytest.raises(SchemaError, match="no samples"):
            check_collapsed("\n\n")


class TestSpeedscope:
    def test_accepts_exporter_output(self):
        stats = check_speedscope(speedscope_doc({"run": _flame()}))
        assert stats["profiles"] == 1

    def test_rejects_wrong_schema_tag(self):
        doc = speedscope_doc({"run": _flame()})
        doc["$schema"] = "https://example.com/other.json"
        with pytest.raises(SchemaError, match="schema"):
            check_speedscope(doc)

    def test_rejects_out_of_range_frame_index(self):
        doc = speedscope_doc({"run": _flame()})
        doc["profiles"][0]["samples"][0][0] = 999
        with pytest.raises(SchemaError, match="out of range"):
            check_speedscope(doc)

    def test_rejects_mismatched_weights(self):
        doc = speedscope_doc({"run": _flame()})
        doc["profiles"][0]["weights"].append(1.0)
        with pytest.raises(SchemaError, match="1:1"):
            check_speedscope(doc)


class TestPrometheus:
    def _snapshot(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_experiment
        result = run_experiment(ExperimentConfig(
            concurrency=4, n_shards=4, fanout=2, warmup=0.05,
            duration=0.1, seed=11, obs=True))
        return prometheus_snapshot(result, label="test")

    def test_accepts_exporter_output(self):
        stats = check_prometheus(self._snapshot())
        assert stats["families"] >= 5

    def test_rejects_untyped_family(self):
        with pytest.raises(SchemaError, match="TYPE"):
            check_prometheus('repro_thing{a="b"} 1.0\n')

    def test_rejects_bad_value(self):
        text = "# TYPE repro_thing gauge\nrepro_thing nope\n"
        with pytest.raises(SchemaError, match="not a float"):
            check_prometheus(text)

    def test_rejects_empty(self):
        with pytest.raises(SchemaError, match="no metric samples"):
            check_prometheus("# TYPE repro_thing gauge\n")


class TestDispatch:
    def test_check_path_sniffs_all_formats(self, tmp_path):
        trace_path = tmp_path / "trace.json"
        trace_path.write_text(json.dumps(chrome_trace({"r": _summary()})))
        flame_json = tmp_path / "flame.json"
        flame_json.write_text(json.dumps(speedscope_doc({"r": _flame()})))
        collapsed = tmp_path / "flame.collapsed"
        collapsed.write_text(collapsed_stacks({"r": _flame()}))
        prom = tmp_path / "prom.txt"
        prom.write_text("# HELP repro_x x\n# TYPE repro_x gauge\n"
                        "repro_x 1.0\n")
        assert check_path(str(trace_path)).startswith("trace schema OK")
        assert check_path(str(flame_json)).startswith("speedscope")
        assert check_path(str(collapsed)).startswith("collapsed")
        assert check_path(str(prom)).startswith("prometheus")

    def test_check_path_missing_file(self, tmp_path):
        with pytest.raises(SchemaError, match="cannot read"):
            check_path(str(tmp_path / "nope.json"))

    def test_main_multiple_paths_and_exit_codes(self, tmp_path, capsys):
        good = tmp_path / "flame.collapsed"
        good.write_text(collapsed_stacks({"r": _flame()}))
        bad = tmp_path / "bad.collapsed"
        bad.write_text("a;root zero\n")
        assert main([str(good)]) == 0
        assert main([str(good), str(bad)]) == 1
        assert main([]) == 2
        captured = capsys.readouterr()
        assert "FAILED" in captured.err
        assert "usage" in captured.out

    def test_shim_still_runs(self, tmp_path):
        import subprocess
        import sys
        from pathlib import Path
        good = tmp_path / "flame.collapsed"
        good.write_text(collapsed_stacks({"r": _flame()}))
        repo = Path(__file__).resolve().parents[2]
        proc = subprocess.run(
            [sys.executable, str(repo / "scripts/check_trace_schema.py"),
             str(good)],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr
        assert "collapsed-stack schema OK" in proc.stdout
