"""Unit and property tests for repro.trace: span bookkeeping,
critical-path attribution, and the exporters.

The load-bearing invariant is **float-exact additivity**: for every
trace, ``attribute`` splits the measured ``rt`` into six categories
whose canonical-order re-subtraction (``additivity_residual``) yields
exactly ``0.0`` — not approximately.  The property test hammers that
with randomized span soups; the exporter tests pin the columnar
round-trip as an exact inverse and the Chrome JSON schema.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.trace import (CATEGORIES, FLAG_SYNTHESIZED, KIND_NAMES,
                         K_ASSEMBLE, K_NET_REQUEST, K_NET_RESPONSE,
                         K_PARSE, K_PROCESS, K_RETRY, K_ROOT,
                         K_SELECTOR_WAIT, K_SERVER_QUEUE, K_SERVICE,
                         Trace, Tracer, additivity_residual, attribute,
                         build_summary, chrome_trace, summary_columns,
                         summary_from_columns)


class TestTracer:
    def test_validation(self):
        with pytest.raises(ValueError):
            Tracer(random.Random(1), sample_rate=0.0)
        with pytest.raises(ValueError):
            Tracer(random.Random(1), sample_rate=1.5)
        with pytest.raises(ValueError):
            Tracer(random.Random(1), keep_exemplars=0)

    def test_kinds_preinterned_in_declared_order(self):
        tracer = Tracer(random.Random(1))
        assert [k.name for k in tracer.kinds] == list(KIND_NAMES)
        assert tracer.kind("service").index == K_SERVICE
        assert tracer.kind("service") is tracer.kinds[K_SERVICE]

    def test_sampling_is_rng_deterministic(self):
        a = Tracer(random.Random(7), sample_rate=0.3)
        b = Tracer(random.Random(7), sample_rate=0.3)
        draws_a = [a.sample() for _ in range(200)]
        draws_b = [b.sample() for _ in range(200)]
        assert draws_a == draws_b
        assert any(draws_a) and not all(draws_a)

    def test_sample_rate_one_samples_everything(self):
        tracer = Tracer(random.Random(7), sample_rate=1.0)
        assert all(tracer.sample() for _ in range(50))

    def test_finish_attributes_and_aggregates(self):
        tracer = Tracer(random.Random(1), sample_rate=1.0)
        trace = tracer.begin("default", now=1.0)
        trace.add(K_PARSE, 1.0, 1.002, work=0.001)
        tracer.finish(trace, rt=0.010)
        assert tracer.sampled == 1
        assert trace.breakdown is not None
        assert additivity_residual(trace.rt, trace.breakdown) == 0.0
        agg = tracer.classes()["default"]
        assert agg.count == 1
        assert agg.rt_sum == 0.010

    def test_exemplar_heap_keeps_slowest(self):
        tracer = Tracer(random.Random(1), sample_rate=1.0,
                        keep_exemplars=2)
        for i, rt in enumerate([0.005, 0.050, 0.001, 0.030]):
            tracer.finish(tracer.begin("default", now=float(i)), rt=rt)
        exemplars = tracer.exemplars("default")
        assert [t.rt for t in exemplars] == [0.050, 0.030]  # slowest first

    def test_reset_clears_aggregates_keeps_stamps(self):
        tracer = Tracer(random.Random(1), sample_rate=1.0)
        tracer.finish(tracer.begin("default", now=0.0), rt=0.01)
        marker = object()
        tracer.stamp_wait(marker, 0.5)
        tracer.reset(1.0)
        assert tracer.sampled == 0
        assert tracer.classes() == {}
        assert tracer.window_start == 1.0
        assert tracer.pop_wait(marker) == 0.5  # in-flight stamp survived

    def test_trace_of_resolves_context_then_direct(self):
        class Ctx:
            pass

        class WithContext:
            pass

        class Direct:
            pass

        trace = Trace(0, "default", 0.0)
        ctx = Ctx()
        ctx.trace = trace
        message = WithContext()
        message.context = ctx
        assert Tracer.trace_of(message) is trace
        direct = Direct()
        direct.trace = trace
        assert Tracer.trace_of(direct) is trace
        assert Tracer.trace_of(object()) is None


class _Win:
    def __init__(self, seq, attempt, shard_id, replica):
        self.seq = seq
        self.attempt = attempt
        self.shard_id = shard_id
        self.replica = replica


class TestAttribute:
    def _simple_trace(self):
        """One request, fanout 2, sub-query 1 attempt 0 wins."""
        trace = Trace(0, "default", 1.0)
        trace.add(K_PARSE, 1.000, 1.002, work=0.001)        # 1ms queue
        trace.add(K_NET_REQUEST, 1.002, 1.003, seq=0, shard=3)
        trace.add(K_NET_REQUEST, 1.002, 1.004, seq=1, shard=7)
        trace.add(K_SERVER_QUEUE, 1.004, 1.005, seq=1, shard=7)
        trace.add(K_SERVICE, 1.005, 1.008, seq=1, shard=7)
        trace.add(K_NET_RESPONSE, 1.008, 1.010, seq=1, shard=7)
        trace.add(K_SELECTOR_WAIT, 1.010, 1.011, seq=1, shard=7)
        trace.add(K_PROCESS, 1.011, 1.012, seq=1, work=0.001)
        trace.add(K_ASSEMBLE, 1.013, 1.014, work=0.001)
        trace.note_win(_Win(seq=1, attempt=0, shard_id=7, replica=0))
        trace.rt = 0.015
        trace.add(K_ROOT, 1.0, 1.0 + trace.rt)
        return trace

    def test_categories_from_known_spans(self):
        trace = self._simple_trace()
        bd = attribute(trace)
        # Chain network: seq=1 request (2ms) + response (2ms); the
        # non-critical seq=0 leg contributes nothing.
        assert bd["network"] == pytest.approx(0.004)
        assert bd["service"] == pytest.approx(0.004)  # queue 1ms + svc 3ms
        assert bd["cpu_queue"] == pytest.approx(0.001)  # parse only
        assert bd["selector_wait"] == pytest.approx(0.001)
        assert bd["retry_hedge"] == 0.0
        assert additivity_residual(trace.rt, bd) == 0.0
        assert trace.attempts == 1

    def test_retry_hedge_is_win_minus_first_send(self):
        trace = Trace(0, "default", 0.0)
        trace.add(K_NET_REQUEST, 0.010, 0.011, seq=0, attempt=0, shard=2)
        trace.point(K_RETRY, 0.020, seq=0, attempt=1, shard=2)
        trace.add(K_NET_REQUEST, 0.020, 0.021, seq=0, attempt=1, shard=2)
        trace.note_win(_Win(seq=0, attempt=1, shard_id=2, replica=1))
        trace.rt = 0.030
        trace.add(K_ROOT, 0.0, trace.rt)
        bd = attribute(trace)
        assert bd["retry_hedge"] == pytest.approx(0.010)
        assert trace.attempts == 2
        assert additivity_residual(trace.rt, bd) == 0.0

    def test_empty_trace_is_all_driver(self):
        trace = Trace(0, "default", 0.0)
        trace.rt = 0.007
        trace.add(K_ROOT, 0.0, trace.rt)
        bd = attribute(trace)
        assert bd["driver"] == 0.007
        assert additivity_residual(trace.rt, bd) == 0.0


# Randomized span soups: any combination of kinds, seqs, attempts, and
# crit stamps must satisfy exact additivity — the residual category
# construction guarantees it by algebra, the test guards the
# implementation (ordering, category coverage) against drift.
_span_strategy = st.tuples(
    st.integers(min_value=0, max_value=len(KIND_NAMES) - 1),   # kind
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),  # start
    st.floats(min_value=0.0, max_value=0.5, allow_nan=False),   # duration
    st.integers(min_value=-1, max_value=4),                     # seq
    st.integers(min_value=-1, max_value=3),                     # attempt
    st.floats(min_value=0.0, max_value=0.01, allow_nan=False),  # work
)


@settings(max_examples=200, deadline=None)
@given(spans=st.lists(_span_strategy, max_size=40),
       rt=st.floats(min_value=1e-6, max_value=10.0, allow_nan=False),
       crit_seq=st.integers(min_value=-1, max_value=4),
       crit_attempt=st.integers(min_value=-1, max_value=3))
def test_additivity_is_float_exact_on_random_traces(spans, rt, crit_seq,
                                                    crit_attempt):
    trace = Trace(0, "default", 0.0)
    for kind, start, duration, seq, attempt, work in spans:
        trace.add(kind, start, start + duration, seq=seq, attempt=attempt,
                  work=work, shard=seq, replica=0)
    trace.crit_seq = crit_seq
    trace.crit_attempt = crit_attempt
    trace.rt = rt
    trace.add(K_ROOT, 0.0, rt)
    breakdown = attribute(trace)
    assert set(breakdown) == set(CATEGORIES)
    assert additivity_residual(rt, breakdown) == 0.0  # exact, not approx


def _synthetic_tracer(seed=5, n=40, keep=3):
    """A tracer filled with randomized finished traces (plain seeded
    loop; mirrors what a real run produces, minus the simulator)."""
    rng = random.Random(seed)
    tracer = Tracer(random.Random(seed + 1), sample_rate=0.5,
                    keep_exemplars=keep)
    for i in range(n):
        klass = rng.choice(["lfan", "sfan"])
        start = rng.uniform(0.0, 5.0)
        trace = tracer.begin(klass, start)
        for _ in range(rng.randrange(0, 12)):
            kind = rng.randrange(len(KIND_NAMES))
            s = start + rng.uniform(0.0, 0.01)
            trace.add(kind, s, s + rng.uniform(0.0, 0.005),
                      seq=rng.randrange(-1, 3),
                      attempt=rng.randrange(0, 2),
                      work=rng.uniform(0.0, 0.001),
                      shard=rng.randrange(0, 4),
                      replica=rng.randrange(0, 2),
                      flags=rng.choice([0, 0, 0, FLAG_SYNTHESIZED]))
        trace.note_win(_Win(seq=rng.randrange(0, 3), attempt=0,
                            shard_id=rng.randrange(0, 4),
                            replica=rng.randrange(0, 2)))
        tracer.finish(trace, rt=rng.uniform(1e-4, 0.05))
    return tracer


class TestExport:
    def test_summary_shape(self):
        summary = build_summary(_synthetic_tracer())
        assert summary["kinds"] == list(KIND_NAMES)
        assert summary["categories"] == list(CATEGORIES)
        for entry in summary["classes"].values():
            assert set(entry) == {"count", "rt_sum", "breakdown",
                                  "exemplars"}
            assert len(entry["exemplars"]) <= 3
            for exemplar in entry["exemplars"]:
                assert additivity_residual(
                    exemplar["rt"], exemplar["breakdown"]) == 0.0

    def test_columnar_round_trip_is_exact(self):
        summary = build_summary(_synthetic_tracer())
        structure, floats = summary_columns(summary)
        assert summary_from_columns(structure, list(floats)) == summary

    def test_columnar_round_trip_empty_summary(self):
        tracer = Tracer(random.Random(1))
        summary = build_summary(tracer)
        structure, floats = summary_columns(summary)
        assert floats == []
        assert summary_from_columns(structure, floats) == summary

    def test_chrome_trace_schema(self):
        summary = build_summary(_synthetic_tracer())
        doc = chrome_trace({"run#000": summary})
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert events, "exemplars must render events"
        kinds = set(KIND_NAMES) | {"process_name", "thread_name"}
        for event in events:
            assert event["ph"] in ("M", "X", "i")
            assert event["name"] in kinds
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            if event["ph"] == "X":
                assert event["dur"] > 0
                assert event["ts"] >= 0
            if event["ph"] == "i":
                assert event["s"] == "t"

    def test_chrome_trace_deterministic_label_order(self):
        summary = build_summary(_synthetic_tracer())
        a = chrome_trace({"b": summary, "a": summary})
        b = chrome_trace({"a": summary, "b": summary})
        assert a == b  # labels sorted, not insertion-ordered
