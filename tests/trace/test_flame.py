"""Unit tests for the cross-request flame aggregation
(:mod:`repro.trace.flame`): fold rules, prefix-rollup totals, the
columnar transport codec, and both exporters against the schema
validators."""

import random

from repro.trace import (FRAME_NAMES, F_SUBQUERY, FlameAccumulator,
                         K_HEDGE, K_NET_REQUEST, K_PARSE, K_RETRY,
                         K_ROOT, K_SERVICE, KIND_NAMES, Tracer,
                         build_flame, collapsed_stacks, flame_columns,
                         flame_from_columns, merge_flames,
                         speedscope_doc, write_flame)
from repro.trace.schema import (check_collapsed, check_path,
                                check_speedscope)


def _folded_trace(tracer, acc, phase="measure", klass="default"):
    """One trace covering every fold rule."""
    trace = tracer.begin(klass, now=1.0)
    trace.add(K_PARSE, 1.0, 1.001)                       # seq<0: request
    trace.add(K_SERVICE, 1.001, 1.003, seq=0, attempt=0)  # subquery
    trace.add(K_SERVICE, 1.003, 1.007, seq=1, attempt=1)  # retry attempt
    trace.add(K_SERVICE, 1.003, 1.005, seq=2, attempt=-1)  # hedged dup
    trace.point(K_RETRY, 1.003, seq=1, attempt=1)         # point marker
    acc.fold(trace, phase)
    return trace


class TestFold:
    def test_fold_rules_route_spans_to_expected_paths(self):
        tracer = Tracer(random.Random(1), sample_rate=1.0)
        acc = FlameAccumulator()
        _folded_trace(tracer, acc)
        table = acc.tables()[("default", "measure")]
        assert table[(K_ROOT, K_PARSE)] == [1.0, 1.001 - 1.0]
        assert table[(K_ROOT, F_SUBQUERY, K_SERVICE)] == [1.0, 1.003 - 1.001]
        assert (table[(K_ROOT, F_SUBQUERY, K_RETRY, K_SERVICE)]
                == [1.0, 1.007 - 1.003])
        assert (table[(K_ROOT, F_SUBQUERY, K_HEDGE, K_SERVICE)]
                == [1.0, 1.005 - 1.003])
        # The point marker is a count-only leaf.
        assert table[(K_ROOT, F_SUBQUERY, K_RETRY)] == [1.0, 0.0]

    def test_self_weights_accumulate_exact_float_sums(self):
        acc = FlameAccumulator()
        tracer = Tracer(random.Random(1), sample_rate=1.0)
        tracer.flame = acc
        durations = [0.1, 0.2, 0.3, 0.07]
        expected = 0.0
        for d in durations:
            trace = tracer.begin("default", now=0.0)
            trace.add(K_SERVICE, 0.0, d, seq=0, attempt=0)
            acc.fold(trace, "measure")
            expected += d
        table = acc.tables()[("default", "measure")]
        node = table[(K_ROOT, F_SUBQUERY, K_SERVICE)]
        assert node[0] == float(len(durations))
        assert node[1] == expected  # exact float sum, same add order

    def test_root_span_is_structural_zero_weight(self):
        acc = FlameAccumulator()
        tracer = Tracer(random.Random(1), sample_rate=1.0)
        trace = tracer.begin("default", now=0.0)
        trace.add(K_ROOT, 0.0, 5.0)
        acc.fold(trace, "measure")
        assert acc.tables()[("default", "measure")][(K_ROOT,)] == [1.0, 0.0]

    def test_tracer_finish_streams_into_flame(self):
        tracer = Tracer(random.Random(1), sample_rate=1.0)
        tracer.flame = FlameAccumulator()
        phases = []
        tracer.phase_of = lambda t: phases.append(t) or "warmup"
        trace = tracer.begin("default", now=2.5)
        trace.add(K_SERVICE, 2.5, 2.6, seq=0, attempt=0)
        tracer.finish(trace, rt=0.2)
        assert phases == [2.5]  # hook sees the request *start* time
        assert ("default", "warmup") in tracer.flame.tables()

    def test_tracer_reset_keeps_flame(self):
        tracer = Tracer(random.Random(1), sample_rate=1.0)
        tracer.flame = FlameAccumulator()
        trace = tracer.begin("default", now=0.1)
        tracer.finish(trace, rt=0.01)
        tracer.reset(0.3)
        assert tracer.flame  # warmup folds survive the window reset


class TestBuildFlame:
    def test_totals_roll_up_strict_prefixes(self):
        acc = FlameAccumulator()
        tracer = Tracer(random.Random(1), sample_rate=1.0)
        trace = tracer.begin("default", now=0.0)
        trace.add(K_SERVICE, 0.0, 1.0, seq=0, attempt=0)
        trace.add(K_SERVICE, 0.0, 2.0, seq=1, attempt=1)
        trace.add(K_ROOT, 0.0, 3.0)
        acc.fold(trace, "measure")
        flame = build_flame(acc)
        entry = flame["tables"]["default"]["measure"]
        rows = {tuple(p): (s, t) for p, s, t in
                zip(entry["paths"], entry["self"], entry["total"])}
        # root: self 0, total = every deeper self.
        assert rows[(K_ROOT,)] == (0.0, 3.0)
        # subquery retry parent rolls up its leaf.
        assert rows[(K_ROOT, F_SUBQUERY, K_RETRY, K_SERVICE)] == (2.0, 2.0)
        assert rows[(K_ROOT, F_SUBQUERY, K_SERVICE)] == (1.0, 1.0)

    def test_sibling_kinds_do_not_cross_roll(self):
        # service (index 9) and server_queue (index 8): sorted adjacency
        # must not treat one as the other's ancestor.
        acc = FlameAccumulator()
        tracer = Tracer(random.Random(1), sample_rate=1.0)
        trace = tracer.begin("default", now=0.0)
        from repro.trace import K_SERVER_QUEUE
        trace.add(K_SERVER_QUEUE, 0.0, 1.0, seq=0, attempt=0)
        trace.add(K_SERVICE, 1.0, 3.0, seq=0, attempt=0)
        acc.fold(trace, "measure")
        entry = build_flame(acc)["tables"]["default"]["measure"]
        rows = {tuple(p): t for p, t in
                zip(entry["paths"], entry["total"])}
        assert rows[(K_ROOT, F_SUBQUERY, K_SERVER_QUEUE)] == 1.0
        assert rows[(K_ROOT, F_SUBQUERY, K_SERVICE)] == 2.0

    def test_canonical_regardless_of_fold_order(self):
        def build(order):
            acc = FlameAccumulator()
            tracer = Tracer(random.Random(1), sample_rate=1.0)
            for klass, phase, dur in order:
                trace = tracer.begin(klass, now=0.0)
                trace.add(K_SERVICE, 0.0, dur, seq=0, attempt=0)
                acc.fold(trace, phase)
            return build_flame(acc)

        rows = [("b", "measure", 0.25), ("a", "warmup", 0.5),
                ("a", "measure", 0.125)]
        assert build(rows) == build(list(reversed(rows)))

    def test_frames_vocabulary(self):
        flame = build_flame(FlameAccumulator())
        assert flame["frames"] == list(KIND_NAMES) + ["subquery"]
        assert flame["frames"][F_SUBQUERY] == "subquery"
        assert tuple(flame["frames"]) == FRAME_NAMES


class TestColumns:
    def _flame(self):
        acc = FlameAccumulator()
        tracer = Tracer(random.Random(3), sample_rate=1.0)
        for i in range(5):
            trace = tracer.begin("Lfan" if i % 2 else "Sfan", now=0.0)
            trace.add(K_PARSE, 0.0, 0.001 * (i + 1))
            trace.add(K_SERVICE, 0.0, 0.002 * (i + 1), seq=0, attempt=0)
            trace.add(K_NET_REQUEST, 0.0, 0.003, seq=1, attempt=-1)
            acc.fold(trace, "measure" if i < 3 else "measure+slow")
        return build_flame(acc)

    def test_roundtrip_is_exact_identity(self):
        flame = self._flame()
        structure, floats = flame_columns(flame)
        assert flame_from_columns(structure, floats) == flame

    def test_structure_carries_no_floats(self):
        flame = self._flame()
        structure, floats = flame_columns(flame)
        n_paths = sum(len(entry["paths"])
                      for phases in flame["tables"].values()
                      for entry in phases.values())
        assert len(floats) == 3 * n_paths
        assert "count" not in str(structure)


class TestExporters:
    def _flames(self):
        acc = FlameAccumulator()
        tracer = Tracer(random.Random(3), sample_rate=1.0)
        trace = tracer.begin("default", now=0.0)
        trace.add(K_PARSE, 0.0, 0.004)
        trace.add(K_SERVICE, 0.0, 0.002, seq=0, attempt=0)
        trace.add(K_ROOT, 0.0, 0.006)
        acc.fold(trace, "measure")
        return {"run": build_flame(acc)}

    def test_collapsed_valid_and_skips_zero_weight(self):
        text = collapsed_stacks(self._flames())
        check_collapsed(text)
        lines = text.strip().splitlines()
        # root is structural (zero self): only the two leaves survive.
        assert len(lines) == 2
        assert "run;default;measure;root;parse 4000" in lines
        assert ("run;default;measure;root;subquery;service 2000"
                in lines)

    def test_speedscope_valid(self):
        doc = speedscope_doc(self._flames())
        check_speedscope(doc)
        assert len(doc["profiles"]) == 1
        profile = doc["profiles"][0]
        assert profile["endValue"] == sum(profile["weights"])

    def test_empty_flames_export_cleanly(self):
        assert collapsed_stacks({}) == ""
        assert speedscope_doc({})["profiles"] == []

    def test_merge_flames_drops_none(self):
        flame = self._flames()["run"]
        merged = merge_flames({"a": None, "b": flame})
        assert list(merged) == ["b"]

    def test_write_flame_formats_and_parent_dirs(self, tmp_path):
        flames = self._flames()
        nested = tmp_path / "deep" / "dir" / "flame.json"
        assert write_flame(str(nested), flames) == "speedscope"
        assert check_path(str(nested)).startswith("speedscope")
        collapsed = tmp_path / "flame.collapsed"
        assert write_flame(str(collapsed), flames) == "collapsed"
        assert check_path(str(collapsed)).startswith("collapsed")
