"""Behavioural tests for the four baseline server architectures.

Each server is driven end-to-end by a small closed-loop workload; the
assertions cover both functional correctness (every request completes,
byte counts add up) and the architecture-specific structure (threads,
selectors, pools) the paper distinguishes them by.
"""

import pytest

from repro.drivers.aio_backend import AioBackendServer
from repro.drivers.base import RequestState, default_op_rule
from repro.drivers.netty_backend import NettyBackendServer
from repro.drivers.threadbased import ThreadBasedServer
from repro.drivers.type1 import Type1AsyncServer
from repro.datastore.cluster import DatastoreCluster
from repro.messages import HttpRequest
from repro.sim.kernel import Simulator
from repro.sim.metrics import Metrics
from repro.sim.params import CostParams
from repro.sim.rng import RngStreams
from repro.workload.closed_loop import ClosedLoopWorkload
from repro.workload.profiles import uniform_profile

SERVER_CLASSES = [ThreadBasedServer, Type1AsyncServer, AioBackendServer,
                  NettyBackendServer]


def drive(server_cls, fanout=3, response_size=100, concurrency=4,
          until=0.5, seed=42, **server_kw):
    sim = Simulator()
    metrics = Metrics()
    params = CostParams()
    rng = RngStreams(seed)
    cluster = DatastoreCluster(sim, metrics, params, rng, n_shards=5)
    server = server_cls(sim, metrics, params, cluster, rng, **server_kw)
    server.start()
    profile = uniform_profile(fanout, response_size)
    workload = ClosedLoopWorkload(sim, metrics, params, server, profile,
                                  concurrency, rng)
    workload.start()
    sim.run(until=until)
    return sim, metrics, server


class TestRequestState:
    def test_absorb_counts_down(self):
        req = HttpRequest(fanout=3, response_size=100)
        state = RequestState(req, conn=None, now=0.0)
        assert not state.absorb(100, 0.1)
        assert not state.absorb(100, 0.2)
        assert state.absorb(100, 0.3)
        assert state.complete
        assert state.total_bytes == 300
        assert state.first_response_at == 0.1

    def test_over_absorb_rejected(self):
        req = HttpRequest(fanout=1, response_size=100)
        state = RequestState(req, conn=None, now=0.0)
        state.absorb(100, 0.1)
        with pytest.raises(RuntimeError):
            state.absorb(100, 0.2)


class TestOpRule:
    def test_paper_threshold(self):
        assert default_op_rule(100) == "get"
        assert default_op_rule(1024) == "get"
        assert default_op_rule(1025) == "scan"
        assert default_op_rule(20 * 1024) == "scan"


@pytest.mark.parametrize("server_cls", SERVER_CLASSES)
class TestAllServers:
    def test_completes_requests(self, server_cls):
        _sim, metrics, _server = drive(server_cls)
        assert metrics.raw_count("client.completed") > 10

    def test_every_fanout_query_answered(self, server_cls):
        _sim, metrics, _server = drive(server_cls, fanout=3)
        completed = metrics.raw_count("server.completed")
        responses = metrics.raw_count("server.fanout_responses")
        # Responses processed >= 3 per completed request (in-flight
        # requests may have partial counts).
        assert responses >= 3 * completed > 0

    def test_response_payload_accumulates(self, server_cls):
        sim = Simulator()
        metrics = Metrics()
        params = CostParams()
        rng = RngStreams(1)
        cluster = DatastoreCluster(sim, metrics, params, rng, n_shards=4)
        server = server_cls(sim, metrics, params, cluster, rng)
        server.start()
        conn = server.accept_client()
        from repro.sim.network import QueueEndpoint
        from repro.sim.resources import Queue
        inbox = Queue(sim)
        conn.attach("a", QueueEndpoint(inbox))

        request = HttpRequest(fanout=4, response_size=250)

        def client():
            yield from conn.send(None, request, request.wire_size, to_side="b")
            response = yield inbox.get()
            return response

        p = sim.process(client())
        sim.run(until=2.0)
        assert p.ok
        assert p.value.payload_size == 4 * 250
        assert p.value.request_id == request.request_id

    def test_deterministic(self, server_cls):
        a = drive(server_cls, seed=5)[1].raw_count("client.completed")
        b = drive(server_cls, seed=5)[1].raw_count("client.completed")
        assert a == b


class TestArchitectureStructure:
    def test_threadbased_one_thread_per_connection(self):
        _sim, _m, server = drive(ThreadBasedServer, concurrency=7)
        assert server.worker_threads == 7
        assert server.selectors() == []

    def test_type1_uses_fixed_pool(self):
        _sim, metrics, server = drive(Type1AsyncServer)
        assert server.workers.worker_count == CostParams().type1_pool_size
        assert metrics.raw_count(
            f"pool.{server.workers.name}.completed") > 0
        assert len(server.selectors()) == 1

    def test_aio_spawns_and_reaps_workers(self):
        _sim, metrics, server = drive(AioBackendServer, until=1.0)
        assert metrics.raw_count(f"pool.{server.pool.name}.spawned") >= 1
        assert len(server.selectors()) == 2

    def test_netty_reactor_split(self):
        _sim, _m, server = drive(NettyBackendServer, backend_reactors=3)
        assert len(server.backend_selectors) == 3
        assert len(server.selectors()) == 4
        with pytest.raises(ValueError):
            drive(NettyBackendServer, backend_reactors=0)

    def test_netty_partitions_shards_across_backends(self):
        _sim, _m, server = drive(NettyBackendServer, backend_reactors=2)
        # Shard i lives on backend i mod 2: verify via channel contexts.
        assert len(server._downstream) == 5

    def test_threadbased_blocking_futex_overhead(self):
        """Thread-based servers pay the blocking-wake (lock) overhead
        the paper's Table 1 attributes to them."""
        _sim, metrics, _server = drive(ThreadBasedServer)
        assert metrics.cpu.busy_by_category["lock"] > 0

    def test_netty_pays_select_not_lock(self):
        _sim, metrics, _server = drive(NettyBackendServer)
        assert metrics.cpu.busy_by_category["select"] > 0
        assert metrics.cpu.busy_by_category.get("lock", 0.0) == 0.0
