"""Unit tests for the synchronous connection pool."""

import pytest

from repro.datastore.cluster import DatastoreCluster
from repro.drivers.conn_pool import SyncConnectionPool
from repro.messages import Query
from repro.sim.cpu import Cpu
from repro.sim.kernel import Simulator
from repro.sim.metrics import Metrics
from repro.sim.params import CostParams
from repro.sim.rng import RngStreams
from repro.sim.threads import SimThread


@pytest.fixture
def env():
    sim = Simulator()
    metrics = Metrics()
    params = CostParams()
    rng = RngStreams(42)
    cluster = DatastoreCluster(sim, metrics, params, rng, n_shards=3)
    cpu = Cpu(sim, metrics, params)
    pool = SyncConnectionPool(sim, cpu, metrics, params, cluster, name="cp")
    return sim, metrics, params, cpu, cluster, pool


class TestSyncConnectionPool:
    def test_checkout_creates_then_reuses(self, env):
        sim, metrics, _p, cpu, _cluster, pool = env
        thread = SimThread(cpu)

        def proc():
            pair = yield from pool.checkout(thread, 0)
            yield from pool.checkin(thread, 0, pair)
            pair2 = yield from pool.checkout(thread, 0)
            return pair is pair2

        p = sim.process(proc())
        sim.run(until=1.0)
        assert p.value is True
        assert pool.created == 1
        assert metrics.raw_count("pool.cp.created") == 1
        assert metrics.raw_count("pool.cp.reused") == 1

    def test_pool_grows_under_concurrency(self, env):
        sim, _m, _p, cpu, _cluster, pool = env
        done = []

        def proc(i):
            thread = SimThread(cpu, f"t{i}")
            query = Query(request_id=i, shard_id=0, op="get",
                          response_size=100)
            response = yield from pool.sync_query(thread, query)
            done.append(response.request_id)

        for i in range(4):
            sim.process(proc(i))
        sim.run(until=2.0)
        assert sorted(done) == [0, 1, 2, 3]
        # Concurrent queries to one shard need distinct connections.
        assert pool.created >= 2

    def test_sync_query_roundtrip(self, env):
        sim, metrics, _p, cpu, _cluster, pool = env
        thread = SimThread(cpu)
        query = Query(request_id=9, shard_id=2, op="get", response_size=128)

        def proc():
            response = yield from pool.sync_query(thread, query)
            return response

        p = sim.process(proc())
        sim.run(until=2.0)
        assert p.value.payload_size == 128
        assert p.value.shard_id == 2

    def test_per_shard_free_lists(self, env):
        sim, _m, _p, cpu, _cluster, pool = env
        thread = SimThread(cpu)

        def proc():
            a = yield from pool.checkout(thread, 0)
            b = yield from pool.checkout(thread, 1)
            yield from pool.checkin(thread, 0, a)
            yield from pool.checkin(thread, 1, b)
            # Shard 1's free connection must not satisfy shard 0.
            c = yield from pool.checkout(thread, 0)
            return c is a

        p = sim.process(proc())
        sim.run(until=1.0)
        assert p.value is True
        assert pool.created == 2
