"""Unit tests for the Prometheus text-exposition exporter."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.obs import (prometheus_snapshot, render_prometheus,
                       write_prometheus)
from repro.trace.schema import SchemaError, check_prometheus


def _result(**kw):
    return run_experiment(ExperimentConfig(
        concurrency=4, n_shards=4, fanout=2, warmup=0.1, duration=0.2,
        seed=13, **kw))


class TestSnapshot:
    def test_valid_and_labelled(self):
        snapshot = prometheus_snapshot(_result(obs=True), label="runA")
        check_prometheus(snapshot)
        assert 'run="runA"' in snapshot
        assert 'config="doubleface"' in snapshot
        assert "# TYPE repro_throughput_rps gauge" in snapshot
        assert "# TYPE repro_response_time_seconds summary" in snapshot
        assert 'quantile="0.99"' in snapshot
        assert "repro_telemetry_gauge" in snapshot
        assert 'phase="measure"' in snapshot

    def test_without_obs_omits_gauge_family(self):
        snapshot = prometheus_snapshot(_result(), label="runB")
        check_prometheus(snapshot)
        assert "repro_telemetry_gauge" not in snapshot
        # No trace/obs → no phase windows either.
        assert "repro_phase_seconds" not in snapshot

    def test_values_survive_float_roundtrip(self):
        result = _result(obs=True)
        snapshot = prometheus_snapshot(result)
        for line in snapshot.splitlines():
            if line.startswith("repro_throughput_rps"):
                assert float(line.rpartition(" ")[2]) == result.throughput
                break
        else:  # pragma: no cover - family is always emitted
            pytest.fail("no throughput sample found")

    def test_label_escaping(self):
        result = _result()
        result.config.label = 'we"ird\\label'
        snapshot = prometheus_snapshot(result)
        check_prometheus(snapshot)
        assert '\\"' in snapshot

    def test_deterministic_across_runs(self):
        assert (prometheus_snapshot(_result(obs=True), label="x")
                == prometheus_snapshot(_result(obs=True), label="x"))


class TestWrite:
    def test_render_sorts_keys(self):
        page = render_prometheus({"b": "# TYPE b gauge\nb 2\n",
                                  "a": "# TYPE a gauge\na 1\n"})
        assert page.index("a 1") < page.index("b 2")

    def test_write_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "prom.txt"
        write_prometheus(str(path), {
            "run": prometheus_snapshot(_result(obs=True), label="run")})
        check_prometheus(path.read_text())

    def test_schema_rejects_corruption(self, tmp_path):
        snapshot = prometheus_snapshot(_result(obs=True))
        broken = snapshot.replace("# TYPE", "# NOPE")
        with pytest.raises(SchemaError):
            check_prometheus(broken)
