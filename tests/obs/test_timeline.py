"""Unit tests for the telemetry layer: :class:`GaugeBoard`,
:meth:`Simulator.call_every`, and the :class:`TelemetryTicker` on a
real run."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.obs import DEFAULT_OBS_PERIOD, TelemetryTicker
from repro.sim.kernel import Simulator
from repro.sim.metrics import GaugeBoard


class TestGaugeBoard:
    def test_append_and_views(self):
        board = GaugeBoard(["a", "b"])
        board.append(0.1, [1.0, 2.0])
        board.append(0.2, [3.0, 4.0])
        assert len(board) == 2
        assert list(board.times) == [0.1, 0.2]
        assert list(board.column("a")) == [1.0, 3.0]
        assert list(board.column("b")) == [2.0, 4.0]
        assert list(board.as_dict()) == ["a", "b"]

    def test_value_count_must_match(self):
        board = GaugeBoard(["a", "b"])
        with pytest.raises(ValueError):
            board.append(0.1, [1.0])

    def test_time_must_not_go_backwards(self):
        board = GaugeBoard(["a"])
        board.append(0.2, [1.0])
        with pytest.raises(ValueError):
            board.append(0.1, [2.0])


class TestCallEvery:
    def test_fires_at_fixed_period(self):
        sim = Simulator()
        seen = []
        sim.call_every(0.25, seen.append)
        sim.run(until=1.0)
        assert seen == [0.25, 0.5, 0.75, 1.0]

    def test_period_must_be_positive_finite(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.call_every(0.0, lambda now: None)
        with pytest.raises(ValueError):
            sim.call_every(float("inf"), lambda now: None)


class TestTicker:
    def _run(self, **kw):
        return run_experiment(ExperimentConfig(
            concurrency=4, n_shards=4, fanout=2, warmup=0.1,
            duration=0.2, seed=13, obs=True, **kw))

    def test_result_carries_full_series(self):
        result = self._run(obs_period=0.01)
        # ~30 ticks over warmup+window (workload drains at the end).
        assert len(result.obs_times) >= 25
        assert len(result.obs_values) == len(result.obs_names)
        assert all(len(col) == len(result.obs_times)
                   for col in result.obs_values)
        times = list(result.obs_times)
        assert times == sorted(times)
        gauges = result.obs_gauges
        assert set(gauges) == set(result.obs_names)

    def test_base_gauge_vocabulary(self):
        result = self._run()
        names = result.obs_names
        assert names[:4] == ("cpu.runnable", "retry.rate", "hedge.rate",
                             "queued.total")
        assert [n for n in names if n.startswith("queued.shard")] == [
            f"queued.shard{i}" for i in range(4)]
        # Single-replica primary routing: no selector gauges.
        assert not any(n.startswith(("outstanding.", "ewma."))
                       for n in names)

    def test_ewma_gauges_appear_with_policy(self):
        result = self._run(replicas_per_shard=2, replica_policy="ewma")
        assert "ewma.shard0.r0" in result.obs_names
        assert "ewma.shard3.r1" in result.obs_names

    def test_outstanding_gauges_appear_with_policy(self):
        result = self._run(replicas_per_shard=2,
                           replica_policy="least_outstanding")
        assert "outstanding.shard0" in result.obs_names
        assert not any(n.startswith("ewma.") for n in result.obs_names)

    def test_defaults_off_records_nothing(self):
        result = run_experiment(ExperimentConfig(
            concurrency=4, n_shards=4, fanout=2, warmup=0.1,
            duration=0.2, seed=13))
        assert result.obs_names == ()
        assert len(result.obs_times) == 0
        assert result.phases == []
        assert result.flame is None

    def test_bad_period_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(obs_period=0.0)
        sim = Simulator()
        with pytest.raises(ValueError):
            TelemetryTicker.__new__(TelemetryTicker).__init__(
                sim, None, None, period=-1.0)

    def test_default_period_constant(self):
        assert DEFAULT_OBS_PERIOD == 0.01
