"""Observability invariants on real runs (the PR's acceptance bars):

- an observed run (tracing + flame + telemetry) reports measured
  results **float-identical** to the same run unobserved;
- the flame aggregation, gauge series, and phase windows are pure
  functions of the seed: identical across ``jobs=1`` / ``jobs=4`` and
  across the shm / pickle transports.
"""

from dataclasses import replace

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import run_experiments
from repro.experiments.runner import run_experiment
from repro.experiments.transport import shm_available
from repro.faults import FaultConfig, ResilienceConfig


def _base(seed=17, **kw):
    return ExperimentConfig(
        server="doubleface", concurrency=6, n_shards=5, fanout=3,
        warmup=0.1, duration=0.25, seed=seed, **kw)


def _observed(config):
    return replace(config, trace=True, trace_sample=0.5, obs=True,
                   obs_period=0.01)


def _faulted(seed=17):
    return _base(
        seed=seed,
        faults=FaultConfig(slow_shards=2, slow_factor=10.0,
                           slow_mean_on=0.08, slow_mean_off=0.1),
        resilience=ResilienceConfig(hedge_delay=0.02, max_retries=1,
                                    subquery_deadline=0.15),
        replicas_per_shard=2, replica_policy="ewma")


def _measured(result):
    return (result.throughput, result.mean_rt, result.percentiles,
            result.class_percentiles, result.cpu_utilization,
            result.cpu_shares, result.ctx_switches_per_sec,
            result.avg_running_threads, result.selects_per_sec,
            result.completed, result.fault_counters,
            result.hedge_delays)


def _observed_outputs(result):
    return (result.obs_names, list(result.obs_times),
            [list(col) for col in result.obs_values],
            result.phases, result.flame)


class TestObservationOnly:
    def test_healthy_run_measures_identical(self):
        plain = run_experiment(_base())
        observed = run_experiment(_observed(_base()))
        assert _measured(plain) == _measured(observed)

    def test_faulted_run_measures_identical(self):
        plain = run_experiment(_faulted())
        observed = run_experiment(_observed(_faulted()))
        assert _measured(plain) == _measured(observed)
        # The observed run actually observed something.
        assert observed.flame is not None
        assert len(observed.obs_times) > 10
        assert any(name.startswith("fault:slow:")
                   for name, _s, _e in observed.phases)

    def test_trace_only_still_builds_flame_and_phases(self):
        result = run_experiment(replace(_base(), trace=True,
                                        trace_sample=0.5))
        assert result.flame is not None
        assert result.phases[0] == ("warmup", 0.0, 0.1)
        assert result.obs_names == ()


class TestSeedDeterminism:
    def test_jobs_1_vs_jobs_4_identical(self):
        configs = [_observed(_faulted(seed=s)) for s in (17, 18, 19)]
        serial = run_experiments(configs, jobs=1)
        fanned = run_experiments(
            [_observed(_faulted(seed=s)) for s in (17, 18, 19)], jobs=4)
        for a, b in zip(serial, fanned):
            assert _measured(a) == _measured(b)
            assert _observed_outputs(a) == _observed_outputs(b)

    @pytest.mark.skipif(not shm_available(),
                        reason="shared memory unavailable")
    def test_shm_vs_pickle_identical(self):
        shm = run_experiments([_observed(_faulted())], jobs=2,
                              transport="shm")
        pickled = run_experiments([_observed(_faulted())], jobs=2,
                                  transport="pickle")
        assert _measured(shm[0]) == _measured(pickled[0])
        assert _observed_outputs(shm[0]) == _observed_outputs(pickled[0])

    def test_same_seed_same_observations(self):
        a = run_experiment(_observed(_faulted()))
        b = run_experiment(_observed(_faulted()))
        assert _observed_outputs(a) == _observed_outputs(b)

    def test_different_seed_different_observations(self):
        a = run_experiment(_observed(_faulted(seed=17)))
        b = run_experiment(_observed(_faulted(seed=99)))
        assert _observed_outputs(a) != _observed_outputs(b)
