"""Unit tests for the attribution digest (repro.faults.digest)."""

import pytest

from repro.faults.digest import AttemptDigest, nearest_rank


class TestNearestRank:
    """``ceil(n * p / 100) - 1``, clamped — the corrected nearest-rank
    index the resilience policy and the digest share."""

    @pytest.mark.parametrize("n,p,expected", [
        (1, 50.0, 0),
        (1, 100.0, 0),
        (2, 50.0, 0),     # the old int(n*p/100) returned 1 (the max)
        (2, 100.0, 1),
        (10, 90.0, 8),
        (10, 95.0, 9),
        (100, 95.0, 94),
        (100, 100.0, 99),
        (5, 0.0, 0),
    ])
    def test_ranks(self, n, p, expected):
        assert nearest_rank(n, p) == expected

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            nearest_rank(0, 50.0)


class TestAttemptDigest:
    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            AttemptDigest(window=0)

    def test_cold_shard_returns_none(self):
        digest = AttemptDigest()
        assert digest.percentile(3, 0, 95.0, min_samples=1) is None
        assert digest.shard_percentile(3, 95.0, min_samples=1) is None
        assert digest.learned_delays(95.0, min_samples=1) == {}

    def test_pair_percentile_prefers_own_ring(self):
        digest = AttemptDigest()
        for _ in range(4):
            digest.observe(0, 0, 1e-3)
            digest.observe(0, 1, 9e-3)
        assert digest.percentile(0, 0, 50.0, min_samples=4) \
            == pytest.approx(1e-3)
        assert digest.percentile(0, 1, 50.0, min_samples=4) \
            == pytest.approx(9e-3)

    def test_cold_pair_falls_back_to_shard_merge(self):
        digest = AttemptDigest()
        for _ in range(8):
            digest.observe(0, 0, 2e-3)
        # Replica 1 has no samples of its own; the merged shard view
        # answers for it.
        assert digest.percentile(0, 1, 50.0, min_samples=4) \
            == pytest.approx(2e-3)

    def test_min_samples_gates_per_pair_and_per_shard(self):
        digest = AttemptDigest()
        digest.observe(0, 0, 1e-3)
        digest.observe(0, 1, 2e-3)
        # Each pair has 1 < 4 samples and the shard total (2) is still
        # short of min_samples=4.
        assert digest.percentile(0, 0, 50.0, min_samples=4) is None
        digest.observe(0, 0, 1e-3)
        digest.observe(0, 1, 2e-3)
        # Shard total reaches 4: the merged fallback now answers, even
        # though each pair alone is still cold.
        assert digest.percentile(0, 0, 50.0, min_samples=4) \
            == pytest.approx(1e-3)

    def test_ring_overwrites_oldest(self):
        digest = AttemptDigest(window=4)
        for _ in range(8):
            digest.observe(0, 0, 10e-3)
        for _ in range(4):
            digest.observe(0, 0, 1e-3)
        # The ring holds only the 4 newest values; the old 10 ms regime
        # has been fully evicted.
        assert digest.percentile(0, 0, 100.0, min_samples=4) \
            == pytest.approx(1e-3)

    def test_learned_delays_sorted_and_merged(self):
        digest = AttemptDigest()
        for _ in range(4):
            digest.observe(7, 0, 3e-3)
            digest.observe(2, 0, 1e-3)
            digest.observe(2, 1, 1e-3)
        delays = digest.learned_delays(50.0, min_samples=4)
        assert list(delays) == [2, 7]
        assert delays[2] == pytest.approx(1e-3)
        assert delays[7] == pytest.approx(3e-3)

    def test_shards_are_independent(self):
        digest = AttemptDigest()
        for _ in range(16):
            digest.observe(0, 0, 1e-3)
            digest.observe(1, 0, 8e-3)
        assert digest.percentile(0, 0, 95.0, min_samples=8) \
            == pytest.approx(1e-3)
        assert digest.percentile(1, 0, 95.0, min_samples=8) \
            == pytest.approx(8e-3)
        assert digest.observations == 32
