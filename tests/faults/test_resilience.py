"""Unit tests for ResilienceConfig / ResiliencePolicy.

The policy is exercised against stub connections and a stub cluster so
each watchdog path (deadline, retry, hedge, synthesised failure) can be
asserted in isolation; the integration tests in ``tests/experiments``
cover the policy wired into real servers.
"""

import pytest

from repro.faults import HEDGE_ATTEMPT, ResilienceConfig, ResiliencePolicy
from repro.messages import Query, QueryResponse
from repro.sim.kernel import Simulator
from repro.sim.metrics import Metrics
from repro.sim.rng import RngStreams


class FakeEndpoint:
    def __init__(self):
        self.delivered = []

    def deliver(self, message):
        self.delivered.append(message)


class FakeConn:
    _ids = iter(range(1, 10_000))

    def __init__(self):
        self.cid = next(self._ids)
        self.endpoint_a = FakeEndpoint()
        self.sent = []

    def transmit(self, message, size, to_side):
        self.sent.append(message)

    def attach(self, side, endpoint):
        setattr(self, f"endpoint_{side}", endpoint)


class FakeCluster:
    def __init__(self, replicas_per_shard=2):
        self.replicas_per_shard = replicas_per_shard
        self.opened = []

    def connect_shard(self, shard_id, replica=0):
        conn = FakeConn()
        self.opened.append((shard_id, replica))
        return conn


class FakeState:
    def __init__(self):
        self.session = None
        self.failed = 0


def make_policy(config, replicas=2):
    sim = Simulator()
    metrics = Metrics()
    cluster = FakeCluster(replicas_per_shard=replicas)
    policy = ResiliencePolicy(sim, metrics, config, RngStreams(42), cluster)
    return sim, metrics, cluster, policy


def make_query(seq=0, context=None):
    return Query(request_id=1, shard_id=3, op="get", response_size=100,
                 seq=seq, context=context)


def make_response(query, attempt=0, failed=False):
    return QueryResponse(request_id=query.request_id,
                         shard_id=query.shard_id,
                         payload_size=0 if failed else query.response_size,
                         seq=query.seq, context=query.context,
                         attempt=attempt, failed=failed)


class TestResilienceConfig:
    def test_default_is_inactive(self):
        assert not ResilienceConfig().active

    def test_activation(self):
        assert ResilienceConfig(subquery_deadline=1e-3).active
        assert ResilienceConfig(hedge_delay=1e-3).active
        assert ResilienceConfig(hedge_percentile=95.0).active

    @pytest.mark.parametrize("kwargs", [
        dict(subquery_deadline=-1.0),
        dict(max_retries=-1),
        dict(backoff_base=0.0),
        dict(backoff_base=2e-3, backoff_cap=1e-3),
        dict(backoff_jitter=1.0),
        dict(backoff_jitter=-0.1),
        dict(hedge_delay=-1e-3),
        dict(hedge_percentile=101.0),
        dict(hedge_min_samples=0),
        dict(hedge_policy="magic"),
        dict(hedge_policy="attribution"),  # needs hedge_percentile > 0
        dict(hedge_policy="attribution", hedge_percentile=95.0,
             digest_window=0),
        dict(hedge_policy="attribution", hedge_percentile=95.0,
             digest_min_samples=0),
    ])
    def test_validation_rejects(self, kwargs):
        with pytest.raises(ValueError):
            ResilienceConfig(**kwargs)


class TestDeadlineRetry:
    CONFIG = ResilienceConfig(subquery_deadline=1e-3, max_retries=2,
                              backoff_base=0.2e-3, backoff_cap=0.4e-3,
                              backoff_jitter=0.0)

    def test_response_before_deadline_wins_quietly(self):
        sim, metrics, _cluster, policy = make_policy(self.CONFIG)
        state = FakeState()
        policy.attach(state)
        conn = FakeConn()
        query = make_query(context=state)
        policy.arm(state, query, conn)
        assert policy.on_response(state, make_response(query))
        sim.run()
        assert metrics.raw_count("resilience.deadline_misses") == 0
        assert conn.sent == []

    def test_deadline_miss_retries_on_next_replica(self):
        sim, metrics, cluster, policy = make_policy(self.CONFIG)
        state = FakeState()
        policy.attach(state)
        conn = FakeConn()
        query = make_query(context=state)
        policy.arm(state, query, conn)
        sim.run(until=2e-3)
        assert metrics.raw_count("resilience.retries") == 1
        assert metrics.raw_count("resilience.failovers") == 1
        # The resend went out on a replica-1 connection, not the primary.
        assert conn.sent == []
        assert cluster.opened == [(query.shard_id, 1)]

    def test_retry_win_counted_and_duplicate_dropped(self):
        sim, metrics, _cluster, policy = make_policy(self.CONFIG)
        state = FakeState()
        policy.attach(state)
        query = make_query(context=state)
        policy.arm(state, query, FakeConn())
        sim.run(until=2e-3)  # one retry is in flight now
        retry_response = make_response(query, attempt=1)
        assert policy.on_response(state, retry_response)
        assert metrics.raw_count("resilience.retry_wins") == 1
        # The original response straggles in afterwards: stale.
        assert not policy.on_response(state, make_response(query))
        assert metrics.raw_count("resilience.duplicates") == 1

    def test_exhausted_retries_synthesise_failed_response(self):
        sim, metrics, _cluster, policy = make_policy(self.CONFIG)
        state = FakeState()
        policy.attach(state)
        conn = FakeConn()
        query = make_query(context=state)
        policy.arm(state, query, conn)
        sim.run()  # nothing ever answers
        assert metrics.raw_count("resilience.retries") == 2
        assert metrics.raw_count("resilience.failed_subqueries") == 1
        assert len(conn.endpoint_a.delivered) == 1
        synth = conn.endpoint_a.delivered[0]
        assert synth.failed and synth.payload_size == 0
        assert synth.seq == query.seq
        # Absorbing the synthetic response marks the request degraded.
        assert policy.on_response(state, synth)
        assert state.failed == 1

    def test_no_failover_keeps_primary(self):
        config = ResilienceConfig(subquery_deadline=1e-3, max_retries=1,
                                  backoff_base=0.2e-3, backoff_cap=0.4e-3,
                                  backoff_jitter=0.0, failover=False)
        sim, metrics, cluster, policy = make_policy(config)
        state = FakeState()
        policy.attach(state)
        conn = FakeConn()
        query = make_query(context=state)
        policy.arm(state, query, conn)
        sim.run(until=2e-3)
        assert len(conn.sent) == 1  # resend went back to the primary
        assert cluster.opened == []
        assert metrics.raw_count("resilience.failovers") == 0


class TestHedging:
    def test_fixed_hedge_fires_and_win_is_counted(self):
        config = ResilienceConfig(hedge_delay=1e-3)
        sim, metrics, cluster, policy = make_policy(config)
        state = FakeState()
        policy.attach(state)
        query = make_query(context=state)
        policy.arm(state, query, FakeConn())
        sim.run(until=2e-3)
        assert metrics.raw_count("resilience.hedges") == 1
        assert cluster.opened == [(query.shard_id, 1)]
        assert policy.on_response(state,
                                  make_response(query, attempt=HEDGE_ATTEMPT))
        assert metrics.raw_count("resilience.hedge_wins") == 1
        # The loser (original) is stale.
        assert not policy.on_response(state, make_response(query))

    def test_hedge_suppressed_by_early_response(self):
        config = ResilienceConfig(hedge_delay=1e-3)
        sim, metrics, _cluster, policy = make_policy(config)
        state = FakeState()
        policy.attach(state)
        query = make_query(context=state)
        policy.arm(state, query, FakeConn())
        assert policy.on_response(state, make_response(query))
        sim.run()
        assert metrics.raw_count("resilience.hedges") == 0

    def test_adaptive_hedge_warms_up_from_observations(self):
        config = ResilienceConfig(hedge_percentile=90.0,
                                  hedge_min_samples=10)
        sim, _metrics, _cluster, policy = make_policy(config)
        assert policy._hedge_delay() == 0.0  # cold: no hedging yet
        state = FakeState()
        policy.attach(state)
        conn = FakeConn()
        for seq in range(10):
            query = make_query(seq=seq, context=state)
            policy.arm(state, query, conn)
            # arm() is a no-op pre-warm-up (no deadline, hedge 0), so
            # feed the observation window directly.
            policy._observe(1e-3 * (seq + 1))
        delay = policy._hedge_delay()
        # Nearest-rank p90 over 1..10 ms: ceil(10 * 0.9) = rank 9, i.e.
        # the 9 ms sample (the old ``int(n*p/100)`` rank sat one above
        # the requested percentile and returned 10 ms here).
        assert delay == pytest.approx(1e-3 * 9)

    def test_unarmed_response_passes_through(self):
        config = ResilienceConfig(hedge_percentile=90.0,
                                  hedge_min_samples=10)
        _sim, metrics, _cluster, policy = make_policy(config)
        state = FakeState()
        policy.attach(state)
        query = make_query(context=state)
        policy.arm(state, query, FakeConn())  # no-op: not warmed up
        assert query.seq not in state.session
        assert policy.on_response(state, make_response(query))
        assert metrics.raw_count("resilience.duplicates") == 0

    def test_failed_responses_do_not_pollute_hedge_window(self):
        """Regression: synthesised-failure 'latencies' (deadline x
        retries, an order of magnitude above real completions) must not
        enter the adaptive-hedge window.  Pre-fix, a burst of failures
        dragged the p95 up to the deadline and stopped hedges from
        firing exactly when they were needed most."""
        config = ResilienceConfig(subquery_deadline=5e-3, max_retries=0,
                                  hedge_percentile=95.0,
                                  hedge_min_samples=50)
        sim, _metrics, _cluster, policy = make_policy(config)
        for _ in range(50):
            policy._observe(1e-3)  # healthy completions: 1 ms
        assert policy._hedge_delay() == pytest.approx(1e-3)
        state = FakeState()
        policy.attach(state)
        conn = FakeConn()
        # A crash window: more sub-queries than the REFRESH period all
        # time out and synthesise failures.
        n = 2 * policy.REFRESH
        for seq in range(n):
            policy.arm(state, make_query(seq=seq, context=state), conn)
        sim.run()  # every deadline expires, no retries left
        assert len(conn.endpoint_a.delivered) == n
        for synth in conn.endpoint_a.delivered:
            assert synth.failed
            assert policy.on_response(state, synth)
        assert state.failed == n
        # The window still reflects only the healthy completions.
        assert policy._hedge_delay() == pytest.approx(1e-3)

    def test_concurrent_hedges_rotate_replicas(self):
        """Two sub-queries hedging at the same time must go to
        *different* replicas (the old hard-coded failover_replica(1, .)
        stampeded every concurrent hedge onto replica 1)."""
        config = ResilienceConfig(hedge_delay=1e-3)
        sim, metrics, cluster, policy = make_policy(config, replicas=3)
        state = FakeState()
        policy.attach(state)
        policy.arm(state, make_query(seq=0, context=state), FakeConn())
        policy.arm(state, make_query(seq=1, context=state), FakeConn())
        sim.run(until=2e-3)
        assert metrics.raw_count("resilience.hedges") == 2
        assert cluster.opened == [(3, 1), (3, 2)]


class TestPerAttemptObservation:
    """Headline regression: the adaptive hedge must learn *per-attempt*
    latency (winning-attempt wire send -> arrival, via the response's
    echoed ``sent_at`` stamp), never original-send-relative latency.

    Pre-fix, ``on_response`` fed ``now - tracker.sent_at`` into the
    percentile window; a hedge win's "latency" then included the hedge
    delay itself, so each REFRESH recomputed a higher delay from its own
    previous output — a positive feedback loop that ratcheted the
    learned delay toward the deadline exactly when hedging mattered."""

    HEALTHY = 1e-3       # healthy-replica per-attempt latency
    DEADLINE = 50e-3     # far above anything the loop can ratchet to

    def _converged_policy(self):
        config = ResilienceConfig(subquery_deadline=self.DEADLINE,
                                  max_retries=0, backoff_jitter=0.0,
                                  hedge_percentile=95.0,
                                  hedge_min_samples=50)
        sim, metrics, cluster, policy = make_policy(config)
        for _ in range(policy.WINDOW):   # healthy completions: 1 ms
            policy._observe(self.HEALTHY)
        assert policy._hedge_delay() == pytest.approx(self.HEALTHY)
        return sim, metrics, cluster, policy

    def test_steady_slow_shard_converges_to_healthy_percentile(self):
        """Steady 10x-slow shard: the primary never answers first, every
        win is a hedge to the healthy replica.  The cached hedge delay
        must stay at ~the healthy-replica percentile (pre-fix it
        ratcheted up by ~one hedge delay per REFRESH period)."""
        sim, metrics, _cluster, policy = self._converged_policy()
        state = FakeState()
        policy.attach(state)
        conn = FakeConn()
        rounds = 6 * policy.REFRESH
        for seq in range(rounds):
            start = sim.now
            query = make_query(seq=seq, context=state)
            policy.arm(state, query, conn)
            delay = policy._hedge_delay()
            assert 0.0 < delay < self.DEADLINE
            sim.run(until=start + delay)          # the hedge fires
            response = make_response(query, attempt=HEDGE_ATTEMPT)
            # Wire stamp of the winning (hedged) attempt, as
            # Connection.transmit restamps it at hedge-send time.
            response.sent_at = start + delay
            sim.run(until=start + delay + self.HEALTHY)
            assert policy.on_response(state, response)
        assert metrics.raw_count("resilience.hedges") == rounds
        # The learned delay reflects per-attempt latency, not the
        # compounding (delay + attempt) sums of the old feedback loop,
        # which by now would have ratcheted past 4 ms on its way to the
        # deadline.
        assert policy._hedge_delay() == pytest.approx(self.HEALTHY)

    def test_retry_win_observes_attempt_latency(self):
        """A retry win's observation is measured from the *retry's*
        wire send, not the original send (which would fold the deadline
        plus backoff into the learned percentile)."""
        config = ResilienceConfig(subquery_deadline=1e-3, max_retries=1,
                                  backoff_base=0.2e-3, backoff_cap=0.2e-3,
                                  backoff_jitter=0.0,
                                  hedge_percentile=95.0,
                                  hedge_min_samples=500)
        sim, metrics, cluster, policy = make_policy(config)
        state = FakeState()
        policy.attach(state)
        query = make_query(context=state)
        policy.arm(state, query, FakeConn())
        sim.run(until=1.5e-3)   # deadline missed, retry transmitted
        assert metrics.raw_count("resilience.retries") == 1
        retry_sent = 1.2e-3     # deadline (1 ms) + backoff (0.2 ms)
        healthy = 0.5e-3
        response = make_response(query, attempt=1)
        response.sent_at = retry_sent
        sim.run(until=retry_sent + healthy)
        assert policy.on_response(state, response)
        assert len(policy._window) == 1
        # Per-attempt: 0.5 ms.  Original-send-relative would be 1.7 ms.
        assert policy._window[0] == pytest.approx(healthy)

    def test_unstamped_response_falls_back_to_arm_time(self):
        """Stub responses without a wire stamp (sent_at == 0) still get
        a sane observation: latency relative to the arm time."""
        config = ResilienceConfig(subquery_deadline=10e-3,
                                  hedge_percentile=95.0,
                                  hedge_min_samples=500)
        sim, _metrics, _cluster, policy = make_policy(config)
        state = FakeState()
        policy.attach(state)
        query = make_query(context=state)
        policy.arm(state, query, FakeConn())
        sim.run(until=2e-3)
        assert policy.on_response(state, make_response(query))
        assert policy._window[0] == pytest.approx(2e-3)


class TestNearestRankPercentile:
    """Regression: ``int(n * p / 100)`` sits one rank above the
    requested nearest-rank percentile; the fix is ``ceil(n*p/100) - 1``."""

    def _delay(self, percentile, samples, min_samples=1):
        config = ResilienceConfig(hedge_percentile=percentile,
                                  hedge_min_samples=min_samples)
        _sim, _metrics, _cluster, policy = make_policy(config)
        for value in samples:
            policy._observe(value)
        return policy._hedge_delay()

    def test_p50_of_two_samples_is_lower_value(self):
        # Pre-fix: int(2 * 0.5) = rank 1 = the max.
        assert self._delay(50.0, [1e-3, 9e-3]) == pytest.approx(1e-3)

    def test_single_sample_any_percentile(self):
        assert self._delay(50.0, [3e-3]) == pytest.approx(3e-3)
        assert self._delay(100.0, [3e-3]) == pytest.approx(3e-3)

    def test_p100_is_max(self):
        assert self._delay(100.0, [1e-3, 2e-3, 9e-3]) == pytest.approx(9e-3)

    def test_p95_of_100_samples_is_95th_rank(self):
        samples = [1e-3 * (i + 1) for i in range(100)]
        # Nearest rank ceil(100 * 0.95) = 95 -> the 95 ms sample
        # (pre-fix rank 96).
        assert self._delay(95.0, samples) == pytest.approx(95e-3)


class TestHedgeDeadlineClamp:
    """Regression: a learned/fixed hedge delay >= the sub-query deadline
    used to *silently disable* hedging (the ``hedge < deadline`` guard).
    It must clamp to fire before the deadline, observably."""

    def test_hedge_at_or_past_deadline_clamps(self):
        config = ResilienceConfig(subquery_deadline=1e-3, max_retries=1,
                                  backoff_base=0.2e-3, backoff_cap=0.4e-3,
                                  backoff_jitter=0.0, hedge_delay=2e-3)
        sim, metrics, cluster, policy = make_policy(config)
        state = FakeState()
        policy.attach(state)
        query = make_query(context=state)
        policy.arm(state, query, FakeConn())
        sim.run(until=0.9e-3)   # before the deadline
        assert metrics.raw_count("resilience.hedges") == 1
        assert metrics.raw_count("resilience.hedge_clamped") == 1
        assert cluster.opened == [(query.shard_id, 1)]

    def test_hedge_below_deadline_not_clamped(self):
        config = ResilienceConfig(subquery_deadline=1e-3, max_retries=1,
                                  backoff_base=0.2e-3, backoff_cap=0.4e-3,
                                  backoff_jitter=0.0, hedge_delay=0.4e-3)
        sim, metrics, _cluster, policy = make_policy(config)
        state = FakeState()
        policy.attach(state)
        policy.arm(state, make_query(context=state), FakeConn())
        sim.run(until=0.9e-3)
        assert metrics.raw_count("resilience.hedges") == 1
        assert metrics.raw_count("resilience.hedge_clamped") == 0


class FakeAgg:
    def __init__(self, count, network, selector_wait):
        self.count = count
        self.sums = {"network": network, "service": 0.0, "cpu_queue": 0.0,
                     "selector_wait": selector_wait, "retry_hedge": 0.0,
                     "driver": 0.0}


class FakeTracer:
    def __init__(self, aggs):
        self._aggs = aggs

    def classes(self):
        return self._aggs


class TestAttributionPolicy:
    CONFIG = ResilienceConfig(hedge_percentile=90.0, hedge_min_samples=10,
                              hedge_policy="attribution",
                              digest_min_samples=8)

    def test_per_shard_delays_diverge(self):
        """Attribution answers each shard from its own digest; cold
        shards fall back to the global window."""
        _sim, _metrics, _cluster, policy = make_policy(self.CONFIG)
        for _ in range(16):
            policy._observe(1e-3)
            policy._digest.observe(0, 0, 1e-3)
            policy._digest.observe(1, 0, 4e-3)
        assert policy._hedge_delay(0, 0) == pytest.approx(1e-3)
        assert policy._hedge_delay(1, 0) == pytest.approx(4e-3)
        # Shard 5 has no digest samples: global window answers.
        assert policy._hedge_delay(5, 0) == pytest.approx(1e-3)
        delays = policy.learned_delays()
        assert delays[0] == pytest.approx(1e-3)
        assert delays[1] == pytest.approx(4e-3)
        assert 5 not in delays

    def test_winning_response_feeds_digest(self):
        config = ResilienceConfig(subquery_deadline=50e-3,
                                  hedge_percentile=95.0,
                                  hedge_policy="attribution")
        sim, _metrics, _cluster, policy = make_policy(config)
        state = FakeState()
        policy.attach(state)
        query = make_query(context=state)
        policy.arm(state, query, FakeConn())
        sim.run(until=2e-3)
        response = make_response(query)
        response.sent_at = 0.5e-3
        response.replica = 0
        assert policy.on_response(state, response)
        assert policy._digest.observations == 1
        # Keyed by the responding (shard, replica), per-attempt latency.
        ring = policy._digest._rings[(query.shard_id, 0)]
        assert ring.values == [pytest.approx(1.5e-3)]

    def test_trace_refinement_trims_network_share(self):
        sim, _metrics, _cluster, policy = make_policy(self.CONFIG)
        # 4 sampled requests spending a mean 0.5 ms in network +
        # selector wait: the learned delay shrinks by exactly that.
        sim.tracer = FakeTracer(
            {"default": FakeAgg(4, network=4 * 0.4e-3,
                                selector_wait=4 * 0.1e-3)})
        assert policy._trace_refine(2e-3) == pytest.approx(1.5e-3)

    def test_trace_refinement_floors_at_half(self):
        sim, _metrics, _cluster, policy = make_policy(self.CONFIG)
        sim.tracer = FakeTracer(
            {"default": FakeAgg(4, network=4 * 5e-3, selector_wait=0.0)})
        # Network dominates the breakdown: the refinement may tighten
        # the hedge but never zero (or negate) it.
        assert policy._trace_refine(2e-3) == pytest.approx(1e-3)

    def test_untraced_refinement_is_identity(self):
        _sim, _metrics, _cluster, policy = make_policy(self.CONFIG)
        assert policy._trace_refine(2e-3) == pytest.approx(2e-3)


class TestSessionCleanup:
    CONFIG = ResilienceConfig(subquery_deadline=1e-3, max_retries=1,
                              backoff_base=0.2e-3, backoff_cap=0.4e-3,
                              backoff_jitter=0.0)

    def test_win_frees_tracker_and_remembers_seq(self):
        """The winning response must delete its session entry (the map
        otherwise grows for the life of the request) while keeping the
        seq recognisable as already-won."""
        _sim, metrics, _cluster, policy = make_policy(self.CONFIG)
        state = FakeState()
        policy.attach(state)
        query = make_query(context=state)
        policy.arm(state, query, FakeConn())
        assert query.seq in state.session
        assert policy.on_response(state, make_response(query))
        assert state.session == {}
        assert query.seq in state.won
        # A hedge loser straggling in after the cleanup is still stale.
        assert not policy.on_response(state, make_response(query))
        assert metrics.raw_count("resilience.duplicates") == 1

    def test_seq_reuse_after_win_arms_fresh_tracker(self):
        """Once a sub-query's win is absorbed and its entry freed, the
        same seq can be armed again (a fresh request attaches a fresh
        state, so clearing the won-set stands in for re-attach here)."""
        sim, metrics, _cluster, policy = make_policy(self.CONFIG)
        state = FakeState()
        policy.attach(state)
        query = make_query(context=state)
        policy.arm(state, query, FakeConn())
        assert policy.on_response(state, make_response(query))
        state.won.clear()
        policy.arm(state, query, FakeConn())
        assert query.seq in state.session
        assert policy.on_response(state, make_response(query))
        sim.run()
        assert metrics.raw_count("resilience.deadline_misses") == 0
