"""Unit tests for FaultConfig / FaultSchedule determinism and hooks."""

import pytest

from repro.faults import FaultConfig, FaultSchedule
from repro.faults.schedule import _WindowTrack
from repro.sim.rng import RngStreams


class TestFaultConfig:
    def test_default_is_inactive(self):
        assert not FaultConfig().active

    def test_each_family_activates(self):
        assert FaultConfig(slow_shards=1).active
        assert FaultConfig(crash_shards=1).active
        assert FaultConfig(spike_rate=5.0, spike_extra=1e-3).active
        assert FaultConfig(loss_prob=0.01).active
        assert FaultConfig(rack_slow_racks=1).active

    def test_spike_rate_without_extra_is_inactive(self):
        assert not FaultConfig(spike_rate=5.0).active

    @pytest.mark.parametrize("kwargs", [
        dict(slow_shards=-1),
        dict(crash_shards=-1),
        dict(slow_factor=0.5),
        dict(slow_shards=1, slow_mean_on=0.0),
        dict(slow_shards=1, slow_mean_off=-1.0),
        dict(crash_shards=1, crash_mtbf=0.0),
        dict(crash_shards=1, crash_mttr=0.0),
        dict(spike_rate=-1.0),
        dict(spike_extra=-1.0),
        dict(spike_rate=1.0, spike_duration=0.0),
        dict(loss_prob=-0.1),
        dict(loss_prob=1.0),
        dict(rack_slow_racks=-1),
        dict(rack_slow_factor=0.5),
        dict(rack_slow_racks=1, rack_slow_mean_on=0.0),
        dict(rack_slow_racks=1, rack_slow_mean_off=-1.0),
    ])
    def test_validation_rejects(self, kwargs):
        with pytest.raises(ValueError):
            FaultConfig(**kwargs)


class TestWindowTrack:
    def test_same_stream_same_timeline(self):
        times = [i * 0.01 for i in range(500)]
        a = _WindowTrack(RngStreams(7).stream("t"), 0.2, 0.8)
        b = _WindowTrack(RngStreams(7).stream("t"), 0.2, 0.8)
        assert [a.active(t) for t in times] == [b.active(t) for t in times]

    def test_starts_off_and_alternates(self):
        track = _WindowTrack(RngStreams(7).stream("t"), 0.2, 0.8)
        assert track.active(0.0) is False
        # Over a long horizon the track must have been on at some point.
        assert any(track.active(i * 0.05) for i in range(1, 2000))

    def test_timeline_independent_of_query_times(self):
        """Interval i is always the i-th draw: sampling coarsely or
        finely sees the same underlying on/off timeline."""
        fine = _WindowTrack(RngStreams(3).stream("x"), 0.3, 0.7)
        coarse = _WindowTrack(RngStreams(3).stream("x"), 0.3, 0.7)
        fine_states = {round(i * 0.5, 3): None for i in range(40)}
        for t in [i * 0.001 for i in range(20_000)]:
            state = fine.active(t)
            if round(t, 3) in fine_states:
                fine_states[round(t, 3)] = state
        for t in sorted(fine_states):
            assert coarse.active(t) == fine_states[t]


class TestObservabilityHooks:
    """`state_at` / `windows` / `families_at` / `realized_windows` —
    the after-the-fact views the tracing layer reads."""

    def _schedule(self, seed=42):
        config = FaultConfig(slow_shards=2, slow_mean_on=0.2,
                             slow_mean_off=0.3, crash_shards=1,
                             crash_mtbf=0.5, crash_mttr=0.2)
        return FaultSchedule(config, RngStreams(seed), 8)

    def test_state_at_matches_live_active(self):
        track = _WindowTrack(RngStreams(7).stream("t"), 0.2, 0.3)
        times = [i * 0.013 for i in range(800)]
        live = [track.active(t) for t in times]
        # After the cursor passed the horizon, parity over realised
        # transitions reproduces the live answers exactly.
        assert [track.state_at(t) for t in times] == live

    def test_windows_pair_transitions_and_clamp(self):
        track = _WindowTrack(RngStreams(7).stream("t"), 0.2, 0.3)
        track.active(10.0)
        windows = track.windows(10.0)
        assert windows, "timeline must toggle over a long horizon"
        for start, close in windows:
            assert 0.0 <= start < close <= 10.0
            mid = (start + close) / 2
            assert track.state_at(mid)
        # Disjoint and ordered.
        for (_, close), (start, _) in zip(windows, windows[1:]):
            assert close <= start
            assert not track.state_at((close + start) / 2)

    def test_windows_ignore_transitions_past_end(self):
        track = _WindowTrack(RngStreams(7).stream("t"), 0.2, 0.3)
        track.active(10.0)
        short = track.windows(2.0)
        assert all(close <= 2.0 for _start, close in short)
        assert all(start < 2.0 for start, _close in short)

    def test_families_at_sorted_and_consistent(self):
        sched = self._schedule()
        sched.advance(10.0)
        seen = set()
        for i in range(1000):
            t = i * 0.01
            families = sched.families_at(t)
            assert list(families) == sorted(families)
            assert set(families) <= {"crash", "slow"}
            seen.update(families)
            slow_live = any(sched._slow[s].state_at(t)
                            for s in sched.slow_ids)
            assert ("slow" in families) == slow_live
        assert seen == {"crash", "slow"}

    def test_realized_windows_deterministic_and_named(self):
        a = self._schedule().realized_windows(5.0)
        b = self._schedule().realized_windows(5.0)
        assert a == b
        assert a, "an active schedule realises at least one window"
        names = {name for name, _s, _e in a}
        assert all(name.startswith(("fault:slow:shard",
                                    "fault:crash:shard"))
                   for name in names)
        assert all(0.0 <= s < e <= 5.0 for _n, s, e in a)

    def test_inactive_schedule_realizes_nothing(self):
        sched = FaultSchedule(FaultConfig(), RngStreams(1), 4)
        assert sched.realized_windows(5.0) == []
        assert sched.families_at(1.0) == ()

    def test_advance_does_not_perturb_later_queries(self):
        """Interleaving telemetry `advance` calls with the serving
        hooks (all at the monotone simulator clock) must not change
        what the serving hooks return."""
        observed = self._schedule()
        plain = self._schedule()
        for i in range(500):
            t = i * 0.02
            observed.advance(t)  # telemetry tick at the same instant
            for shard in range(8):
                assert (observed.service_multiplier(shard, 0, t)
                        == plain.service_multiplier(shard, 0, t))
                assert (observed.is_down(shard, 0, t)
                        == plain.is_down(shard, 0, t))


class TestFaultSchedule:
    def _schedule(self, config, seed=42, n_shards=20):
        return FaultSchedule(config, RngStreams(seed), n_shards)

    def test_target_selection_is_deterministic(self):
        config = FaultConfig(slow_shards=3, crash_shards=2)
        a = self._schedule(config)
        b = self._schedule(config)
        assert a.slow_ids == b.slow_ids
        assert a.crash_ids == b.crash_ids
        assert len(a.slow_ids) == 3
        assert len(a.crash_ids) == 2

    def test_slow_multiplier_only_on_targets_and_primary(self):
        config = FaultConfig(slow_shards=2, slow_factor=50.0,
                             slow_mean_on=10.0, slow_mean_off=0.01)
        sched = self._schedule(config)
        # With mean_off tiny and mean_on huge, targets are slow almost
        # immediately and stay slow.
        now = 5.0
        hit = [s for s in range(20)
               if sched.service_multiplier(s, 0, now) != 1.0]
        assert hit == sched.slow_ids
        for shard_id in sched.slow_ids:
            assert sched.service_multiplier(shard_id, 0, now) == 50.0
            # Replica 1 stays healthy unless all_replicas is set.
            assert sched.service_multiplier(shard_id, 1, now) == 1.0

    def test_all_replicas_degrades_every_replica(self):
        config = FaultConfig(slow_shards=1, slow_factor=50.0,
                             slow_mean_on=10.0, slow_mean_off=0.01,
                             all_replicas=True)
        sched = self._schedule(config)
        shard_id = sched.slow_ids[0]
        assert sched.service_multiplier(shard_id, 1, 5.0) == 50.0

    def test_crash_windows(self):
        config = FaultConfig(crash_shards=1, crash_mtbf=0.01,
                             crash_mttr=10.0)
        sched = self._schedule(config)
        shard_id = sched.crash_ids[0]
        assert sched.is_down(shard_id, 0, 5.0)
        assert not sched.is_down(shard_id, 1, 5.0)
        other = next(s for s in range(20) if s != shard_id)
        assert not sched.is_down(other, 0, 5.0)

    def test_spike_extra_latency(self):
        config = FaultConfig(spike_rate=1000.0, spike_extra=2e-3,
                             spike_duration=10.0)
        sched = self._schedule(config)
        assert sched.extra_latency(5.0) == 2e-3

    def test_drop_message_rate(self):
        config = FaultConfig(loss_prob=0.25)
        sched = self._schedule(config)
        drops = sum(sched.drop_message() for _ in range(10_000))
        assert 0.2 < drops / 10_000 < 0.3

    def test_inactive_families_cost_nothing(self):
        sched = self._schedule(FaultConfig(slow_shards=1))
        assert not sched.is_down(0, 0, 1.0)
        assert sched.extra_latency(1.0) == 0.0
        assert not sched.drop_message()

    def test_building_schedule_leaves_other_streams_untouched(self):
        """Named fault streams must not perturb existing consumers."""
        plain = RngStreams(42).stream("mongodb.shard.0.service")
        with_faults = RngStreams(42)
        FaultSchedule(FaultConfig(slow_shards=3, crash_shards=2,
                                  spike_rate=10.0, spike_extra=1e-3,
                                  loss_prob=0.1, rack_slow_racks=1),
                      with_faults, n_shards=20, racks=2)
        after = with_faults.stream("mongodb.shard.0.service")
        assert [plain.random() for _ in range(100)] == \
               [after.random() for _ in range(100)]


class TestRackFaults:
    #: Rack windows on ~forever: targets are degraded from t~0 onwards.
    ALWAYS_ON = FaultConfig(rack_slow_racks=1, rack_slow_factor=30.0,
                            rack_slow_mean_on=100.0,
                            rack_slow_mean_off=0.001)

    def _schedule(self, config, racks=2, seed=42, n_shards=20):
        return FaultSchedule(config, RngStreams(seed), n_shards,
                             racks=racks)

    def test_rack_target_selection_is_deterministic(self):
        a = self._schedule(self.ALWAYS_ON)
        b = self._schedule(self.ALWAYS_ON)
        assert a.rack_ids == b.rack_ids
        assert len(a.rack_ids) == 1
        assert a.rack_ids[0] in (0, 1)

    def test_rack_fault_hits_every_replica_in_the_rack(self):
        """The defining property of the correlated family: replica
        filtering (``all_replicas=False``) does NOT protect replicas
        placed in a degraded rack."""
        sched = self._schedule(self.ALWAYS_ON)
        rack = sched.rack_ids[0]
        now = 5.0
        for shard in range(20):
            for replica in range(2):
                in_rack = (shard + replica) % 2 == rack
                assert sched.rack_active(shard, replica, now) == in_rack
                multiplier = sched.service_multiplier(shard, replica, now)
                assert multiplier == (30.0 if in_rack else 1.0)

    def test_one_replica_per_shard_survives(self):
        """Round-robin placement + one bad rack of two: every shard
        keeps exactly one healthy replica, so routing can always
        escape."""
        sched = self._schedule(self.ALWAYS_ON)
        now = 5.0
        for shard in range(20):
            healthy = [r for r in range(2)
                       if sched.service_multiplier(shard, r, now) == 1.0]
            assert len(healthy) == 1

    def test_rack_and_shard_slowdowns_take_the_worse_factor(self):
        config = FaultConfig(
            slow_shards=20, slow_factor=50.0,
            slow_mean_on=100.0, slow_mean_off=0.001,
            rack_slow_racks=2, rack_slow_factor=30.0,
            rack_slow_mean_on=100.0, rack_slow_mean_off=0.001)
        sched = self._schedule(config)
        # Every shard slowed 50x, every rack slowed 30x: primaries see
        # max(50, 30), secondaries (shard family filtered) see 30.
        assert sched.service_multiplier(0, 0, 5.0) == 50.0
        assert sched.service_multiplier(0, 1, 5.0) == 30.0

    def test_zero_racks_configured_is_inert(self):
        sched = self._schedule(FaultConfig(slow_shards=1), racks=4)
        assert not sched.rack_active(0, 0, 5.0)

    def test_rejects_zero_racks(self):
        with pytest.raises(ValueError):
            self._schedule(self.ALWAYS_ON, racks=0)

    def test_rack_streams_leave_shard_families_untouched(self):
        """Enabling the rack family must not shift which shards the
        slow family targets or their window timelines."""
        base = FaultConfig(slow_shards=3, slow_mean_on=0.2,
                           slow_mean_off=0.3)
        with_racks = FaultConfig(slow_shards=3, slow_mean_on=0.2,
                                 slow_mean_off=0.3, rack_slow_racks=1)
        a = FaultSchedule(base, RngStreams(7), 20)
        b = FaultSchedule(with_racks, RngStreams(7), 20, racks=2)
        assert a.slow_ids == b.slow_ids
        times = [i * 0.01 for i in range(300)]
        for shard in a.slow_ids:
            assert [a._slow[shard].active(t) for t in times] == \
                   [b._slow[shard].active(t) for t in times]
