"""Unit tests for FaultConfig / FaultSchedule determinism and hooks."""

import pytest

from repro.faults import FaultConfig, FaultSchedule
from repro.faults.schedule import _WindowTrack
from repro.sim.rng import RngStreams


class TestFaultConfig:
    def test_default_is_inactive(self):
        assert not FaultConfig().active

    def test_each_family_activates(self):
        assert FaultConfig(slow_shards=1).active
        assert FaultConfig(crash_shards=1).active
        assert FaultConfig(spike_rate=5.0, spike_extra=1e-3).active
        assert FaultConfig(loss_prob=0.01).active

    def test_spike_rate_without_extra_is_inactive(self):
        assert not FaultConfig(spike_rate=5.0).active

    @pytest.mark.parametrize("kwargs", [
        dict(slow_shards=-1),
        dict(crash_shards=-1),
        dict(slow_factor=0.5),
        dict(slow_shards=1, slow_mean_on=0.0),
        dict(slow_shards=1, slow_mean_off=-1.0),
        dict(crash_shards=1, crash_mtbf=0.0),
        dict(crash_shards=1, crash_mttr=0.0),
        dict(spike_rate=-1.0),
        dict(spike_extra=-1.0),
        dict(spike_rate=1.0, spike_duration=0.0),
        dict(loss_prob=-0.1),
        dict(loss_prob=1.0),
    ])
    def test_validation_rejects(self, kwargs):
        with pytest.raises(ValueError):
            FaultConfig(**kwargs)


class TestWindowTrack:
    def test_same_stream_same_timeline(self):
        times = [i * 0.01 for i in range(500)]
        a = _WindowTrack(RngStreams(7).stream("t"), 0.2, 0.8)
        b = _WindowTrack(RngStreams(7).stream("t"), 0.2, 0.8)
        assert [a.active(t) for t in times] == [b.active(t) for t in times]

    def test_starts_off_and_alternates(self):
        track = _WindowTrack(RngStreams(7).stream("t"), 0.2, 0.8)
        assert track.active(0.0) is False
        # Over a long horizon the track must have been on at some point.
        assert any(track.active(i * 0.05) for i in range(1, 2000))

    def test_timeline_independent_of_query_times(self):
        """Interval i is always the i-th draw: sampling coarsely or
        finely sees the same underlying on/off timeline."""
        fine = _WindowTrack(RngStreams(3).stream("x"), 0.3, 0.7)
        coarse = _WindowTrack(RngStreams(3).stream("x"), 0.3, 0.7)
        fine_states = {round(i * 0.5, 3): None for i in range(40)}
        for t in [i * 0.001 for i in range(20_000)]:
            state = fine.active(t)
            if round(t, 3) in fine_states:
                fine_states[round(t, 3)] = state
        for t in sorted(fine_states):
            assert coarse.active(t) == fine_states[t]


class TestFaultSchedule:
    def _schedule(self, config, seed=42, n_shards=20):
        return FaultSchedule(config, RngStreams(seed), n_shards)

    def test_target_selection_is_deterministic(self):
        config = FaultConfig(slow_shards=3, crash_shards=2)
        a = self._schedule(config)
        b = self._schedule(config)
        assert a.slow_ids == b.slow_ids
        assert a.crash_ids == b.crash_ids
        assert len(a.slow_ids) == 3
        assert len(a.crash_ids) == 2

    def test_slow_multiplier_only_on_targets_and_primary(self):
        config = FaultConfig(slow_shards=2, slow_factor=50.0,
                             slow_mean_on=10.0, slow_mean_off=0.01)
        sched = self._schedule(config)
        # With mean_off tiny and mean_on huge, targets are slow almost
        # immediately and stay slow.
        now = 5.0
        hit = [s for s in range(20)
               if sched.service_multiplier(s, 0, now) != 1.0]
        assert hit == sched.slow_ids
        for shard_id in sched.slow_ids:
            assert sched.service_multiplier(shard_id, 0, now) == 50.0
            # Replica 1 stays healthy unless all_replicas is set.
            assert sched.service_multiplier(shard_id, 1, now) == 1.0

    def test_all_replicas_degrades_every_replica(self):
        config = FaultConfig(slow_shards=1, slow_factor=50.0,
                             slow_mean_on=10.0, slow_mean_off=0.01,
                             all_replicas=True)
        sched = self._schedule(config)
        shard_id = sched.slow_ids[0]
        assert sched.service_multiplier(shard_id, 1, 5.0) == 50.0

    def test_crash_windows(self):
        config = FaultConfig(crash_shards=1, crash_mtbf=0.01,
                             crash_mttr=10.0)
        sched = self._schedule(config)
        shard_id = sched.crash_ids[0]
        assert sched.is_down(shard_id, 0, 5.0)
        assert not sched.is_down(shard_id, 1, 5.0)
        other = next(s for s in range(20) if s != shard_id)
        assert not sched.is_down(other, 0, 5.0)

    def test_spike_extra_latency(self):
        config = FaultConfig(spike_rate=1000.0, spike_extra=2e-3,
                             spike_duration=10.0)
        sched = self._schedule(config)
        assert sched.extra_latency(5.0) == 2e-3

    def test_drop_message_rate(self):
        config = FaultConfig(loss_prob=0.25)
        sched = self._schedule(config)
        drops = sum(sched.drop_message() for _ in range(10_000))
        assert 0.2 < drops / 10_000 < 0.3

    def test_inactive_families_cost_nothing(self):
        sched = self._schedule(FaultConfig(slow_shards=1))
        assert not sched.is_down(0, 0, 1.0)
        assert sched.extra_latency(1.0) == 0.0
        assert not sched.drop_message()

    def test_building_schedule_leaves_other_streams_untouched(self):
        """Named fault streams must not perturb existing consumers."""
        plain = RngStreams(42).stream("mongodb.shard.0.service")
        with_faults = RngStreams(42)
        FaultSchedule(FaultConfig(slow_shards=3, crash_shards=2,
                                  spike_rate=10.0, spike_extra=1e-3,
                                  loss_prob=0.1),
                      with_faults, n_shards=20)
        after = with_faults.stream("mongodb.shard.0.service")
        assert [plain.random() for _ in range(100)] == \
               [after.random() for _ in range(100)]
