"""Cross-module integration tests: the paper's qualitative claims at
small scale, and dataset-driven runs with materialised records."""

import pytest

from repro.core.doubleface import DoubleFaceServer
from repro.data.ycsb import YCSBDataset
from repro.datastore.cluster import DatastoreCluster
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.sim.kernel import Simulator
from repro.sim.metrics import Metrics
from repro.sim.params import CostParams
from repro.sim.rng import RngStreams
from repro.workload.closed_loop import ClosedLoopWorkload
from repro.workload.profiles import uniform_profile


def tput(server, **kw):
    kw.setdefault("warmup", 0.3)
    kw.setdefault("duration", 0.8)
    config = ExperimentConfig(server=server, **kw)
    return run_experiment(config).throughput


class TestPaperClaimsSmallScale:
    """Scaled-down versions of the headline orderings; the full-size
    versions are asserted by the benchmark suite."""

    def test_doubleface_beats_baselines_small_responses(self):
        df = tput("doubleface", concurrency=60, fanout=5, response_size=100)
        netty = tput("netty", concurrency=60, fanout=5, response_size=100)
        aio = tput("aio", concurrency=60, fanout=5, response_size=100)
        assert df > netty
        assert df > aio

    def test_threadbased_collapses_at_high_concurrency(self):
        low = tput("threadbased", concurrency=16, fanout=5,
                   response_size=100)
        high = tput("threadbased", concurrency=512, fanout=5,
                    response_size=100, warmup=1.0)
        assert high < low

    def test_async_type2_does_not_collapse(self):
        low = tput("aio", concurrency=16, fanout=5, response_size=100)
        high = tput("aio", concurrency=512, fanout=5, response_size=100,
                    warmup=1.0)
        assert high > 0.7 * low

    def test_netty_beats_aio_at_large_responses(self):
        netty = tput("netty", concurrency=100, fanout=5,
                     response_size=20 * 1024, warmup=1.5, duration=2.0)
        aio = tput("aio", concurrency=100, fanout=5,
                   response_size=20 * 1024, warmup=1.5, duration=2.0)
        assert netty > aio

    def test_remote_datastore_increases_latency(self):
        local = run_experiment(ExperimentConfig(
            datastore="mongodb", concurrency=5, warmup=0.2, duration=0.4))
        remote = run_experiment(ExperimentConfig(
            datastore="dynamodb", concurrency=5, warmup=0.2, duration=0.4))
        assert remote.mean_rt > local.mean_rt + 1.5e-3


class TestMaterializedDataPath:
    """End-to-end with real records: clients ask for real keys, shards
    return real field data."""

    def test_ycsb_keys_roundtrip_through_doubleface(self):
        sim = Simulator()
        metrics = Metrics()
        params = CostParams()
        rng = RngStreams(42)
        dataset = YCSBDataset(records_per_shard=50, n_shards=4)
        cluster = DatastoreCluster(sim, metrics, params, rng, n_shards=4,
                                   schema=dataset.schema)
        loaded = cluster.load(dataset.materialize(200))
        assert loaded == 200

        server = DoubleFaceServer(sim, metrics, params, cluster, rng,
                                  reactors=1)
        server.start()
        keys = iter(dataset.key_for(i % 200) for i in range(10_000))
        profile = uniform_profile(2, 100, key_chooser=lambda: next(keys))
        ClosedLoopWorkload(sim, metrics, params, server, profile,
                           concurrency=4, rng_streams=rng).start()
        sim.run(until=0.5)
        assert metrics.raw_count("client.completed") > 50
        assert metrics.raw_count("datastore.queries") > 100
