#!/usr/bin/env python3
"""Pluggable event handlers: add a result cache without touching the
driver.

Section 5.1's maintainability claim: DoubleFaceAD's business logic and
driver management are pluggable handlers on shared reactor threads, so
either side can be upgraded independently.  This example swaps in a
frontend handler that serves hot requests from an in-server cache,
skipping the fanout entirely — a realistic "edge cache" extension —
and measures the effect.

Run:  python examples/custom_handlers.py
"""

from repro import (ClosedLoopWorkload, CostParams, DatastoreCluster,
                   DoubleFaceServer, HttpResponse, Metrics, RngStreams,
                   Simulator, uniform_profile)
from repro.core.handlers import FrontendHandler


class CachingFrontendHandler(FrontendHandler):
    """Serves a fraction of requests from a response cache.

    A real implementation would key on the query; the simulation keys on
    a deterministic request-id residue, which produces the same hit
    pattern without materialising payloads.
    """

    def __init__(self, hit_ratio=0.3, lookup_cost=8e-6):
        super().__init__()
        self.hit_ratio = hit_ratio
        self.lookup_cost = lookup_cost
        self.hits = 0
        self.misses = 0

    def handle(self, reactor, channel, message):
        server = reactor.server
        # Cache lookup happens on the reactor thread, before parsing
        # fans anything out.
        yield reactor.thread.execute(self.lookup_cost)
        if (message.request_id % 100) < self.hit_ratio * 100:
            self.hits += 1
            server.metrics.add("cache.hits")
            response = HttpResponse(
                request_id=message.request_id,
                payload_size=message.fanout * message.response_size,
                klass=message.klass,
                completed_at=server.sim.now,
            )
            server.metrics.add("client.cached")
            yield from channel.context.send(
                reactor.thread, response, response.wire_size, to_side="a")
            return
        self.misses += 1
        yield from super().handle(reactor, channel, message)


def measure(handler=None, seconds=2.0):
    sim = Simulator()
    metrics = Metrics()
    params = CostParams()
    rng = RngStreams(seed=42)
    cluster = DatastoreCluster(sim, metrics, params, rng, n_shards=20)
    server = DoubleFaceServer(sim, metrics, params, cluster, rng)
    if handler is not None:
        server.register_handler("upstream", handler)
    server.start()
    ClosedLoopWorkload(sim, metrics, params, server,
                       uniform_profile(fanout=5, response_size=100),
                       concurrency=100, rng_streams=rng).start()
    sim.run(until=0.5)
    metrics.mark_window_start(sim.now)
    sim.run(until=0.5 + seconds)
    rt = metrics.latency("client.rt")
    return (metrics.rate("client.completed", sim.now),
            1e3 * rt.percentile(50.0), metrics)


def main():
    plain_tput, plain_p50, _ = measure()
    cache = CachingFrontendHandler(hit_ratio=0.3)
    cached_tput, cached_p50, metrics = measure(handler=cache)

    print("Pluggable-handler demo: 30% cache hit ratio on the frontend\n")
    print(f"{'configuration':>22s} {'req/s':>9s} {'p50[ms]':>9s}")
    print("-" * 42)
    print(f"{'stock DoubleFaceAD':>22s} {plain_tput:9.0f} {plain_p50:9.2f}")
    print(f"{'with CachingHandler':>22s} {cached_tput:9.0f} {cached_p50:9.2f}")
    print(f"\ncache hits: {cache.hits}, misses: {cache.misses} "
          f"(hit ratio {cache.hits / (cache.hits + cache.misses):.0%})")
    print("The backend handler and driver management were untouched — "
          "only the upstream handler was swapped.")


if __name__ == "__main__":
    main()
