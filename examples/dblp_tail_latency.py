#!/usr/bin/env python3
"""Tail latency on the DBLP co-author workload with and without the
fanout-aware scheduler.

Reproduces the shape of the paper's Section 6.2 evaluation: a RUBBoS
(Poisson) user population reads 30 kB co-author tuples fanned out over
a 20-shard cluster; we compare DoubleFaceAD with the priority scheduler,
without it, and the two asynchronous baselines.

Run:  python examples/dblp_tail_latency.py
"""

from repro.data import DBLPDataset
from repro.experiments import ExperimentConfig, run_experiment

SERVERS = [
    ("doubleface", "DoubleFaceAD (w/ schedule)"),
    ("doubleface-fifo", "DoubleFaceAD (w/o schedule)"),
    ("aio", "AIOBackend"),
    ("netty", "NettyBackend"),
]

PERCENTILES = (50.0, 90.0, 95.0, 99.0)


def main():
    dataset = DBLPDataset()
    print("DBLP co-author workload: "
          f"{dataset.n_pairs / 1e6:.0f}M tuples x {dataset.tuple_bytes // 1024} kB, "
          f"{dataset.n_shards} shards (~{dataset.shard_bytes / 2**30:.0f} GB each)\n")

    rows = []
    for kind, label in SERVERS:
        result = run_experiment(ExperimentConfig(
            server=kind, workload="open", users=600, think_time=8.4,
            lfan=5, sfan=3, response_size=dataset.tuple_bytes, reactors=1,
            warmup=4.0, duration=15.0,
            params={"app_cores": 1, "request_cpu": 0.3e-3,
                    "request_cpu_cv": 0.5, "service_cv": 2.5}))
        rows.append((label, result))

    header = (f"{'server':>28s} " +
              " ".join(f"p{int(q):>2d}[ms]" for q in PERCENTILES) +
              f" {'req/s':>7s} {'CPU':>5s}")
    print(header)
    print("-" * len(header))
    for label, result in rows:
        cells = " ".join(f"{1e3 * result.percentiles[q]:7.1f}"
                         for q in PERCENTILES)
        print(f"{label:>28s} {cells} {result.throughput:7.0f} "
              f"{100 * result.cpu_utilization:4.0f}%")

    base = rows[1][1].percentiles[99.0]
    for label, result in (rows[2], rows[3]):
        factor = result.percentiles[99.0] / base
        print(f"\n{label} p99 is {factor:.1f}x DoubleFaceAD's")


if __name__ == "__main__":
    main()
