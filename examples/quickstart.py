#!/usr/bin/env python3
"""Quickstart: build a fanout-query topology and measure two drivers.

Builds the paper's basic scenario with the public API — a 20-shard
datastore cluster, an application server, and a closed-loop client
population issuing fanout queries — then compares the DoubleFaceAD
server against the Netty-style Type-2a baseline.

Run:  python examples/quickstart.py
"""

from repro import (ClosedLoopWorkload, CostParams, DatastoreCluster,
                   DoubleFaceServer, Metrics, NettyBackendServer, RngStreams,
                   Simulator, uniform_profile)


def run_server(server_cls, label, seconds=2.0, warmup=0.5, **server_kw):
    """Simulate one server architecture and return its key numbers."""
    sim = Simulator()
    metrics = Metrics()
    params = CostParams()                  # the calibrated testbed model
    rng = RngStreams(seed=42)

    cluster = DatastoreCluster(sim, metrics, params, rng, n_shards=20)
    server = server_cls(sim, metrics, params, cluster, rng, **server_kw)
    profile = uniform_profile(fanout=5, response_size=100)   # 0.1 kB
    workload = ClosedLoopWorkload(sim, metrics, params, server, profile,
                                  concurrency=100, rng_streams=rng)

    server.start()
    workload.start()
    sim.run(until=warmup)
    metrics.mark_window_start(sim.now)     # discard warm-up
    sim.run(until=warmup + seconds)

    rt = metrics.latency("client.rt")
    return {
        "label": label,
        "throughput": metrics.rate("client.completed", sim.now),
        "p50_ms": 1e3 * rt.percentile(50.0),
        "p99_ms": 1e3 * rt.percentile(99.0),
        "cpu": server.cpu.utilization(),
    }


def main():
    print("DoubleFaceAD quickstart: fanout 5, 0.1 kB responses, "
          "100 concurrent users\n")
    rows = [
        run_server(DoubleFaceServer, "DoubleFaceAD"),
        run_server(NettyBackendServer, "NettyBackend (Type-2a)"),
    ]
    header = f"{'server':>24s} {'req/s':>9s} {'p50[ms]':>9s} {'p99[ms]':>9s} {'CPU':>6s}"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['label']:>24s} {row['throughput']:9.0f} "
              f"{row['p50_ms']:9.2f} {row['p99_ms']:9.2f} "
              f"{100 * row['cpu']:5.0f}%")
    speedup = rows[0]["throughput"] / rows[1]["throughput"]
    print(f"\nDoubleFaceAD throughput advantage: {100 * (speedup - 1):.0f}%")


if __name__ == "__main__":
    main()
