#!/usr/bin/env python3
"""Fanout sweep on the YCSB workload across all five architectures.

The scenario from the paper's introduction: a web-search-style request
fans out to an increasing number of datastore shards.  This sweeps the
fanout factor from 1 to 20 and prints throughput and tail latency per
architecture — the quickest way to see where each design breaks down.

Run:  python examples/ycsb_fanout_sweep.py [--size 20480]
"""

import argparse

from repro.experiments import ExperimentConfig, run_experiment

ARCHITECTURES = [
    ("threadbased", "thread-based"),
    ("type1", "Type-1 async"),
    ("aio", "AIO (Type-2b)"),
    ("netty", "Netty (Type-2a)"),
    ("doubleface", "DoubleFaceAD"),
]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=100,
                        help="fanout response size in bytes (default 100)")
    parser.add_argument("--concurrency", type=int, default=50)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    slow = args.size >= 4096
    duration, warmup = (3.0, 1.5) if slow else (1.0, 0.4)

    print(f"YCSB fanout sweep: {args.size} B responses, "
          f"{args.concurrency} concurrent users\n")
    header = (f"{'fanout':>6s} " + " ".join(f"{label:>16s}"
                                            for _k, label in ARCHITECTURES))
    print(header + "     (throughput req/s | p99 ms)")
    print("-" * len(header))
    for fanout in (1, 5, 10, 20):
        cells = []
        for kind, _label in ARCHITECTURES:
            result = run_experiment(ExperimentConfig(
                server=kind, concurrency=args.concurrency, fanout=fanout,
                response_size=args.size, warmup=warmup, duration=duration,
                seed=args.seed))
            cells.append(f"{result.throughput:7.0f}|{1e3 * result.percentiles[99.0]:7.1f}")
        print(f"{fanout:>6d} " + " ".join(f"{c:>16s}" for c in cells))

    print("\nReading guide: thread-based/Type-1 pay multithreading "
          "overhead, AIO pays its on-demand pool at large sizes, Netty "
          "pays spurious selects at small sizes; DoubleFaceAD avoids "
          "both (paper Figs. 4, 5, 13).")


if __name__ == "__main__":
    main()
